//! Property-based tests for the wire format and network accounting.

use ekm_linalg::Matrix;
use ekm_net::bitstream::{BitReader, BitWriter};
use ekm_net::messages::Message;
use ekm_net::wire::{
    decode_f64, decode_f64_slice, decode_matrix, encode_f64, encode_f64_slice, encode_matrix,
    Precision,
};
use ekm_net::Network;
use ekm_quant::RoundingQuantizer;
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..8, 1usize..8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1.0e6f64..1.0e6, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary bit sequences round-trip through the bitstream.
    #[test]
    fn bitstream_roundtrip(values in proptest::collection::vec((0u64..u64::MAX, 1u32..=64), 1..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        for &(v, n) in &values {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Full-precision f64 encoding is bit-exact.
    #[test]
    fn f64_full_roundtrip(x in proptest::num::f64::ANY) {
        let mut w = BitWriter::new();
        encode_f64(&mut w, x, Precision::Full);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        let y = decode_f64(&mut r, Precision::Full).unwrap();
        prop_assert_eq!(x.to_bits(), y.to_bits());
    }

    /// F32 encoding decodes to exactly `(x as f32) as f64` — the nearest
    /// single — in exactly 32 bits, and is idempotent: re-encoding a
    /// decoded value is lossless.
    #[test]
    fn f32_roundtrip(x in proptest::num::f64::ANY) {
        let mut w = BitWriter::new();
        encode_f64(&mut w, x, Precision::F32);
        let (buf, bits) = w.finish();
        prop_assert_eq!(bits, 32);
        let mut r = BitReader::new(&buf, bits);
        let y = decode_f64(&mut r, Precision::F32).unwrap();
        prop_assert_eq!(y.to_bits(), ((x as f32) as f64).to_bits());
        // Idempotence: a second trip through the wire is exact.
        let mut w = BitWriter::new();
        encode_f64(&mut w, y, Precision::F32);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        prop_assert_eq!(decode_f64(&mut r, Precision::F32).unwrap().to_bits(), y.to_bits());
    }

    /// F32 matrices round-trip at exactly half the full-precision size,
    /// and losslessly once the entries are f32-representable.
    #[test]
    fn f32_matrix_roundtrip(m in small_matrix()) {
        let single = Matrix::from_vec(
            m.rows(),
            m.cols(),
            m.as_slice().iter().map(|&x| (x as f32) as f64).collect(),
        );
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &single, Precision::F32);
        let (buf, bits) = w.finish();
        let entries = (m.rows() * m.cols()) as u32;
        prop_assert_eq!(bits as u32, 64 + 32 * entries);
        let mut r = BitReader::new(&buf, bits);
        let back = decode_matrix(&mut r, Precision::F32).unwrap();
        prop_assert_eq!(back.shape(), single.shape());
        for (a, b) in single.as_slice().iter().zip(back.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Coreset messages carrying an F32 payload round-trip (the
    /// precision descriptor distinguishes all three variants).
    #[test]
    fn f32_coreset_message_roundtrip(points in small_matrix(), delta in 0.0f64..10.0) {
        let single = Matrix::from_vec(
            points.rows(),
            points.cols(),
            points.as_slice().iter().map(|&x| (x as f32) as f64).collect(),
        );
        let msg = Message::Coreset {
            points: single,
            weights: vec![1.0; points.rows()],
            delta,
            precision: Precision::F32,
            weights_precision: Precision::F32,
        };
        let (buf, bits) = msg.encode();
        let back = Message::decode(&buf, bits).unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Basis and SVD-summary messages carrying their payloads at F32
    /// round-trip exactly once the entries are f32-representable, and
    /// the aux payload travels at exactly half the full-precision width.
    #[test]
    fn f32_aux_payload_messages_roundtrip(m in small_matrix()) {
        let single = Matrix::from_vec(
            m.rows(),
            m.cols(),
            m.as_slice().iter().map(|&x| (x as f32) as f64).collect(),
        );
        let basis_full = Message::Basis { basis: single.clone(), precision: Precision::Full };
        let basis_f32 = Message::Basis { basis: single.clone(), precision: Precision::F32 };
        let (buf, bits) = basis_f32.encode();
        prop_assert_eq!(Message::decode(&buf, bits).unwrap(), basis_f32.clone());
        let entries = (m.rows() * m.cols()) as u32;
        prop_assert_eq!(basis_full.encode().1 as u32 - bits as u32, 32 * entries);

        let svd = Message::SvdSummary {
            singular_values: vec![1.5; single.cols()],
            basis: single,
            precision: Precision::F32,
        };
        let (buf, bits) = svd.encode();
        prop_assert_eq!(Message::decode(&buf, bits).unwrap(), svd);
    }

    /// Quantize-then-encode is lossless at the matching precision.
    #[test]
    fn quantized_roundtrip(x in -1.0e9f64..1.0e9, s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let qx = q.quantize(x);
        let mut w = BitWriter::new();
        encode_f64(&mut w, qx, Precision::Quantized { s });
        let (buf, bits) = w.finish();
        prop_assert_eq!(bits as u32, 12 + s);
        let mut r = BitReader::new(&buf, bits);
        let y = decode_f64(&mut r, Precision::Quantized { s }).unwrap();
        prop_assert_eq!(qx.to_bits(), y.to_bits());
    }

    /// Every message kind round-trips through encode/decode.
    #[test]
    fn message_roundtrip(points in small_matrix(), delta in 0.0f64..100.0, cost in 0.0f64..1e9) {
        let weights = vec![1.5; points.rows()];
        let messages = vec![
            Message::RawData { points: points.clone() },
            Message::Coreset {
                points: points.clone(),
                weights,
                delta,
                precision: Precision::Full,
                weights_precision: Precision::Full,
            },
            Message::CostReport { cost },
            Message::SampleAllocation { size: points.rows() as u64 },
            Message::Centers { centers: points.clone() },
            Message::Basis { basis: points.clone(), precision: Precision::Full },
            Message::SvdSummary {
                singular_values: vec![1.0; points.cols()],
                basis: points.clone(),
                precision: Precision::Full,
            },
        ];
        for msg in messages {
            let (buf, bits) = msg.encode();
            let back = Message::decode(&buf, bits).unwrap();
            prop_assert_eq!(back, msg);
        }
    }

    /// The network charges exactly the encoded size and delivers exactly
    /// the decoded message.
    #[test]
    fn network_charges_encoded_bits(points in small_matrix(), sources in 1usize..5) {
        let mut net = Network::new(sources);
        let msg = Message::RawData { points };
        let (_, bits) = msg.encode();
        let src = sources - 1;
        let received = net.send_to_server(src, &msg).unwrap();
        prop_assert_eq!(received, msg);
        prop_assert_eq!(net.stats().uplink_bits(src), bits as u64);
        prop_assert_eq!(net.stats().total_uplink_bits(), bits as u64);
    }

    /// Quantized *vectors* round-trip losslessly at every mantissa width
    /// `s ∈ [1, 52]` — including the widths where `12 + s` is not a
    /// multiple of 8, so consecutive scalars straddle byte boundaries.
    #[test]
    fn quantized_vector_roundtrip(
        xs in proptest::collection::vec(-1.0e9f64..1.0e9, 1..40),
        s in 1u32..=52,
    ) {
        let q = RoundingQuantizer::new(s).unwrap();
        let qxs: Vec<f64> = xs.iter().map(|&x| q.quantize(x)).collect();
        let precision = Precision::Quantized { s };
        let mut w = BitWriter::new();
        encode_f64_slice(&mut w, &qxs, precision);
        let (buf, bits) = w.finish();
        // Exact payload size: 32-bit length prefix + (12+s) bits/scalar.
        prop_assert_eq!(bits as u32, 32 + (12 + s) * qxs.len() as u32);
        let mut r = BitReader::new(&buf, bits);
        let back = decode_f64_slice(&mut r, precision).unwrap();
        prop_assert_eq!(back.len(), qxs.len());
        for (a, b) in qxs.iter().zip(&back) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Quantized *matrices* round-trip losslessly at every mantissa
    /// width, with the exact advertised bit size.
    #[test]
    fn quantized_matrix_roundtrip(m in small_matrix(), s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let qm = q.quantize_matrix(&m);
        let precision = Precision::Quantized { s };
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &qm, precision);
        let (buf, bits) = w.finish();
        // Shape header (2 × 32 bits) + (12+s) bits per entry.
        let entries = (qm.rows() * qm.cols()) as u32;
        prop_assert_eq!(bits as u32, 64 + (12 + s) * entries);
        let mut r = BitReader::new(&buf, bits);
        let back = decode_matrix(&mut r, precision).unwrap();
        prop_assert_eq!(back.shape(), qm.shape());
        for (a, b) in qm.as_slice().iter().zip(back.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    /// A quantized payload written after a deliberately misaligning
    /// prefix (1–7 junk bits) still round-trips: the wire format never
    /// relies on byte alignment.
    #[test]
    fn quantized_scalar_roundtrip_misaligned(
        x in -1.0e9f64..1.0e9,
        s in 1u32..=52,
        skew in 1u32..8,
    ) {
        let q = RoundingQuantizer::new(s).unwrap();
        let qx = q.quantize(x);
        let mut w = BitWriter::new();
        w.write_bits(0x55, skew);
        encode_f64(&mut w, qx, Precision::Quantized { s });
        let (buf, bits) = w.finish();
        prop_assert_eq!(bits as u32, skew + 12 + s);
        let mut r = BitReader::new(&buf, bits);
        r.read_bits(skew).unwrap();
        let y = decode_f64(&mut r, Precision::Quantized { s }).unwrap();
        prop_assert_eq!(qx.to_bits(), y.to_bits());
    }

    /// Mixed-precision streams (full-precision scalar, quantized vector,
    /// full matrix) decode in order with nothing left over.
    #[test]
    fn mixed_precision_stream_roundtrip(
        x in proptest::num::f64::ANY,
        m in small_matrix(),
        s in 1u32..=52,
    ) {
        let q = RoundingQuantizer::new(s).unwrap();
        let qm = q.quantize_matrix(&m);
        let quantized = Precision::Quantized { s };
        let mut w = BitWriter::new();
        encode_f64(&mut w, x, Precision::Full);
        encode_matrix(&mut w, &qm, quantized);
        encode_matrix(&mut w, &m, Precision::Full);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        prop_assert_eq!(decode_f64(&mut r, Precision::Full).unwrap().to_bits(), x.to_bits());
        let back_q = decode_matrix(&mut r, quantized).unwrap();
        prop_assert!(back_q.approx_eq(&qm, 0.0));
        let back_full = decode_matrix(&mut r, Precision::Full).unwrap();
        prop_assert!(back_full.approx_eq(&m, 0.0));
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Truncating any message payload produces an error, never a panic or
    /// a silently wrong message.
    #[test]
    fn truncation_is_detected(points in small_matrix(), cut in 1usize..64) {
        let msg = Message::Coreset {
            points: points.clone(),
            weights: vec![1.0; points.rows()],
            delta: 0.0,
            precision: Precision::Full,
            weights_precision: Precision::Full,
        };
        let (buf, bits) = msg.encode();
        if bits > cut {
            let result = Message::decode(&buf, bits - cut);
            // Either a decode error, or (if the cut only removed padding
            // within the final field) an equal message — never a different
            // successfully-decoded message.
            if let Ok(m) = result {
                prop_assert_eq!(m, msg);
            }
        }
    }
}
