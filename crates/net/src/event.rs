//! Event-driven `std::net` backend for the server-driven protocol.
//!
//! The replicated backend ([`crate::tcp`]) needs one blocking read per
//! source *in program order*. The server-driven protocol has no such
//! order: after a command fan-out, responses arrive whenever each source
//! finishes its local compute. This backend therefore runs the whole
//! server side in **one thread** with non-blocking sockets, multiplexed
//! by a readiness [`Reactor`]: `epoll` wakes the thread the moment any
//! connection has bytes (or the deadline-derived timeout expires), ready
//! connections are pumped through per-source ring-buffer frame
//! reassembly ([`crate::frame::FrameAssembler`]) into per-source
//! inboxes, and [`EventTcpServer::recv`] drains the inbox it was asked
//! for — so a slow source never blocks the harvest of the others,
//! without a thread per connection and without the former 200 µs
//! sleep-poll latency floor. Hosts without epoll (or `--reactor sleep`)
//! fall back to the classic sweep-and-park loop behind the same
//! interface.
//!
//! Sources stay blocking ([`EventTcpSource`]): each one strictly
//! alternates "read a command, compute, write the response", so there is
//! nothing for it to multiplex.
//!
//! The handshake reuses the replicated backend's hello frame with
//! distinct role bytes, so a replicated peer connecting to a protocol
//! server (or vice versa) fails the handshake with a typed error instead
//! of deadlocking mid-run.

use crate::frame::{
    expect_frame, note_single_write_frame, write_frame, FrameAssembler, FrameBuf, FRAME_CMD,
    FRAME_HELLO, FRAME_RESP,
};
use crate::network::NetworkStats;
use crate::protocol::{
    charge_command, charge_response, Command, CommandTransport, DeadlinePolicy, EncodedCommand,
    Response, SourceEndpoint,
};
use crate::reactor::{park, Event, Reactor, ReactorChoice, ReactorKind};
use crate::tcp::{configure, decode_hello, encode_hello, transport_err, IO_TIMEOUT};
use crate::{NetError, Result};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};

/// Hello role byte of a protocol (non-replicated) source.
pub(crate) const ROLE_PROTO_SOURCE: u8 = 2;
/// Hello role byte of a protocol (non-replicated) server.
pub(crate) const ROLE_PROTO_SERVER: u8 = 3;

/// Park between empty cycles of the *sleep* reactor only (the epoll
/// reactor blocks in the kernel instead). This is the latency floor the
/// reactor exists to remove; the bench harness measures against it.
pub const POLL_BACKOFF: Duration = Duration::from_micros(200);

/// Read chunks one connection may pull per pump call: a firehose
/// connection yields the cycle after this many reads so every other
/// ready connection gets a turn (level-triggered readiness re-reports
/// whatever it left buffered).
const PUMP_CHUNKS: usize = 32;

/// A bound listener for the protocol backend (two-step construction,
/// like [`crate::tcp::TcpServerBinding`]).
#[derive(Debug)]
pub struct EventServerBinding {
    listener: TcpListener,
    reactor: ReactorChoice,
}

impl EventServerBinding {
    /// Binds the listening socket (`"127.0.0.1:0"` picks a free port).
    /// The server will use the default reactor ([`ReactorChoice::Epoll`]
    /// with graceful fallback) unless
    /// [`with_reactor`](Self::with_reactor) overrides it.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<EventServerBinding> {
        let listener = TcpListener::bind(addr).map_err(|e| transport_err("bind", e))?;
        Ok(EventServerBinding {
            listener,
            reactor: ReactorChoice::default(),
        })
    }

    /// Selects the reactor implementation the accepted server will use
    /// (the `--reactor` CLI flag).
    #[must_use]
    pub fn with_reactor(mut self, choice: ReactorChoice) -> EventServerBinding {
        self.reactor = choice;
        self
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))
    }

    /// Accepts and handshakes exactly `sources` protocol sources,
    /// consuming the listener. Validation matches the replicated
    /// backend: magic/version, matching source count and configuration
    /// fingerprint, unique in-range source ids — plus the protocol role
    /// byte, so a replicated `ekm source` cannot join a protocol run.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on socket failures, [`NetError::Handshake`]
    /// on protocol violations.
    pub fn accept(self, sources: usize, fp: u64) -> Result<EventTcpServer> {
        self.accept_absent(sources, fp, &[])
    }

    /// [`accept`](Self::accept), but the ids in `absent` are expected
    /// to never connect: their shard owners died before a resume and
    /// their rounds run through a replica host's connection instead
    /// (`ekm serve --resume` learns the set from the journal's
    /// promotion records). An absent source's slot is born closed, so
    /// any read of it yields the same typed `SourceLost` a mid-run
    /// disconnect does; a process that tries to handshake under an
    /// absent id is rejected, because the run's state for that origin
    /// lives on its host now.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on socket failures, [`NetError::Handshake`]
    /// on protocol violations (including an absent id reconnecting).
    pub fn accept_absent(
        self,
        sources: usize,
        fp: u64,
        absent: &[usize],
    ) -> Result<EventTcpServer> {
        assert!(sources > 0, "server needs at least one source");
        let mut reactor = Reactor::new(self.reactor);
        let mut conns: Vec<Option<Conn>> = (0..sources).map(|_| None).collect();
        let mut connected = 0;
        for &id in absent {
            assert!(id < sources, "absent id {id} out of range");
            if conns[id].is_none() {
                conns[id] = Some(Conn::absent());
                connected += 1;
            }
        }
        assert!(
            connected < sources,
            "at least one source must actually connect"
        );
        while connected < sources {
            let (mut stream, _) = self
                .listener
                .accept()
                .map_err(|e| transport_err("accept", e))?;
            configure(&stream, IO_TIMEOUT)?;
            let (payload, _) = expect_frame(&mut stream, FRAME_HELLO)?;
            let (role, source_id, m, got_fp) = decode_hello(&payload)?;
            if role != ROLE_PROTO_SOURCE {
                return Err(NetError::Handshake {
                    reason: format!(
                        "unexpected role {role} in source hello \
                         (a replicated source cannot join a protocol run)"
                    ),
                });
            }
            if m as usize != sources {
                return Err(NetError::Handshake {
                    reason: format!("source expects {m} sources, server has {sources}"),
                });
            }
            if got_fp != fp {
                return Err(NetError::Handshake {
                    reason: format!(
                        "configuration fingerprint mismatch \
                         (server {fp:#018x}, source {got_fp:#018x})"
                    ),
                });
            }
            let id = source_id as usize;
            if id >= sources {
                return Err(NetError::Handshake {
                    reason: format!("source id {id} out of range (sources: {sources})"),
                });
            }
            if conns[id].is_some() {
                let reason = if absent.contains(&id) {
                    format!(
                        "source id {id} was absorbed by its replica host before the \
                         resume and cannot rejoin"
                    )
                } else {
                    format!("duplicate source id {id}")
                };
                return Err(NetError::Handshake { reason });
            }
            let ack = encode_hello(ROLE_PROTO_SERVER, source_id, sources as u32, fp);
            write_frame(&mut stream, FRAME_HELLO, &ack, ack.len() * 8)?;
            stream
                .set_nonblocking(true)
                .map_err(|e| transport_err("set_nonblocking", e))?;
            reactor.register(stream.as_raw_fd(), id)?;
            conns[id] = Some(Conn::new(stream));
            connected += 1;
        }
        Ok(EventTcpServer {
            conns: conns
                .into_iter()
                .map(|c| c.expect("all connected"))
                .collect(),
            stats: NetworkStats::new(sources),
            deadline: DeadlinePolicy::default(),
            reactor,
            events: Vec::new(),
        })
    }
}

/// One non-blocking source connection: ring-buffer frame reassembly
/// plus an inbox of complete, decoded responses. A source declared
/// absent at accept time ([`EventServerBinding::accept_absent`]) has no
/// stream at all and behaves like a connection that closed before the
/// first byte.
#[derive(Debug)]
struct Conn {
    stream: Option<TcpStream>,
    asm: FrameAssembler,
    inbox: VecDeque<Response>,
    closed: bool,
    absent: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream: Some(stream),
            asm: FrameAssembler::new(),
            inbox: VecDeque::new(),
            closed: false,
            absent: false,
        }
    }

    /// A source that will never connect (absorbed by its replica host
    /// before a resume): born closed, so a read maps to the same typed
    /// `SourceLost` a mid-run disconnect produces.
    fn absent() -> Conn {
        Conn {
            stream: None,
            asm: FrameAssembler::new(),
            inbox: VecDeque::new(),
            closed: true,
            absent: true,
        }
    }

    /// Reads whatever bytes are ready — directly into the reassembly
    /// ring, at most [`PUMP_CHUNKS`] reads — and parses complete frames
    /// into the inbox. Returns `true` if any byte arrived.
    fn pump(&mut self, source: usize) -> Result<bool> {
        if self.closed {
            return Ok(false);
        }
        let stream = self.stream.as_mut().expect("an open conn has a stream");
        let mut progress = false;
        let mut budget = PUMP_CHUNKS;
        while budget > 0 {
            match stream.read(self.asm.spare()) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.asm.commit(n);
                    progress = true;
                    budget -= 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // A peer that died with traffic in flight surfaces as a
                // reset, not a clean EOF — same typed loss either way,
                // so the driver can reissue or promote around it.
                Err(e)
                    if matches!(
                        e.kind(),
                        ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted
                    ) =>
                {
                    self.closed = true;
                    break;
                }
                Err(e) => return Err(transport_err("protocol read", e)),
            }
        }
        self.parse_frames(source)?;
        Ok(progress)
    }

    /// Drains every complete frame currently in the ring.
    fn parse_frames(&mut self, source: usize) -> Result<()> {
        while let Some((kind, payload, _bits)) = self.asm.next_frame().map_err(|e| match e {
            NetError::Transport { context, detail } => NetError::Transport {
                context,
                detail: format!("{detail} (from source {source})"),
            },
            other => other,
        })? {
            if kind != FRAME_RESP {
                return Err(NetError::ProtocolViolation {
                    context: "protocol server read",
                    expected: "a response frame",
                    got: format!("frame kind {kind} from source {source}"),
                });
            }
            self.inbox.push_back(Response::decode(&payload)?);
        }
        Ok(())
    }
}

/// The server end of an event-driven protocol run: every source
/// connection multiplexed in the calling thread by a readiness reactor,
/// responses harvested in arrival order into per-source inboxes.
#[derive(Debug)]
pub struct EventTcpServer {
    conns: Vec<Conn>,
    stats: NetworkStats,
    deadline: DeadlinePolicy,
    reactor: Reactor,
    events: Vec<Event>,
}

impl EventTcpServer {
    /// Which reactor implementation actually engaged (epoll, or the
    /// sleep fallback).
    pub fn reactor_kind(&self) -> ReactorKind {
        self.reactor.kind()
    }

    fn check(&self, source: usize) -> Result<()> {
        if source >= self.conns.len() {
            return Err(NetError::UnknownSource {
                source,
                sources: self.conns.len(),
            });
        }
        Ok(())
    }

    /// Pumps one connection and, the moment it is observed closed,
    /// deregisters its fd — a closed fd stays level-triggered-readable
    /// forever, so leaving it registered would spin every later wait.
    fn pump_conn(&mut self, source: usize) -> Result<bool> {
        if source >= self.conns.len() {
            return Ok(false);
        }
        let progress = self.conns[source].pump(source)?;
        if self.conns[source].closed {
            if let Some(stream) = self.conns[source].stream.take() {
                self.reactor.deregister(stream.as_raw_fd())?;
            }
        }
        Ok(progress)
    }

    /// One reactor cycle: wait up to `timeout` for readiness, pump every
    /// readable connection. Returns `true` if any byte arrived. The
    /// ready set (including write-readiness) is left in `self.events`
    /// for the caller to inspect.
    fn sweep(&mut self, timeout: Option<Duration>) -> Result<bool> {
        let mut events = std::mem::take(&mut self.events);
        if let Err(e) = self.reactor.wait(timeout, &mut events) {
            self.events = events;
            return Err(e);
        }
        let mut progress = false;
        let mut failure = None;
        for ev in &events {
            if ev.readable {
                match self.pump_conn(ev.token) {
                    Ok(p) => progress |= p,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
        self.events = events;
        match failure {
            Some(e) => Err(e),
            None => Ok(progress),
        }
    }

    /// Writes one pre-framed buffer to a source despite the non-blocking
    /// socket: on backpressure, write interest is registered and the
    /// reactor waits for write readiness (harvesting other sources'
    /// responses meanwhile), bounded by the I/O deadline. The sleep
    /// fallback parks between probes exactly as the old loop did.
    fn write_frame_to(&mut self, source: usize, buf: &[u8]) -> Result<()> {
        let deadline = Instant::now() + self.deadline.io;
        let mut written = 0;
        let mut interest = false;
        let result = loop {
            let write_res = match self.conns[source].stream.as_mut() {
                Some(stream) => {
                    if written == buf.len() {
                        break stream
                            .flush()
                            .map_err(|e| transport_err("protocol flush", e));
                    }
                    stream.write(&buf[written..])
                }
                None => {
                    break Err(NetError::Transport {
                        context: "protocol write",
                        detail: if self.conns[source].absent {
                            "source is absent (absorbed before the resume)".to_string()
                        } else {
                            format!("source {source} connection is closed")
                        },
                    })
                }
            };
            match write_res {
                Ok(0) => {
                    break Err(NetError::Transport {
                        context: "protocol write",
                        detail: "connection closed mid-frame".to_string(),
                    })
                }
                Ok(n) => {
                    if written == 0 && n == buf.len() && buf.len() > 9 {
                        note_single_write_frame();
                    }
                    written += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    let now = Instant::now();
                    if now >= deadline {
                        break Err(NetError::Transport {
                            context: "protocol write",
                            detail: "write timed out".to_string(),
                        });
                    }
                    if !interest {
                        if let Some(fd) = self.conns[source].stream.as_ref().map(|s| s.as_raw_fd())
                        {
                            if let Err(e) = self.reactor.set_write_interest(fd, source, true) {
                                break Err(e);
                            }
                            interest = true;
                        }
                        continue;
                    }
                    // Wait for write readiness; readable peers get
                    // pumped on the way (their responses just land in
                    // their inboxes), so a backpressured send cannot
                    // deadlock against a source mid-response.
                    if let Err(e) = self.sweep(Some(deadline - now)) {
                        break Err(e);
                    }
                    if self.reactor.kind() == ReactorKind::Sleep {
                        park(POLL_BACKOFF);
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => break Err(transport_err("protocol write", e)),
            }
        };
        if interest {
            if let Some(fd) = self.conns[source].stream.as_ref().map(|s| s.as_raw_fd()) {
                // Best-effort: the fd may have been reaped mid-write.
                let _ = self.reactor.set_write_interest(fd, source, false);
            }
        }
        result
    }
}

impl CommandTransport for EventTcpServer {
    fn sources(&self) -> usize {
        self.conns.len()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> Result<()> {
        self.check(source)?;
        charge_command(&mut self.stats, source, cmd)?;
        let bytes = cmd.encode();
        let frame = FrameBuf::new(FRAME_CMD, &bytes, bytes.len() * 8)?;
        self.write_frame_to(source, frame.bytes())
    }

    fn send_encoded(&mut self, source: usize, enc: &EncodedCommand) -> Result<()> {
        self.check(source)?;
        charge_command(&mut self.stats, source, enc.command())?;
        self.write_frame_to(source, enc.frame_bytes())
    }

    fn recv(&mut self, source: usize) -> Result<Response> {
        self.check(source)?;
        let deadline = Instant::now() + self.deadline.command;
        loop {
            if let Some(resp) = self.conns[source].inbox.pop_front() {
                charge_response(&mut self.stats, source, &resp)?;
                return Ok(resp);
            }
            // A vanished or stalled source is a *typed* loss the driver
            // can degrade around, not a transport error.
            if self.conns[source].closed {
                return Ok(Response::SourceLost {
                    reason: format!("source {source} disconnected mid-run"),
                });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            let progress = self.sweep(Some(remaining))?;
            if !progress {
                if Instant::now() >= deadline {
                    return Ok(Response::SourceLost {
                        reason: format!(
                            "source {source} missed the {:?} command deadline",
                            self.deadline.command
                        ),
                    });
                }
                if self.reactor.kind() == ReactorKind::Sleep {
                    park(POLL_BACKOFF);
                }
            }
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.deadline = policy;
    }
}

/// The source end of an event-driven protocol run: a blocking
/// connection that strictly alternates command reads and response
/// writes.
#[derive(Debug)]
pub struct EventTcpSource {
    me: usize,
    stream: TcpStream,
}

impl EventTcpSource {
    /// Connects to a protocol server at `addr` and handshakes as
    /// `source_id` of `sources`, retrying for up to `retry_for` with the
    /// default [`DeadlinePolicy`]'s retry backoff.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if no connection succeeds within
    /// `retry_for`; [`NetError::Handshake`] on parameter or fingerprint
    /// mismatches (a stale source fails here, before any data moves).
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        source_id: usize,
        sources: usize,
        fp: u64,
        retry_for: Duration,
    ) -> Result<EventTcpSource> {
        Self::connect_with_policy(
            addr,
            source_id,
            sources,
            fp,
            retry_for,
            DeadlinePolicy::default(),
        )
    }

    /// [`EventTcpSource::connect`] with the retry backoff derived from
    /// `policy` ([`DeadlinePolicy::retry_backoff`]) instead of the
    /// default — a `--deadline-ms`-tightened run reconnects during
    /// `--resume` recovery at a matching cadence rather than the former
    /// hard-coded 100ms sleep. The wait itself goes through the
    /// reactor's [`park`], the one sleep site in this crate.
    ///
    /// # Errors
    ///
    /// See [`EventTcpSource::connect`].
    pub fn connect_with_policy<A: ToSocketAddrs>(
        addr: A,
        source_id: usize,
        sources: usize,
        fp: u64,
        retry_for: Duration,
        policy: DeadlinePolicy,
    ) -> Result<EventTcpSource> {
        assert!(source_id < sources, "source id out of range");
        let deadline = Instant::now() + retry_for;
        let backoff = policy.retry_backoff();
        let mut stream = loop {
            match TcpStream::connect(&addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(transport_err("connect", e));
                    }
                    park(backoff);
                }
            }
        };
        configure(&stream, IO_TIMEOUT)?;
        let hello = encode_hello(ROLE_PROTO_SOURCE, source_id as u32, sources as u32, fp);
        write_frame(&mut stream, FRAME_HELLO, &hello, hello.len() * 8)?;
        let (ack, _) = expect_frame(&mut stream, FRAME_HELLO)?;
        let (role, echoed_id, m, got_fp) = decode_hello(&ack)?;
        if role != ROLE_PROTO_SERVER || echoed_id as usize != source_id || m as usize != sources {
            return Err(NetError::Handshake {
                reason: "server ack disagrees with the source parameters".to_string(),
            });
        }
        if got_fp != fp {
            return Err(NetError::Handshake {
                reason: format!(
                    "configuration fingerprint mismatch \
                     (source {fp:#018x}, server {got_fp:#018x})"
                ),
            });
        }
        Ok(EventTcpSource {
            me: source_id,
            stream,
        })
    }

    /// The source id this endpoint handshook as.
    pub fn source_id(&self) -> usize {
        self.me
    }
}

impl SourceEndpoint for EventTcpSource {
    fn recv_command(&mut self) -> Result<Command> {
        let (payload, _) = expect_frame(&mut self.stream, FRAME_CMD)?;
        Command::decode(&payload)
    }

    fn send_response(&mut self, resp: Response) -> Result<()> {
        let buf = resp.encode();
        write_frame(&mut self.stream, FRAME_RESP, &buf, buf.len() * 8)
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        // Waiting for the *next command* can span several whole rounds
        // (the server may be waiting out and reissuing stragglers), so
        // reads get the idle deadline; writes are pure I/O.
        // Best-effort: a failed reconfigure keeps the old timeouts.
        let _ = self
            .stream
            .set_read_timeout(Some(policy.idle()))
            .and_then(|()| self.stream.set_write_timeout(Some(policy.io)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Message;
    use crate::protocol::Payload;
    use std::thread;

    const FP: u64 = 0xBEEF_CAFE;

    fn pair_with(sources: usize, choice: ReactorChoice) -> (EventTcpServer, Vec<EventTcpSource>) {
        let binding = EventServerBinding::bind("127.0.0.1:0")
            .unwrap()
            .with_reactor(choice);
        let addr = binding.local_addr().unwrap();
        thread::scope(|scope| {
            let handles: Vec<_> = (0..sources)
                .map(|i| {
                    scope.spawn(move || {
                        EventTcpSource::connect(addr, i, sources, FP, Duration::from_secs(5))
                            .unwrap()
                    })
                })
                .collect();
            let server = binding.accept(sources, FP).unwrap();
            (
                server,
                handles.into_iter().map(|h| h.join().unwrap()).collect(),
            )
        })
    }

    fn pair(sources: usize) -> (EventTcpServer, Vec<EventTcpSource>) {
        pair_with(sources, ReactorChoice::default())
    }

    fn roundtrip_with_charging(choice: ReactorChoice) {
        let (mut server, mut sources) = pair_with(2, choice);
        let msg = Message::CostReport { cost: 2.5 };
        let payload = Payload::of(&msg);
        let bits = payload.bits();

        let handle = thread::spawn(move || {
            for src in &mut sources {
                let cmd = src.recv_command().unwrap();
                assert_eq!(cmd, Command::Stage { index: 1 });
                src.send_response(Response::Up {
                    round: 1,
                    payload: Payload::of(&Message::CostReport { cost: 2.5 }),
                    ops: 7,
                    seconds: 0.0,
                })
                .unwrap();
            }
            sources
        });

        for i in 0..2 {
            server.send(i, &Command::Stage { index: 1 }).unwrap();
        }
        // Harvest in reverse order: the reactor buffers out-of-order
        // arrivals per source.
        for i in [1usize, 0] {
            match server.recv(i).unwrap() {
                Response::Up { payload, ops, .. } => {
                    assert_eq!(ops, 7);
                    assert_eq!(payload.decode().unwrap(), msg);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        handle.join().unwrap();
        assert_eq!(server.stats().total_uplink_bits(), 2 * bits);
        assert_eq!(
            server.stats().uplink_bits_by_kind()["cost-report"],
            2 * bits
        );
        assert_eq!(
            server.stats().total_downlink_bits(),
            0,
            "Stage is control-plane"
        );
    }

    #[test]
    fn command_response_roundtrip_with_charging() {
        roundtrip_with_charging(ReactorChoice::default());
    }

    #[test]
    fn command_response_roundtrip_under_the_sleep_reactor() {
        roundtrip_with_charging(ReactorChoice::Sleep);
    }

    #[test]
    fn shared_encoding_is_charged_and_delivered_like_a_plain_send() {
        let (mut server, mut sources) = pair(2);
        let payload = Payload::of(&Message::SampleAllocation { size: 5 });
        let bits = payload.bits();
        let enc = EncodedCommand::new(Command::Deliver { payload });
        let handle = thread::spawn(move || {
            for src in &mut sources {
                let cmd = src.recv_command().unwrap();
                assert!(matches!(cmd, Command::Deliver { .. }));
                src.send_response(Response::Done {
                    round: 1,
                    rows: 0,
                    cols: 0,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
            }
        });
        // One encoding, two recipients: same bytes, charged per source.
        for i in 0..2 {
            server.send_encoded(i, &enc).unwrap();
            server.recv(i).unwrap();
        }
        handle.join().unwrap();
        assert_eq!(server.stats().total_downlink_bits(), 2 * bits);
    }

    #[test]
    fn deliver_charges_downlink() {
        let (mut server, mut sources) = pair(1);
        let payload = Payload::of(&Message::SampleAllocation { size: 5 });
        let bits = payload.bits();
        let handle = thread::spawn(move || {
            let cmd = sources[0].recv_command().unwrap();
            assert!(matches!(cmd, Command::Deliver { .. }));
            sources[0]
                .send_response(Response::Done {
                    round: 1,
                    rows: 0,
                    cols: 0,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
        });
        server.send(0, &Command::Deliver { payload }).unwrap();
        server.recv(0).unwrap();
        handle.join().unwrap();
        assert_eq!(server.stats().total_downlink_bits(), bits);
    }

    #[test]
    fn replica_control_plane_transits_the_event_backend() {
        // The failover vocabulary (Promote/Replay/Forward and their
        // acks) must cross the real socket backend like any other
        // frame, charged to the replica ledger and *never* to the
        // classic totals the run digest hashes.
        let (mut server, mut sources) = pair(2);
        let handle = thread::spawn(move || {
            let cmd = sources[1].recv_command().unwrap();
            assert_eq!(cmd, Command::Promote { origin: 0 });
            sources[1]
                .send_response(Response::Promoted {
                    origin: 0,
                    round: 0,
                })
                .unwrap();
            let cmd = sources[1].recv_command().unwrap();
            assert!(matches!(
                cmd,
                Command::Replay {
                    origin: 0,
                    round: 1,
                    ..
                }
            ));
            sources[1]
                .send_response(Response::Replayed {
                    origin: 0,
                    round: 1,
                    fingerprint: 7,
                })
                .unwrap();
            let Command::Forward { origin, cmd } = sources[1].recv_command().unwrap() else {
                panic!("expected a forward-wrapped command");
            };
            assert_eq!(origin, 0);
            assert_eq!(*cmd, Command::Stage { index: 1 });
            sources[1]
                .send_response(Response::Forwarded {
                    origin: 0,
                    resp: Box::new(Response::Done {
                        round: 2,
                        rows: 0,
                        cols: 0,
                        ops: 0,
                        seconds: 0.0,
                    }),
                })
                .unwrap();
            sources
        });

        server.send(1, &Command::Promote { origin: 0 }).unwrap();
        assert!(matches!(
            server.recv(1).unwrap(),
            Response::Promoted { origin: 0, .. }
        ));
        server
            .send(
                1,
                &Command::Replay {
                    origin: 0,
                    round: 1,
                    cmd: Box::new(Command::Stage { index: 0 }),
                },
            )
            .unwrap();
        assert!(matches!(
            server.recv(1).unwrap(),
            Response::Replayed { origin: 0, .. }
        ));
        server
            .send(
                1,
                &Command::Forward {
                    origin: 0,
                    cmd: Box::new(Command::Stage { index: 1 }),
                },
            )
            .unwrap();
        match server.recv(1).unwrap() {
            Response::Forwarded { origin, resp } => {
                assert_eq!(origin, 0);
                assert!(matches!(*resp, Response::Done { round: 2, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
        handle.join().unwrap();

        assert_eq!(server.stats().replica_promotions(), 1);
        assert_eq!(server.stats().replayed_rounds(), 1);
        assert!(server.stats().replica_bits() > 0);
        // Stage is control-plane and Done carries no payload: the
        // classic ledgers saw nothing, so a promoted run's digest can
        // stay bit-identical to its never-failed twin.
        assert_eq!(server.stats().total_uplink_bits(), 0);
        assert_eq!(server.stats().total_downlink_bits(), 0);
    }

    #[test]
    fn disconnect_mid_stage_is_source_lost() {
        let (mut server, sources) = pair(1);
        drop(sources); // the source vanishes before answering
        server.send(0, &Command::Describe).ok();
        match server.recv(0).unwrap() {
            Response::SourceLost { reason } => assert!(reason.contains("disconnected")),
            other => panic!("expected SourceLost, got {other:?}"),
        }
    }

    #[test]
    fn missed_deadline_is_source_lost() {
        // Both reactor kinds must map an `epoll_wait`/park timeout to
        // the same typed loss the driver's straggler machinery expects.
        for choice in [ReactorChoice::Epoll, ReactorChoice::Sleep] {
            let (mut server, _sources) = pair_with(1, choice);
            server.set_deadline(DeadlinePolicy::uniform(Duration::from_millis(20)));
            let t0 = Instant::now();
            // The source is alive but never answers: the command
            // deadline trips and the driver gets a typed loss, not a
            // hang.
            match server.recv(0).unwrap() {
                Response::SourceLost { reason } => {
                    assert!(reason.contains("deadline"), "{choice:?}: {reason}")
                }
                other => panic!("expected SourceLost, got {other:?} ({choice:?})"),
            }
            let elapsed = t0.elapsed();
            assert!(
                elapsed >= Duration::from_millis(19) && elapsed < Duration::from_secs(5),
                "{choice:?} deadline expiry mistimed: {elapsed:?}"
            );
        }
    }

    #[test]
    fn partial_frames_wake_and_reassemble_one_byte_at_a_time() {
        // A response trickling in one byte per write must wake the
        // reactor on every byte and assemble exactly once — the
        // worst-case framing a real network can produce.
        let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        let trickler = thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let hello = encode_hello(ROLE_PROTO_SOURCE, 0, 1, FP);
            write_frame(&mut stream, FRAME_HELLO, &hello, hello.len() * 8).unwrap();
            expect_frame(&mut stream, FRAME_HELLO).unwrap();
            let resp = Response::Up {
                round: 1,
                payload: Payload::of(&Message::CostReport { cost: 4.25 }),
                ops: 3,
                seconds: 0.0,
            };
            let body = resp.encode();
            let mut wire = Vec::new();
            write_frame(&mut wire, FRAME_RESP, &body, body.len() * 8).unwrap();
            for byte in wire {
                stream.write_all(&[byte]).unwrap();
                stream.flush().unwrap();
                thread::sleep(Duration::from_micros(200));
            }
            stream
        });
        let mut server = binding.accept(1, FP).unwrap();
        match server.recv(0).unwrap() {
            Response::Up { payload, ops, .. } => {
                assert_eq!(ops, 3);
                assert_eq!(
                    payload.decode().unwrap(),
                    Message::CostReport { cost: 4.25 }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        trickler.join().unwrap();
    }

    #[test]
    fn firehose_source_cannot_starve_a_quiet_one() {
        // Source 0 floods unsolicited responses; source 1 answers once,
        // late. recv(1) must complete while the flood is still running —
        // the bounded pump and per-source inboxes guarantee the quiet
        // source's frame is harvested under pressure.
        let (mut server, mut sources) = pair(2);
        let quiet = sources.pop().unwrap();
        let mut firehose = sources.pop().unwrap();
        let flood = thread::spawn(move || {
            for round in 0..2000u64 {
                firehose
                    .send_response(Response::Up {
                        round,
                        payload: Payload::of(&Message::CostReport { cost: 1.0 }),
                        ops: 1,
                        seconds: 0.0,
                    })
                    .unwrap();
            }
            firehose
        });
        let answer = thread::spawn(move || {
            let mut quiet = quiet;
            thread::sleep(Duration::from_millis(10));
            quiet
                .send_response(Response::Done {
                    round: 9,
                    rows: 0,
                    cols: 0,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
            quiet
        });
        let t0 = Instant::now();
        match server.recv(1).unwrap() {
            Response::Done { round: 9, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "quiet source starved: {:?}",
            t0.elapsed()
        );
        // The flood was buffered, not lost: drain a few to prove it.
        for _ in 0..3 {
            assert!(matches!(server.recv(0).unwrap(), Response::Up { .. }));
        }
        flood.join().unwrap();
        answer.join().unwrap();
    }

    #[test]
    fn stale_fingerprint_rejected_at_handshake() {
        let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        let src = thread::spawn(move || {
            EventTcpSource::connect(addr, 0, 1, FP ^ 1, Duration::from_secs(5))
        });
        let err = binding.accept(1, FP).unwrap_err();
        assert!(matches!(err, NetError::Handshake { .. }));
        assert!(src.join().unwrap().is_err());
    }

    #[test]
    fn connect_retry_backoff_derives_from_the_deadline_policy() {
        // No listener: the retry loop must exhaust its window using the
        // policy-derived backoff. With the former hard-coded 100ms sleep
        // a 120ms window allowed at most two attempts; the 20ms policy
        // (1ms backoff) retries densely and still gives up on time.
        let policy = DeadlinePolicy::uniform(Duration::from_millis(20));
        assert_eq!(policy.retry_backoff(), Duration::from_millis(1));
        let t0 = Instant::now();
        let err = EventTcpSource::connect_with_policy(
            "127.0.0.1:1",
            0,
            1,
            FP,
            Duration::from_millis(120),
            policy,
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }), "{err:?}");
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(100) && elapsed < Duration::from_secs(5),
            "retry window not honored: {elapsed:?}"
        );
    }

    #[test]
    fn replicated_source_cannot_join_a_protocol_run() {
        use crate::tcp::TcpSource;
        let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        let src = thread::spawn(move || TcpSource::connect(addr, 0, 1, FP, Duration::from_secs(5)));
        let err = binding.accept(1, FP).unwrap_err();
        assert!(
            matches!(err, NetError::Handshake { ref reason } if reason.contains("replicated")),
            "{err:?}"
        );
        assert!(src.join().unwrap().is_err());
    }

    #[test]
    fn accept_absent_serves_the_survivors_without_the_dead_owner() {
        let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        thread::scope(|scope| {
            // Only source 1 connects; source 0 was absorbed before the
            // resume and must not be waited for.
            let survivor = scope.spawn(move || {
                EventTcpSource::connect(addr, 1, 2, FP, Duration::from_secs(5)).unwrap()
            });
            let mut server = binding.accept_absent(2, FP, &[0]).unwrap();
            let mut src = survivor.join().unwrap();

            // The absent slot answers like a closed connection: a typed
            // loss the driver can promote around, not a transport error.
            match server.recv(0).unwrap() {
                Response::SourceLost { .. } => {}
                other => panic!("expected a source-lost answer, got {other:?}"),
            }
            // …while the survivor's connection works normally.
            let echo = scope.spawn(move || {
                let cmd = src.recv_command().unwrap();
                assert_eq!(cmd, Command::Describe);
                src.send_response(Response::Done {
                    round: 1,
                    rows: 1,
                    cols: 1,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
            });
            server.send(1, &Command::Describe).unwrap();
            assert!(matches!(
                server.recv(1).unwrap(),
                Response::Done { round: 1, .. }
            ));
            echo.join().unwrap();
        });
    }

    #[test]
    fn an_absorbed_id_cannot_rejoin_a_resumed_accept() {
        let binding = EventServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        // The dead owner's id tries to handshake: the accept must
        // reject it — that origin's state lives on its host now.
        let ghost =
            thread::spawn(move || EventTcpSource::connect(addr, 0, 2, FP, Duration::from_secs(5)));
        let err = binding.accept_absent(2, FP, &[0]).unwrap_err();
        assert!(
            matches!(err, NetError::Handshake { ref reason } if reason.contains("absorbed")),
            "{err:?}"
        );
        assert!(ghost.join().unwrap().is_err());
    }
}
