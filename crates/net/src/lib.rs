//! Simulated edge network with exact transmitted-bit accounting.
//!
//! The paper's central metric is *communication cost* — how many bits the
//! data sources push over their wireless uplinks. This crate makes that
//! measurement real rather than analytical:
//!
//! * [`bitstream`] — a `BitWriter`/`BitReader` pair for non-byte-aligned
//!   payloads (a quantized scalar occupies `1 + 11 + s` bits, paper §6.1);
//! * [`wire`] — the encoding of scalars, vectors, and matrices at either
//!   full or quantized precision;
//! * [`messages`] — the protocol messages exchanged by the paper's
//!   algorithms (raw data, coresets, SVD summaries for disPCA, cost
//!   reports and sample allocations for disSS, final centers);
//! * [`network`] — an in-process star network of `m` data sources and one
//!   server; every send actually encodes the message, counts its bits, and
//!   hands the *decoded* message to the receiver, so anything lossy about
//!   the wire format (quantization) is faithfully reflected in what the
//!   server computes on;
//! * [`transport`] — the [`Transport`]/[`TransportLink`] abstraction the
//!   pipelines run against, implemented by both the in-process [`Network`]
//!   and the socket backend;
//! * [`frame`] — length-prefixed framing (bit-exact lengths) for socket
//!   transports;
//! * [`tcp`] — the TCP backend: the same protocol bytes over real
//!   connections, with byte-equality divergence checks proving a socket
//!   run bit-identical to the simulation.
//!
//! # Example
//!
//! ```
//! use ekm_net::messages::Message;
//! use ekm_net::network::Network;
//! use ekm_linalg::Matrix;
//!
//! let mut net = Network::new(2);
//! let msg = Message::CostReport { cost: 42.0 };
//! let received = net.send_to_server(0, &msg).unwrap();
//! assert_eq!(received, msg);
//! assert!(net.stats().uplink_bits(0) > 0);
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the epoll syscall shim in [`reactor`] carries the
// crate's single scoped `#[allow(unsafe_code)]` (three libc declarations).
#![deny(unsafe_code)]

pub mod bitstream;
mod error;
pub mod event;
pub mod frame;
pub mod messages;
pub mod network;
pub mod protocol;
pub mod reactor;
pub mod routing;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use error::NetError;
pub use event::{EventServerBinding, EventTcpServer, EventTcpSource};
pub use frame::FrameBuf;
pub use network::{Network, NetworkStats};
pub use protocol::{
    Command, CommandTransport, DeadlinePolicy, EncodedCommand, Payload, Response, SourceEndpoint,
};
pub use reactor::{Reactor, ReactorChoice, ReactorKind};
pub use routing::RoutingTransport;
pub use tcp::{RunDigest, TcpServer, TcpServerBinding, TcpSource};
pub use transport::{Transport, TransportLink};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, NetError>;
