//! The simulated star network: `m` data sources, one edge server.
//!
//! Every send encodes the message, charges its exact bit length to the
//! right counter, and returns the *decoded* message — so the receiver
//! computes on exactly what survived the wire format (including
//! quantization), and communication totals are measured, not estimated.

use crate::messages::Message;
use crate::{NetError, Result};
use std::collections::BTreeMap;

/// Per-direction, per-source transmission counters.
///
/// The classic ledgers (uplink/downlink bits, messages, by-kind) describe
/// the *protocol* cost and are identical across aggregation topologies by
/// construction. The tree-topology counters (`relay_*`, `server_fold_*`,
/// `merge_levels`) describe the *physical placement* of that traffic
/// under `--topology tree`: peer-merge payloads relayed through the
/// server, the single folded root the server actually receives, and the
/// per-level active sets proving the `O(log s)` round count. They stay
/// zero/empty on star and simulation runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    uplink_bits: Vec<u64>,
    downlink_bits: Vec<u64>,
    uplink_msgs: Vec<u64>,
    downlink_msgs: Vec<u64>,
    uplink_by_kind: BTreeMap<&'static str, u64>,
    relay_bits: Vec<u64>,
    relay_msgs: Vec<u64>,
    server_fold_bits: u64,
    server_fold_inputs: u64,
    /// `(gather, level) → active summary holders entering the level`.
    merge_levels: BTreeMap<(u8, u64), u64>,
    replica_promotions: u64,
    replayed_rounds: u64,
    replica_bits: u64,
}

impl NetworkStats {
    /// Zeroed counters for `sources` sources. Public so replaying
    /// transports (the journal layer in `ekm_core`) can rebuild an exact
    /// ledger outside this crate.
    pub fn new(sources: usize) -> Self {
        NetworkStats {
            uplink_bits: vec![0; sources],
            downlink_bits: vec![0; sources],
            uplink_msgs: vec![0; sources],
            downlink_msgs: vec![0; sources],
            uplink_by_kind: BTreeMap::new(),
            relay_bits: vec![0; sources],
            relay_msgs: vec![0; sources],
            server_fold_bits: 0,
            server_fold_inputs: 0,
            merge_levels: BTreeMap::new(),
            replica_promotions: 0,
            replayed_rounds: 0,
            replica_bits: 0,
        }
    }

    /// Number of sources tracked.
    pub fn sources(&self) -> usize {
        self.uplink_bits.len()
    }

    /// Bits source `i` sent to the server.
    pub fn uplink_bits(&self, source: usize) -> u64 {
        self.uplink_bits[source]
    }

    /// Bits the server sent to source `i`.
    pub fn downlink_bits(&self, source: usize) -> u64 {
        self.downlink_bits[source]
    }

    /// Total uplink bits over all sources — the paper's "communication
    /// cost over all the data sources".
    pub fn total_uplink_bits(&self) -> u64 {
        self.uplink_bits.iter().sum()
    }

    /// Total downlink bits over all sources.
    pub fn total_downlink_bits(&self) -> u64 {
        self.downlink_bits.iter().sum()
    }

    /// Total messages sent upstream.
    pub fn total_uplink_messages(&self) -> u64 {
        self.uplink_msgs.iter().sum()
    }

    /// Total messages sent downstream.
    pub fn total_downlink_messages(&self) -> u64 {
        self.downlink_msgs.iter().sum()
    }

    /// Normalized uplink communication cost: total uplink bits divided by
    /// the bit size of the raw dataset (`n·d` doubles) — the paper's
    /// Table 3/4 metric, where "NR" (transmit raw data) scores 1.
    pub fn normalized_uplink(&self, n: usize, d: usize) -> f64 {
        let raw_bits = (n as f64) * (d as f64) * 64.0;
        self.total_uplink_bits() as f64 / raw_bits
    }

    /// Uplink bits broken down by message kind (protocol phase): e.g.
    /// "svd-summary" is the disPCA term Algorithm 4 shrinks, "coreset" is
    /// the disSS samples, "cost-report" the scalar round of footnote 1.
    pub fn uplink_bits_by_kind(&self) -> &BTreeMap<&'static str, u64> {
        &self.uplink_by_kind
    }

    /// Charges one uplink message of `bits` to `source` (shared by every
    /// transport backend, so accounting is identical by construction;
    /// public for the journal-replay accounting path).
    pub fn charge_uplink(&mut self, source: usize, bits: usize, kind: &'static str) {
        self.uplink_bits[source] += bits as u64;
        self.uplink_msgs[source] += 1;
        *self.uplink_by_kind.entry(kind).or_insert(0) += bits as u64;
    }

    /// Charges one downlink message of `bits` to `source` (public for
    /// the journal-replay accounting path).
    pub fn charge_downlink(&mut self, source: usize, bits: usize) {
        self.downlink_bits[source] += bits as u64;
        self.downlink_msgs[source] += 1;
    }

    /// Charges one tree-topology relay message of `bits` touching
    /// `source` — a peer summary forwarded through the server during a
    /// pairwise merge. Kept off the classic ledgers so those stay
    /// bit-identical to the star topology.
    pub fn charge_relay(&mut self, source: usize, bits: u64) {
        self.relay_bits[source] += bits;
        self.relay_msgs[source] += 1;
    }

    /// Charges the folded root summary the server keeps as a fold input
    /// under `--topology tree` (exactly one per gather on a fault-free
    /// run).
    pub fn charge_server_fold(&mut self, bits: u64) {
        self.server_fold_bits += bits;
        self.server_fold_inputs += 1;
    }

    /// Records the active holder count entering merge level `level` of
    /// gather `gather`. Idempotent per `(gather, level)`, so reissued or
    /// journal-replayed commands cannot inflate the record.
    pub fn note_merge_level(&mut self, gather: u8, level: u64, active: u64) {
        self.merge_levels.entry((gather, level)).or_insert(active);
    }

    /// Relay bits that passed through `source` during tree merges.
    pub fn relay_bits(&self, source: usize) -> u64 {
        self.relay_bits[source]
    }

    /// Total tree-topology relay bits over all sources.
    pub fn total_relay_bits(&self) -> u64 {
        self.relay_bits.iter().sum()
    }

    /// Total relay messages over all sources.
    pub fn total_relay_messages(&self) -> u64 {
        self.relay_msgs.iter().sum()
    }

    /// Data-plane bits the server actually received as fold inputs under
    /// `--topology tree` (the folded roots only).
    pub fn server_fold_bits(&self) -> u64 {
        self.server_fold_bits
    }

    /// Number of fold inputs the server received under `--topology tree`
    /// (one per gather on a fault-free run, regardless of `s`).
    pub fn server_fold_inputs(&self) -> u64 {
        self.server_fold_inputs
    }

    /// The recorded merge levels: `(gather, level) → active holders`.
    pub fn merge_levels(&self) -> &BTreeMap<(u8, u64), u64> {
        &self.merge_levels
    }

    /// Charges one replica-promotion control exchange of `bits`: the
    /// promote command, the replayed-round wrappers' overhead, and their
    /// acknowledgements. Kept off the classic ledgers so a recovered run
    /// stays bit-identical to its never-failed twin there; the recovery
    /// cost is observable here instead.
    pub fn charge_promotion(&mut self, bits: u64) {
        self.replica_promotions += 1;
        self.replica_bits += bits;
    }

    /// Charges one replayed round of `bits` delivered to a promoted
    /// replica while it caught up to its dead origin's state.
    pub fn charge_replay(&mut self, bits: u64) {
        self.replayed_rounds += 1;
        self.replica_bits += bits;
    }

    /// Charges replica-plane control bits that are neither a promotion
    /// nor a full replayed round (forward-wrapper overhead on live
    /// rounds routed to a promoted host).
    pub fn charge_replica_bits(&mut self, bits: u64) {
        self.replica_bits += bits;
    }

    /// Replica promotions performed during the run (a dead owner's
    /// shard answered by a replica from then on).
    pub fn replica_promotions(&self) -> u64 {
        self.replica_promotions
    }

    /// Completed rounds replayed to promoted replicas to rebuild their
    /// dead origins' state.
    pub fn replayed_rounds(&self) -> u64 {
        self.replayed_rounds
    }

    /// Total replica-plane bits: promotions, replayed rounds, and
    /// forward-wrapper overhead. Zero on a fault-free run.
    pub fn replica_bits(&self) -> u64 {
        self.replica_bits
    }

    /// The deepest per-gather level count (merge rounds plus the root
    /// emit) — the number the `O(log s)` contract bounds.
    pub fn max_merge_rounds(&self) -> u64 {
        let mut per_gather: BTreeMap<u8, u64> = BTreeMap::new();
        for &(gather, level) in self.merge_levels.keys() {
            let e = per_gather.entry(gather).or_insert(0);
            *e = (*e).max(level + 1);
        }
        per_gather.values().copied().max().unwrap_or(0)
    }

    /// Folds a link's private counters into these statistics.
    pub(crate) fn merge_link(&mut self, link: SourceLink) {
        self.uplink_bits[link.source] += link.uplink_bits;
        self.downlink_bits[link.source] += link.downlink_bits;
        self.uplink_msgs[link.source] += link.uplink_msgs;
        self.downlink_msgs[link.source] += link.downlink_msgs;
        for (kind, bits) in link.uplink_by_kind {
            *self.uplink_by_kind.entry(kind).or_insert(0) += bits;
        }
    }
}

/// An independent, thread-safe handle for one data source's traffic.
///
/// Obtained from [`Transport::take_links`](crate::Transport::take_links).
/// Each link owns private counters — no locks or atomics are needed
/// because every worker thread owns its source's link exclusively — and
/// the owner merges them back into the [`Network`] with
/// [`Network::absorb`] at the thread-scope barrier. Encoding/decoding is
/// pure, so links can run concurrently on `std::thread::scope` workers
/// while accounting stays *exact*: after `absorb`, totals are identical
/// to what the same sends through [`Network::send_to_server`] /
/// [`Network::send_to_source`] would have produced.
///
/// ```
/// use ekm_net::{messages::Message, Network, Transport};
///
/// let mut net = Network::new(3);
/// let mut links = net.take_links(3).unwrap();
/// std::thread::scope(|scope| {
///     for link in &mut links {
///         scope.spawn(move || {
///             link.send_to_server(&Message::CostReport { cost: 1.0 }).unwrap();
///         });
///     }
/// });
/// net.absorb(links);
/// assert_eq!(net.stats().total_uplink_messages(), 3);
/// ```
#[derive(Debug)]
pub struct SourceLink {
    source: usize,
    uplink_bits: u64,
    downlink_bits: u64,
    uplink_msgs: u64,
    downlink_msgs: u64,
    uplink_by_kind: BTreeMap<&'static str, u64>,
}

impl SourceLink {
    pub(crate) fn new(source: usize) -> Self {
        SourceLink {
            source,
            uplink_bits: 0,
            downlink_bits: 0,
            uplink_msgs: 0,
            downlink_msgs: 0,
            uplink_by_kind: BTreeMap::new(),
        }
    }

    /// The source index this link belongs to.
    pub fn source(&self) -> usize {
        self.source
    }

    /// Uplink bits charged to this link so far (not yet absorbed).
    pub fn pending_uplink_bits(&self) -> u64 {
        self.uplink_bits
    }

    /// Sends `msg` from this source to the server: encodes, charges the
    /// link's private uplink counters, and returns what the server
    /// decodes.
    ///
    /// # Errors
    ///
    /// Decode errors if the message round-trip fails (a bug in the wire
    /// format — surfaced rather than swallowed).
    pub fn send_to_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        self.charge_uplink(bits, msg.kind());
        Message::decode(&buf, bits)
    }

    /// Charges one uplink message of `bits` to this link's counters
    /// (shared with the socket-backed links, which charge the bytes that
    /// actually crossed the wire).
    pub(crate) fn charge_uplink(&mut self, bits: usize, kind: &'static str) {
        self.uplink_bits += bits as u64;
        self.uplink_msgs += 1;
        *self.uplink_by_kind.entry(kind).or_insert(0) += bits as u64;
    }

    /// Charges one downlink message of `bits` to this link's counters.
    pub(crate) fn charge_downlink(&mut self, bits: usize) {
        self.downlink_bits += bits as u64;
        self.downlink_msgs += 1;
    }

    /// Delivers `msg` from the server to this source, charging the
    /// link's private downlink counters, and returns what the source
    /// decodes.
    ///
    /// # Errors
    ///
    /// See [`SourceLink::send_to_server`].
    pub fn recv_from_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        self.charge_downlink(bits);
        Message::decode(&buf, bits)
    }
}

/// An in-process star network with exact bit accounting.
#[derive(Debug, Clone)]
pub struct Network {
    sources: usize,
    stats: NetworkStats,
}

impl Network {
    /// Creates a network with `m` data sources and one server.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0`.
    pub fn new(sources: usize) -> Self {
        assert!(sources > 0, "network needs at least one source");
        Network {
            sources,
            stats: NetworkStats::new(sources),
        }
    }

    /// Number of data sources.
    pub fn sources(&self) -> usize {
        self.sources
    }

    /// Sends `msg` from source `source` to the server: encodes, charges
    /// the uplink, and returns what the server decodes.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownSource`] for an out-of-range source.
    /// * Decode errors if the message round-trip fails (a bug in the wire
    ///   format — surfaced rather than swallowed).
    pub fn send_to_server(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        self.stats.charge_uplink(source, bits, msg.kind());
        Message::decode(&buf, bits)
    }

    /// Sends `msg` from the server to source `source`.
    ///
    /// # Errors
    ///
    /// See [`Network::send_to_server`].
    pub fn send_to_source(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        self.stats.charge_downlink(source, bits);
        Message::decode(&buf, bits)
    }

    /// Broadcasts `msg` from the server to every source, charging each
    /// downlink, and returns the decoded copy each receives.
    ///
    /// # Errors
    ///
    /// See [`Network::send_to_server`].
    pub fn broadcast_to_sources(&mut self, msg: &Message) -> Result<Vec<Message>> {
        (0..self.sources)
            .map(|i| self.send_to_source(i, msg))
            .collect()
    }

    /// Merges the counters accumulated on `links` into this network's
    /// statistics (the "barrier" side of
    /// [`Transport::take_links`](crate::Transport::take_links)).
    ///
    /// # Panics
    ///
    /// Panics if a link belongs to a source index outside this network —
    /// links are only ever minted by [`Network::links`], so this
    /// indicates links crossed between different networks.
    pub fn absorb(&mut self, links: impl IntoIterator<Item = SourceLink>) {
        for link in links {
            assert!(
                link.source < self.sources,
                "absorbed a link for source {} but the network has {}",
                link.source,
                self.sources
            );
            self.stats.merge_link(link);
        }
    }

    /// Read access to the accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Resets all counters (e.g. between Monte-Carlo runs).
    pub fn reset_stats(&mut self) {
        self.stats = NetworkStats::new(self.sources);
    }

    fn check(&self, source: usize) -> Result<()> {
        if source >= self.sources {
            return Err(NetError::UnknownSource {
                source,
                sources: self.sources,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::wire::Precision;
    use ekm_linalg::Matrix;

    #[test]
    fn uplink_accounting_exact() {
        let mut net = Network::new(3);
        let msg = Message::CostReport { cost: 1.0 };
        let (_, bits) = msg.encode();
        net.send_to_server(1, &msg).unwrap();
        net.send_to_server(1, &msg).unwrap();
        assert_eq!(net.stats().uplink_bits(1), 2 * bits as u64);
        assert_eq!(net.stats().uplink_bits(0), 0);
        assert_eq!(net.stats().total_uplink_bits(), 2 * bits as u64);
        assert_eq!(net.stats().total_uplink_messages(), 2);
    }

    #[test]
    fn downlink_and_broadcast() {
        let mut net = Network::new(4);
        let msg = Message::SampleAllocation { size: 9 };
        let (_, bits) = msg.encode();
        let received = net.broadcast_to_sources(&msg).unwrap();
        assert_eq!(received.len(), 4);
        assert!(received.iter().all(|m| *m == msg));
        assert_eq!(net.stats().total_downlink_bits(), 4 * bits as u64);
        assert_eq!(net.stats().total_downlink_messages(), 4);
        assert_eq!(net.stats().total_uplink_bits(), 0);
    }

    #[test]
    fn decoded_message_matches_sent() {
        let mut net = Network::new(1);
        let msg = Message::Coreset {
            points: Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.25),
            weights: vec![1.0, 2.0, 3.0],
            delta: 0.5,
            precision: Precision::Full,
            weights_precision: Precision::Full,
        };
        let received = net.send_to_server(0, &msg).unwrap();
        assert_eq!(received, msg);
    }

    #[test]
    fn unknown_source_rejected() {
        let mut net = Network::new(2);
        let msg = Message::CostReport { cost: 0.0 };
        assert!(matches!(
            net.send_to_server(2, &msg),
            Err(NetError::UnknownSource {
                source: 2,
                sources: 2
            })
        ));
        assert!(net.send_to_source(5, &msg).is_err());
    }

    #[test]
    fn normalized_uplink_metric() {
        let mut net = Network::new(1);
        // Send the full "raw dataset": 10×4 doubles.
        let points = Matrix::from_fn(10, 4, |i, j| (i + j) as f64);
        net.send_to_server(0, &Message::RawData { points }).unwrap();
        let norm = net.stats().normalized_uplink(10, 4);
        // Overhead: 8-bit tag + two 32-bit shape fields over 2560 data bits.
        assert!(norm > 1.0 && norm < 1.05, "normalized {norm}");
    }

    #[test]
    fn reset_clears_counters() {
        let mut net = Network::new(2);
        net.send_to_server(0, &Message::CostReport { cost: 1.0 })
            .unwrap();
        net.reset_stats();
        assert_eq!(net.stats().total_uplink_bits(), 0);
        assert_eq!(net.stats().sources(), 2);
    }

    #[test]
    fn per_kind_breakdown_tracks_uplink() {
        let mut net = Network::new(2);
        let report = Message::CostReport { cost: 1.0 };
        let raw = Message::RawData {
            points: Matrix::from_fn(3, 2, |i, j| (i + j) as f64),
        };
        net.send_to_server(0, &report).unwrap();
        net.send_to_server(1, &report).unwrap();
        net.send_to_server(0, &raw).unwrap();
        let by_kind = net.stats().uplink_bits_by_kind();
        let (_, report_bits) = report.encode();
        let (_, raw_bits) = raw.encode();
        assert_eq!(by_kind["cost-report"], 2 * report_bits as u64);
        assert_eq!(by_kind["raw-data"], raw_bits as u64);
        let total: u64 = by_kind.values().sum();
        assert_eq!(total, net.stats().total_uplink_bits());
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn zero_sources_panics() {
        let _ = Network::new(0);
    }

    #[test]
    fn links_match_sequential_accounting_exactly() {
        let msgs: Vec<Message> = (0..4)
            .map(|i| Message::Coreset {
                points: Matrix::from_fn(3 + i, 2, |r, c| (r * 2 + c + i) as f64 * 0.5),
                weights: vec![1.0; 3 + i],
                delta: i as f64,
                precision: Precision::Full,
                weights_precision: Precision::Full,
            })
            .collect();

        // Sequential reference.
        let mut seq = Network::new(4);
        for (i, msg) in msgs.iter().enumerate() {
            seq.send_to_server(i, msg).unwrap();
            seq.send_to_source(i, &Message::SampleAllocation { size: i as u64 })
                .unwrap();
        }

        // Concurrent links merged at the barrier.
        let mut par = Network::new(4);
        let mut links = par.take_links(4).unwrap();
        std::thread::scope(|scope| {
            for (link, msg) in links.iter_mut().zip(&msgs) {
                scope.spawn(move || {
                    let i = link.source();
                    let received = link.send_to_server(msg).unwrap();
                    assert_eq!(&received, msg);
                    link.recv_from_server(&Message::SampleAllocation { size: i as u64 })
                        .unwrap();
                });
            }
        });
        par.absorb(links);

        assert_eq!(par.stats(), seq.stats());
    }

    #[test]
    fn link_counters_are_private_until_absorbed() {
        let mut net = Network::new(2);
        let mut links = net.take_links(2).unwrap();
        links[1]
            .send_to_server(&Message::CostReport { cost: 2.0 })
            .unwrap();
        assert_eq!(net.stats().total_uplink_bits(), 0);
        assert!(links[1].pending_uplink_bits() > 0);
        assert_eq!(links[0].pending_uplink_bits(), 0);
        net.absorb(links);
        assert_eq!(net.stats().uplink_bits(0), 0);
        assert!(net.stats().uplink_bits(1) > 0);
        assert_eq!(net.stats().total_uplink_messages(), 1);
    }

    #[test]
    fn absorb_accumulates_by_kind() {
        let mut net = Network::new(1);
        let report = Message::CostReport { cost: 1.0 };
        net.send_to_server(0, &report).unwrap();
        let mut links = net.take_links(1).unwrap();
        links[0].send_to_server(&report).unwrap();
        net.absorb(links);
        let (_, bits) = report.encode();
        assert_eq!(
            net.stats().uplink_bits_by_kind()["cost-report"],
            2 * bits as u64
        );
    }

    #[test]
    #[should_panic(expected = "absorbed a link")]
    fn absorbing_foreign_links_panics() {
        let mut big = Network::new(5);
        let mut small = Network::new(2);
        small.absorb(big.take_links(5).unwrap());
    }
}
