//! The transport abstraction: one interface over the in-process
//! simulation and real socket backends.
//!
//! Every summary pipeline runs against a [`Transport`]: it hands out one
//! [`TransportLink`] per data source (so per-source protocol phases can
//! run on concurrent workers), routes messages between the sources and
//! the server, and accounts every transmitted bit in a [`NetworkStats`].
//! Two implementations exist today:
//!
//! * [`Network`] — the original in-process star network: a send encodes
//!   the message, charges the exact bit length, and hands the decoded
//!   message straight to the receiver;
//! * [`crate::tcp`] — the same protocol bytes framed over real TCP
//!   connections ([`crate::tcp::TcpServer`] / [`crate::tcp::TcpSource`]),
//!   with byte-equality divergence checks so a socket run is *provably*
//!   bit-identical to the simulation.
//!
//! The trait is the seam the roadmap's async backend will plug into: a
//! tokio implementation only has to route frames and charge the same
//! counters.

use crate::messages::Message;
use crate::network::{Network, NetworkStats, SourceLink};
use crate::{NetError, Result};

/// An independent handle for one data source's traffic, usable from a
/// worker thread that owns it exclusively. Counters accumulate privately
/// and are merged back via [`Transport::absorb_links`].
pub trait TransportLink {
    /// The source index this link belongs to.
    fn source(&self) -> usize;

    /// Sends `msg` from this source to the server and returns what the
    /// server decodes.
    ///
    /// # Errors
    ///
    /// Wire-format round-trip failures, plus transport-specific socket
    /// and divergence errors.
    fn send_to_server(&mut self, msg: &Message) -> Result<Message>;

    /// Delivers `msg` from the server to this source and returns what
    /// the source decodes.
    ///
    /// # Errors
    ///
    /// See [`TransportLink::send_to_server`].
    fn recv_from_server(&mut self, msg: &Message) -> Result<Message>;
}

/// A star network of `m` data sources and one server, with exact
/// transmitted-bit accounting.
pub trait Transport {
    /// The per-source link type handed out by [`Transport::take_links`].
    type Link: TransportLink + Send;

    /// Number of data sources.
    fn sources(&self) -> usize;

    /// Sends `msg` from source `source` to the server.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownSource`] for out-of-range sources, plus the
    /// failures of [`TransportLink::send_to_server`].
    fn send_to_server(&mut self, source: usize, msg: &Message) -> Result<Message>;

    /// Sends `msg` from the server to source `source`.
    ///
    /// # Errors
    ///
    /// See [`Transport::send_to_server`].
    fn send_to_source(&mut self, source: usize, msg: &Message) -> Result<Message>;

    /// Broadcasts `msg` from the server to every source, returning the
    /// decoded copy each receives.
    ///
    /// # Errors
    ///
    /// See [`Transport::send_to_server`].
    fn broadcast_to_sources(&mut self, msg: &Message) -> Result<Vec<Message>> {
        (0..self.sources())
            .map(|i| self.send_to_source(i, msg))
            .collect()
    }

    /// Hands out one independent link per source for sources
    /// `0..count`, for concurrent per-source protocol phases; merge them
    /// back with [`Transport::absorb_links`].
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownSource`] if `count` exceeds the source count;
    /// socket backends additionally reject `count != sources()` (every
    /// connected source process participates in every phase).
    fn take_links(&mut self, count: usize) -> Result<Vec<Self::Link>>;

    /// Merges the counters accumulated on `links` back into this
    /// transport's statistics (and, for socket backends, returns the
    /// connections).
    fn absorb_links(&mut self, links: Vec<Self::Link>);

    /// Read access to the accumulated statistics.
    fn stats(&self) -> &NetworkStats;
}

impl TransportLink for SourceLink {
    fn source(&self) -> usize {
        SourceLink::source(self)
    }

    fn send_to_server(&mut self, msg: &Message) -> Result<Message> {
        SourceLink::send_to_server(self, msg)
    }

    fn recv_from_server(&mut self, msg: &Message) -> Result<Message> {
        SourceLink::recv_from_server(self, msg)
    }
}

impl Transport for Network {
    type Link = SourceLink;

    fn sources(&self) -> usize {
        Network::sources(self)
    }

    fn send_to_server(&mut self, source: usize, msg: &Message) -> Result<Message> {
        Network::send_to_server(self, source, msg)
    }

    fn send_to_source(&mut self, source: usize, msg: &Message) -> Result<Message> {
        Network::send_to_source(self, source, msg)
    }

    fn broadcast_to_sources(&mut self, msg: &Message) -> Result<Vec<Message>> {
        Network::broadcast_to_sources(self, msg)
    }

    fn take_links(&mut self, count: usize) -> Result<Vec<Self::Link>> {
        if count > Network::sources(self) {
            return Err(NetError::UnknownSource {
                source: count.saturating_sub(1),
                sources: Network::sources(self),
            });
        }
        Ok((0..count).map(SourceLink::new).collect())
    }

    fn absorb_links(&mut self, links: Vec<Self::Link>) {
        Network::absorb(self, links);
    }

    fn stats(&self) -> &NetworkStats {
        Network::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_via_trait<T: Transport>(net: &mut T) {
        let msg = Message::CostReport { cost: 2.5 };
        let (_, bits) = msg.encode();
        let mut links = net.take_links(net.sources()).unwrap();
        for link in &mut links {
            let got = TransportLink::send_to_server(link, &msg).unwrap();
            assert_eq!(got, msg);
            TransportLink::recv_from_server(link, &Message::SampleAllocation { size: 1 }).unwrap();
        }
        let m = links.len() as u64;
        net.absorb_links(links);
        assert_eq!(net.stats().total_uplink_bits(), m * bits as u64);
        assert_eq!(net.stats().total_uplink_messages(), m);
        assert_eq!(net.stats().total_downlink_messages(), m);
    }

    #[test]
    fn network_implements_transport() {
        let mut net = Network::new(3);
        roundtrip_via_trait(&mut net);
        // Direct sends and broadcast go through the trait too.
        let msg = Message::CostReport { cost: 1.0 };
        Transport::send_to_server(&mut net, 0, &msg).unwrap();
        Transport::send_to_source(&mut net, 2, &msg).unwrap();
        let all = Transport::broadcast_to_sources(&mut net, &msg).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn take_links_bounds_checked() {
        let mut net = Network::new(2);
        assert_eq!(net.take_links(1).unwrap().len(), 1);
        assert_eq!(net.take_links(2).unwrap().len(), 2);
        assert!(matches!(
            net.take_links(3),
            Err(NetError::UnknownSource { .. })
        ));
    }
}
