//! Replica-failover routing over any [`CommandTransport`].
//!
//! [`RoutingTransport`] keeps a per-source route table. An un-routed
//! source's traffic passes straight through. Once the driver promotes a
//! replica host for a dead source ([`CommandTransport::promote`]), every
//! command for that origin is wrapped in [`Command::Forward`] to the
//! host and every matching [`Response::Forwarded`] is unwrapped back,
//! so the layers above (journal, driver) keep addressing the origin as
//! if it were alive — journal entries stay origin-keyed and the classic
//! ledgers stay bit-identical to a run where the replica owned the
//! shard from the start. Only the wrapper overhead and the promotion
//! handshake are charged, to the replica-plane counters.
//!
//! Because a host's physical connection now carries two sources'
//! responses, receives demultiplex: a response for a different origin
//! than the one awaited is parked in a per-source pending queue and
//! handed out on that origin's next receive.

use crate::protocol::{Command, CommandTransport, DeadlinePolicy, EncodedCommand, Response};
use crate::{NetError, NetworkStats, Result};
use std::collections::VecDeque;

/// A [`CommandTransport`] layer that re-homes dead sources onto their
/// promoted replica hosts. See the module docs.
pub struct RoutingTransport<T: CommandTransport> {
    inner: T,
    /// `route[origin] = Some(host)` once `origin` is absorbed.
    route: Vec<Option<usize>>,
    /// Responses received while waiting for a different source on the
    /// same physical connection.
    pending: Vec<VecDeque<Response>>,
}

impl<T: CommandTransport> RoutingTransport<T> {
    /// Wraps `inner` with an empty route table: behavior is identical
    /// to the bare transport until a promotion arms a route.
    pub fn new(inner: T) -> Self {
        let m = inner.sources();
        RoutingTransport {
            inner,
            route: vec![None; m],
            pending: vec![VecDeque::new(); m],
        }
    }

    /// The promoted host answering for `origin`, if any.
    pub fn route_of(&self, origin: usize) -> Option<usize> {
        self.route.get(origin).copied().flatten()
    }

    /// Recovers the wrapped transport.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn check(&self, source: usize) -> Result<()> {
        if source >= self.route.len() {
            return Err(NetError::UnknownSource {
                source,
                sources: self.route.len(),
            });
        }
        Ok(())
    }

    /// Parks `resp` on the queue of the source it answers for.
    fn park(&mut self, physical: usize, resp: Response) {
        match resp {
            Response::Forwarded { origin, resp } => {
                self.pending[origin as usize].push_back(*resp);
            }
            other => self.pending[physical].push_back(other),
        }
    }
}

impl<T: CommandTransport> CommandTransport for RoutingTransport<T> {
    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> Result<()> {
        self.check(source)?;
        match self.route[source] {
            None => self.inner.send(source, cmd),
            Some(host) => self.inner.send(
                host,
                &Command::Forward {
                    origin: source as u64,
                    cmd: Box::new(cmd.clone()),
                },
            ),
        }
    }

    fn send_encoded(&mut self, source: usize, enc: &EncodedCommand) -> Result<()> {
        self.check(source)?;
        match self.route[source] {
            // The shared encoding survives only the common un-routed
            // path; a routed origin's command must be re-wrapped in
            // `Forward`, which is a different frame anyway.
            None => self.inner.send_encoded(source, enc),
            Some(_) => self.send(source, enc.command()),
        }
    }

    fn recv(&mut self, source: usize) -> Result<Response> {
        self.check(source)?;
        loop {
            if let Some(resp) = self.pending[source].pop_front() {
                return Ok(resp);
            }
            let physical = self.route[source].unwrap_or(source);
            match self.inner.recv(physical)? {
                Response::Forwarded { origin, resp } if origin as usize == source => {
                    return Ok(*resp);
                }
                // A loss on the physical connection is this origin's
                // loss: the host (or the source itself) is gone.
                lost @ Response::SourceLost { .. } => return Ok(lost),
                resp if physical == source && !matches!(resp, Response::Forwarded { .. }) => {
                    return Ok(resp);
                }
                other => self.park(physical, other),
            }
        }
    }

    fn stats(&self) -> &NetworkStats {
        self.inner.stats()
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.inner.set_deadline(policy);
    }

    fn promote(&mut self, origin: usize, host: usize) -> Result<()> {
        self.check(origin)?;
        self.check(host)?;
        if origin == host || self.route[host].is_some() {
            return Err(NetError::ProtocolViolation {
                context: "promote",
                expected: "a live host distinct from the origin",
                got: format!("host {host} for origin {origin}"),
            });
        }
        self.inner.send(
            host,
            &Command::Promote {
                origin: origin as u64,
            },
        )?;
        loop {
            match self.inner.recv(host)? {
                Response::Promoted { origin: o, .. } if o as usize == origin => {
                    // Re-promotion after a host change: drop any stale
                    // parked responses from the previous persona.
                    self.pending[origin].clear();
                    self.route[origin] = Some(host);
                    return Ok(());
                }
                Response::SourceLost { reason } => {
                    return Err(NetError::Transport {
                        context: "promote",
                        detail: format!("host {host} lost during promotion: {reason}"),
                    });
                }
                Response::Err { reason } => {
                    return Err(NetError::Transport {
                        context: "promote",
                        detail: format!("host {host} rejected the promotion: {reason}"),
                    });
                }
                other => self.park(host, other),
            }
        }
    }

    fn replaying(&self) -> bool {
        self.inner.replaying()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::channel_pairs;
    use crate::SourceEndpoint;

    #[test]
    fn unrouted_traffic_passes_through_untouched() {
        let (hub, mut endpoints) = channel_pairs(2);
        let mut routed = RoutingTransport::new(hub);
        let t = std::thread::spawn(move || {
            let cmd = endpoints[1].recv_command().unwrap();
            assert_eq!(cmd, Command::Describe);
            endpoints[1]
                .send_response(Response::Done {
                    round: 1,
                    rows: 5,
                    cols: 2,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
        });
        routed.send(1, &Command::Describe).unwrap();
        let resp = routed.recv(1).unwrap();
        assert!(matches!(resp, Response::Done { rows: 5, .. }));
        t.join().unwrap();
        assert_eq!(routed.stats().replica_bits(), 0);
        assert_eq!(routed.stats().replica_promotions(), 0);
    }

    #[test]
    fn a_routed_origin_speaks_through_its_host() {
        let (hub, mut endpoints) = channel_pairs(2);
        let mut routed = RoutingTransport::new(hub);
        let t = std::thread::spawn(move || {
            // The host acks the promotion, then answers a forwarded
            // round interleaved with its own.
            let cmd = endpoints[1].recv_command().unwrap();
            assert!(matches!(cmd, Command::Promote { origin: 0 }));
            endpoints[1]
                .send_response(Response::Promoted {
                    origin: 0,
                    round: 0,
                })
                .unwrap();
            let cmd = endpoints[1].recv_command().unwrap();
            let Command::Forward { origin: 0, cmd } = cmd else {
                panic!("expected a forward, got {cmd:?}");
            };
            assert_eq!(*cmd, Command::Describe);
            // Own response first: the driver awaiting the origin must
            // park it for the host's own receive.
            endpoints[1]
                .send_response(Response::Done {
                    round: 9,
                    rows: 1,
                    cols: 1,
                    ops: 0,
                    seconds: 0.0,
                })
                .unwrap();
            endpoints[1]
                .send_response(Response::Forwarded {
                    origin: 0,
                    resp: Box::new(Response::Done {
                        round: 1,
                        rows: 7,
                        cols: 3,
                        ops: 0,
                        seconds: 0.0,
                    }),
                })
                .unwrap();
        });
        routed.promote(0, 1).unwrap();
        assert_eq!(routed.route_of(0), Some(1));
        routed.send(0, &Command::Describe).unwrap();
        let resp = routed.recv(0).unwrap();
        assert!(matches!(resp, Response::Done { rows: 7, .. }));
        // The host's own response was parked, not dropped.
        let own = routed.recv(1).unwrap();
        assert!(matches!(own, Response::Done { round: 9, .. }));
        t.join().unwrap();
        assert_eq!(routed.stats().replica_promotions(), 1);
        assert!(routed.stats().replica_bits() > 0);
    }

    #[test]
    fn promoting_onto_an_absorbed_host_is_rejected() {
        let (hub, endpoints) = channel_pairs(3);
        let mut routed = RoutingTransport::new(hub);
        routed.route[1] = Some(2);
        assert!(routed.promote(0, 1).is_err());
        assert!(routed.promote(2, 2).is_err());
        drop(endpoints);
    }
}
