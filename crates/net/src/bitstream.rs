//! Bit-granular serialization primitives.
//!
//! Quantized scalars occupy `1 + 11 + s` bits (paper §6.1), which is not
//! byte aligned for most `s`; the writer/reader here pack values MSB-first
//! into a byte buffer and track the exact bit length so communication
//! counters are bit-accurate.

use crate::{NetError, Result};

/// An MSB-first bit writer.
///
/// # Example
///
/// ```
/// use ekm_net::bitstream::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xFFFF, 16);
/// let (buf, bits) = w.finish();
/// assert_eq!(bits, 19);
/// let mut r = BitReader::new(&buf, bits);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_bits(16).unwrap(), 0xFFFF);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    bit_len: usize,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }

    /// Appends the low `n` bits of `value` (MSB of those `n` first).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "write_bits: n = {n} > 64");
        if n == 0 {
            return;
        }
        let masked = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        // Write bit by bit group: fill the current partial byte, then whole
        // bytes.
        let mut remaining = n;
        while remaining > 0 {
            let bit_in_byte = self.bit_len % 8;
            if bit_in_byte == 0 {
                self.buf.push(0);
            }
            let space = (8 - bit_in_byte) as u32;
            let take = space.min(remaining);
            // The `take` bits to emit next are the highest of the remaining.
            let shift = remaining - take;
            let chunk = ((masked >> shift) & ((1u64 << take) - 1)) as u8;
            let byte = self.buf.last_mut().expect("pushed above");
            *byte |= chunk << (space - take);
            self.bit_len += take as usize;
            remaining -= take;
        }
    }

    /// Consumes the writer, returning the packed buffer and its exact bit
    /// length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.buf, self.bit_len)
    }
}

/// An MSB-first bit reader over a packed buffer.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    bit_len: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a buffer whose meaningful prefix is `bit_len` bits.
    pub fn new(data: &'a [u8], bit_len: usize) -> Self {
        BitReader {
            data,
            bit_len: bit_len.min(data.len() * 8),
            pos: 0,
        }
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.bit_len - self.pos
    }

    /// Reads `n` bits into the low end of a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnexpectedEnd`] if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64> {
        assert!(n <= 64, "read_bits: n = {n} > 64");
        if (self.remaining() as u64) < n as u64 {
            return Err(NetError::UnexpectedEnd {
                requested: n,
                remaining: self.remaining(),
            });
        }
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.data[self.pos / 8];
            let bit_in_byte = self.pos % 8;
            let avail = (8 - bit_in_byte) as u32;
            let take = avail.min(remaining);
            let shift = avail - take;
            let chunk = ((byte >> shift) as u64) & ((1u64 << take) - 1);
            out = (out << take) | chunk;
            self.pos += take as usize;
            remaining -= take;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0u64, 1u32),
            (1, 1),
            (0b10110, 5),
            (0xDEADBEEF, 32),
            (u64::MAX, 64),
            (0x123456789ABCDEF0, 61),
            (7, 3),
        ];
        for &(v, n) in &values {
            w.write_bits(v, n);
        }
        let total: u32 = values.iter().map(|&(_, n)| n).sum();
        let (buf, bits) = w.finish();
        assert_eq!(bits, total as usize);
        let mut r = BitReader::new(&buf, bits);
        for &(v, n) in &values {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            assert_eq!(r.read_bits(n).unwrap(), v & mask, "width {n}");
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn overrun_is_detected() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert!(matches!(
            r.read_bits(3),
            Err(NetError::UnexpectedEnd {
                requested: 3,
                remaining: 2
            })
        ));
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn zero_width_writes_are_noops() {
        let mut w = BitWriter::new();
        w.write_bits(123, 0);
        assert_eq!(w.bit_len(), 0);
        let (buf, bits) = w.finish();
        assert!(buf.is_empty());
        assert_eq!(bits, 0);
    }

    #[test]
    fn buffer_size_is_minimal() {
        let mut w = BitWriter::new();
        w.write_bits(0x1FF, 9); // 9 bits → 2 bytes
        let (buf, bits) = w.finish();
        assert_eq!(bits, 9);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0b0000000, 7);
        let (buf, _) = w.finish();
        assert_eq!(buf[0], 0b1000_0000);
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut w = BitWriter::new();
        w.write_bits(0xFF, 4); // only low 4 bits (0xF) survive
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert_eq!(r.read_bits(4).unwrap(), 0xF);
    }

    #[test]
    fn reader_clamps_bit_len_to_buffer() {
        let buf = [0xFFu8];
        let mut r = BitReader::new(&buf, 999);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn long_random_roundtrip() {
        use rand::Rng;
        let mut rng = ekm_linalg::random::rng_from_seed(5);
        let mut w = BitWriter::new();
        let mut expect = Vec::new();
        for _ in 0..2000 {
            let n: u32 = rng.gen_range(1..=64);
            let v: u64 = rng.gen();
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            w.write_bits(v, n);
            expect.push((v & mask, n));
        }
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        for (v, n) in expect {
            assert_eq!(r.read_bits(n).unwrap(), v);
        }
    }
}
