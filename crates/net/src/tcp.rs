//! TCP socket backend: the same protocol bytes over real connections.
//!
//! # Execution model: replicated determinism, physically routed traffic
//!
//! Every pipeline in this workspace is deterministic given its seed, so a
//! distributed run uses the SPMD ("same program, multiple data") shape:
//! the server process (`ekm serve`) and each source process
//! (`ekm source --source-id I`) all execute the *same* stage list over
//! the *same* deterministic inputs, and the transport routes each
//! source's traffic over its real TCP connection:
//!
//! * a [`TcpSource`] writes its own source's uplink messages to the
//!   socket as length-prefixed frames carrying the exact
//!   [`crate::wire`] encoding, and *reads* its downlink messages from
//!   the socket (verifying them against the locally computed copy);
//!   other sources' traffic is echoed locally, exactly like the
//!   in-process [`Network`](crate::Network);
//! * a [`TcpServer`] *reads* every source's uplink frames from the
//!   sockets and writes every downlink frame, verifying each received
//!   payload against the locally computed encoding byte for byte — any
//!   difference surfaces as [`NetError::Divergence`] instead of a
//!   silently wrong run.
//!
//! Counters are charged on the bits that actually crossed (or, for local
//! echoes, would have crossed) the wire, so a socket run's
//! [`NetworkStats`] — total and per-source, bits and message kinds — is
//! bit-identical to the in-process simulation by construction, and the
//! divergence checks plus the end-of-run [`RunDigest`] exchange *prove*
//! it at runtime. Per-connection frame order follows program order on
//! both ends, so the exchange is deadlock-free regardless of how worker
//! threads interleave across connections.
//!
//! This is the seam the roadmap's async backend builds on: a tokio
//! implementation replaces the blocking frame I/O and drops the
//! replicated compute, keeping the same frames and counters.

use crate::frame::{expect_frame, write_frame, FRAME_FIN, FRAME_HELLO, FRAME_MSG};
use crate::messages::Message;
use crate::network::{NetworkStats, SourceLink};
use crate::transport::{Transport, TransportLink};
use crate::{NetError, Result};
use ekm_linalg::Matrix;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

pub(crate) const MAGIC: u32 = 0x454B_4D31; // "EKM1"
pub(crate) const VERSION: u16 = 1;
pub(crate) const ROLE_SOURCE: u8 = 0;
pub(crate) const ROLE_SERVER: u8 = 1;

/// Per-read/write socket timeout. Generous because legitimate gaps are
/// compute (a source may run a local SVD between frames), but bounded so
/// a hung peer fails a CI run instead of wedging it. Alias of
/// [`DeadlinePolicy::DEFAULT_IO`] so one knob governs every backend.
pub const IO_TIMEOUT: Duration = crate::protocol::DeadlinePolicy::DEFAULT_IO;

pub(crate) fn transport_err(context: &'static str, e: std::io::Error) -> NetError {
    NetError::Transport {
        context,
        detail: e.to_string(),
    }
}

pub(crate) fn configure(stream: &TcpStream, io: Duration) -> Result<()> {
    stream
        .set_nodelay(true)
        .and_then(|()| stream.set_read_timeout(Some(io)))
        .and_then(|()| stream.set_write_timeout(Some(io)))
        .map_err(|e| transport_err("socket configuration", e))
}

/// Hashes a canonical run-configuration string into the fingerprint both
/// ends present during the handshake (FNV-1a 64). Server and sources must
/// be launched with equivalent configurations — the fingerprint turns a
/// mismatch into an immediate handshake error instead of a divergence
/// mid-run.
pub fn fingerprint(config: &str) -> u64 {
    fnv1a(config.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn encode_hello(role: u8, source_id: u32, sources: u32, fp: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(23);
    p.extend_from_slice(&MAGIC.to_be_bytes());
    p.extend_from_slice(&VERSION.to_be_bytes());
    p.push(role);
    p.extend_from_slice(&source_id.to_be_bytes());
    p.extend_from_slice(&sources.to_be_bytes());
    p.extend_from_slice(&fp.to_be_bytes());
    p
}

pub(crate) fn decode_hello(payload: &[u8]) -> Result<(u8, u32, u32, u64)> {
    if payload.len() != 23 {
        return Err(NetError::Handshake {
            reason: format!("hello frame of {} bytes (expected 23)", payload.len()),
        });
    }
    let magic = u32::from_be_bytes(payload[0..4].try_into().expect("4 bytes"));
    let version = u16::from_be_bytes(payload[4..6].try_into().expect("2 bytes"));
    if magic != MAGIC {
        return Err(NetError::Handshake {
            reason: format!("bad magic {magic:#x}"),
        });
    }
    if version != VERSION {
        return Err(NetError::Handshake {
            reason: format!("protocol version {version} (expected {VERSION})"),
        });
    }
    let role = payload[6];
    let source_id = u32::from_be_bytes(payload[7..11].try_into().expect("4 bytes"));
    let sources = u32::from_be_bytes(payload[11..15].try_into().expect("4 bytes"));
    let fp = u64::from_be_bytes(payload[15..23].try_into().expect("8 bytes"));
    Ok((role, source_id, sources, fp))
}

/// Summary of a completed run, exchanged at shutdown so both ends verify
/// they observed the *same* run: total bits each way plus a hash of the
/// final centers' exact bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest {
    /// Total uplink bits over all sources.
    pub uplink_bits: u64,
    /// Total downlink bits over all sources.
    pub downlink_bits: u64,
    /// FNV-1a hash of the result matrix's shape and `f64` bit patterns.
    pub centers_hash: u64,
}

impl RunDigest {
    /// Builds the digest of a finished run from its final statistics and
    /// centers.
    pub fn new(stats: &NetworkStats, centers: &Matrix) -> RunDigest {
        RunDigest {
            uplink_bits: stats.total_uplink_bits(),
            downlink_bits: stats.total_downlink_bits(),
            centers_hash: hash_matrix(centers),
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(24);
        p.extend_from_slice(&self.uplink_bits.to_be_bytes());
        p.extend_from_slice(&self.downlink_bits.to_be_bytes());
        p.extend_from_slice(&self.centers_hash.to_be_bytes());
        p
    }

    fn decode(payload: &[u8]) -> Result<RunDigest> {
        if payload.len() != 24 {
            return Err(NetError::Transport {
                context: "digest frame",
                detail: format!("{} bytes (expected 24)", payload.len()),
            });
        }
        Ok(RunDigest {
            uplink_bits: u64::from_be_bytes(payload[0..8].try_into().expect("8 bytes")),
            downlink_bits: u64::from_be_bytes(payload[8..16].try_into().expect("8 bytes")),
            centers_hash: u64::from_be_bytes(payload[16..24].try_into().expect("8 bytes")),
        })
    }
}

/// FNV-1a over a matrix's shape and raw `f64` bit patterns — equal iff
/// the matrices are bit-identical (NaN payloads included).
pub(crate) fn hash_matrix(m: &Matrix) -> u64 {
    let mut bytes = Vec::with_capacity(16 + m.as_slice().len() * 8);
    bytes.extend_from_slice(&(m.rows() as u64).to_be_bytes());
    bytes.extend_from_slice(&(m.cols() as u64).to_be_bytes());
    for &x in m.as_slice() {
        bytes.extend_from_slice(&x.to_bits().to_be_bytes());
    }
    fnv1a(&bytes)
}

/// Reads one message frame and verifies it is byte-identical to the
/// locally computed encoding.
fn recv_verified(
    stream: &mut TcpStream,
    source: usize,
    direction: &'static str,
    expected: &[u8],
    expected_bits: usize,
) -> Result<()> {
    let (payload, bits) = expect_frame(stream, FRAME_MSG)?;
    if bits != expected_bits || payload != expected {
        return Err(NetError::Divergence { source, direction });
    }
    Ok(())
}

fn stream_or_taken<'a>(
    slot: &'a mut Option<TcpStream>,
    context: &'static str,
) -> Result<&'a mut TcpStream> {
    slot.as_mut().ok_or_else(|| NetError::Transport {
        context,
        detail: "connection currently checked out as a link".to_string(),
    })
}

/// A bound listener that has not yet completed the source handshakes —
/// the two-step construction lets a CLI print "listening on …" before
/// blocking in [`TcpServerBinding::accept`].
#[derive(Debug)]
pub struct TcpServerBinding {
    listener: TcpListener,
}

impl TcpServerBinding {
    /// Binds the listening socket (`"127.0.0.1:0"` picks a free port).
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on bind failure.
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<TcpServerBinding> {
        let listener = TcpListener::bind(addr).map_err(|e| transport_err("bind", e))?;
        Ok(TcpServerBinding { listener })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if the socket address cannot be read.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.listener
            .local_addr()
            .map_err(|e| transport_err("local_addr", e))
    }

    /// Accepts and handshakes exactly `sources` source connections,
    /// consuming the listener.
    ///
    /// Each source must present the protocol magic/version, the same
    /// source count, the same configuration `fp`, and a unique
    /// `source_id < sources`; any violation aborts the accept with a
    /// [`NetError::Handshake`].
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on socket failures, [`NetError::Handshake`]
    /// on protocol violations.
    pub fn accept(self, sources: usize, fp: u64) -> Result<TcpServer> {
        assert!(sources > 0, "server needs at least one source");
        let mut streams: Vec<Option<TcpStream>> = (0..sources).map(|_| None).collect();
        let mut connected = 0;
        while connected < sources {
            let (mut stream, _) = self
                .listener
                .accept()
                .map_err(|e| transport_err("accept", e))?;
            configure(&stream, IO_TIMEOUT)?;
            let (payload, _) = expect_frame(&mut stream, FRAME_HELLO)?;
            let (role, source_id, m, got_fp) = decode_hello(&payload)?;
            if role != ROLE_SOURCE {
                return Err(NetError::Handshake {
                    reason: format!("unexpected role {role} in source hello"),
                });
            }
            if m as usize != sources {
                return Err(NetError::Handshake {
                    reason: format!("source expects {m} sources, server has {sources}"),
                });
            }
            if got_fp != fp {
                return Err(NetError::Handshake {
                    reason: format!(
                        "configuration fingerprint mismatch \
                         (server {fp:#018x}, source {got_fp:#018x})"
                    ),
                });
            }
            let id = source_id as usize;
            if id >= sources {
                return Err(NetError::Handshake {
                    reason: format!("source id {id} out of range (sources: {sources})"),
                });
            }
            if streams[id].is_some() {
                return Err(NetError::Handshake {
                    reason: format!("duplicate source id {id}"),
                });
            }
            let ack = encode_hello(ROLE_SERVER, source_id, sources as u32, fp);
            write_frame(&mut stream, FRAME_HELLO, &ack, ack.len() * 8)?;
            streams[id] = Some(stream);
            connected += 1;
        }
        Ok(TcpServer {
            streams,
            stats: NetworkStats::new(sources),
        })
    }
}

/// The server end of a socket run: one accepted connection per source,
/// implementing [`Transport`] so any pipeline runs over it unchanged.
#[derive(Debug)]
pub struct TcpServer {
    streams: Vec<Option<TcpStream>>,
    stats: NetworkStats,
}

impl TcpServer {
    /// Ends the run: sends `digest` to every source, reads each source's
    /// digest back, and verifies they all match.
    ///
    /// # Errors
    ///
    /// [`NetError::Divergence`] if any source observed a different run;
    /// [`NetError::Transport`] on socket failures.
    pub fn finish(&mut self, digest: RunDigest) -> Result<()> {
        let payload = digest.encode();
        for source in 0..self.streams.len() {
            let stream = stream_or_taken(&mut self.streams[source], "finish")?;
            write_frame(stream, FRAME_FIN, &payload, payload.len() * 8)?;
            let (reply, _) = expect_frame(stream, FRAME_FIN)?;
            if RunDigest::decode(&reply)? != digest {
                return Err(NetError::Divergence {
                    source,
                    direction: "digest",
                });
            }
        }
        Ok(())
    }
}

/// A server-side per-source link: reads the source's uplink frames from
/// its connection (verifying them against the replicated local
/// encoding) and writes its downlink frames.
#[derive(Debug)]
pub struct TcpServerLink {
    counters: SourceLink,
    stream: TcpStream,
}

impl TransportLink for TcpServerLink {
    fn source(&self) -> usize {
        self.counters.source()
    }

    fn send_to_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        recv_verified(
            &mut self.stream,
            self.counters.source(),
            "uplink",
            &buf,
            bits,
        )?;
        self.counters.charge_uplink(bits, msg.kind());
        Message::decode(&buf, bits)
    }

    fn recv_from_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        write_frame(&mut self.stream, FRAME_MSG, &buf, bits)?;
        self.counters.charge_downlink(bits);
        Message::decode(&buf, bits)
    }
}

impl Transport for TcpServer {
    type Link = TcpServerLink;

    fn sources(&self) -> usize {
        self.streams.len()
    }

    fn send_to_server(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        let stream = stream_or_taken(&mut self.streams[source], "send_to_server")?;
        recv_verified(stream, source, "uplink", &buf, bits)?;
        self.stats.charge_uplink(source, bits, msg.kind());
        Message::decode(&buf, bits)
    }

    fn send_to_source(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        let stream = stream_or_taken(&mut self.streams[source], "send_to_source")?;
        write_frame(stream, FRAME_MSG, &buf, bits)?;
        self.stats.charge_downlink(source, bits);
        Message::decode(&buf, bits)
    }

    fn take_links(&mut self, count: usize) -> Result<Vec<Self::Link>> {
        if count != self.streams.len() {
            return Err(NetError::Transport {
                context: "take_links",
                detail: format!(
                    "socket transport requires one shard per connected source \
                     (requested {count}, connected {})",
                    self.streams.len()
                ),
            });
        }
        let mut links = Vec::with_capacity(count);
        for source in 0..count {
            let stream = self.streams[source]
                .take()
                .ok_or_else(|| NetError::Transport {
                    context: "take_links",
                    detail: "connection already checked out".to_string(),
                })?;
            links.push(TcpServerLink {
                counters: SourceLink::new(source),
                stream,
            });
        }
        Ok(links)
    }

    fn absorb_links(&mut self, links: Vec<Self::Link>) {
        for link in links {
            let source = link.counters.source();
            assert!(source < self.streams.len(), "foreign link absorbed");
            self.streams[source] = Some(link.stream);
            self.stats.merge_link(link.counters);
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

impl TcpServer {
    fn check(&self, source: usize) -> Result<()> {
        if source >= self.streams.len() {
            return Err(NetError::UnknownSource {
                source,
                sources: self.streams.len(),
            });
        }
        Ok(())
    }
}

/// The source end of a socket run for one `source_id`: its own traffic
/// crosses the connection; every other source's traffic is echoed
/// locally (the process replicates the full deterministic run, so its
/// statistics equal the server's).
#[derive(Debug)]
pub struct TcpSource {
    me: usize,
    sources: usize,
    stream: Option<TcpStream>,
    stats: NetworkStats,
}

impl TcpSource {
    /// Connects to `ekm serve` at `addr` and handshakes as `source_id`
    /// of `sources`, retrying the connection for up to `retry_for` (the
    /// server may not be listening yet when the source process starts).
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if no connection succeeds within
    /// `retry_for`; [`NetError::Handshake`] if the server rejects or
    /// mismatches the parameters.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        source_id: usize,
        sources: usize,
        fp: u64,
        retry_for: Duration,
    ) -> Result<TcpSource> {
        assert!(source_id < sources, "source id out of range");
        let deadline = Instant::now() + retry_for;
        // Backoff comes from the default deadline policy (100ms after
        // its clamp) and the wait goes through the reactor's `park`, so
        // every retry sleep in the crate derives from one place.
        let backoff = crate::protocol::DeadlinePolicy::default().retry_backoff();
        let mut stream = loop {
            match TcpStream::connect(&addr) {
                Ok(s) => break s,
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(transport_err("connect", e));
                    }
                    crate::reactor::park(backoff);
                }
            }
        };
        configure(&stream, IO_TIMEOUT)?;
        let hello = encode_hello(ROLE_SOURCE, source_id as u32, sources as u32, fp);
        write_frame(&mut stream, FRAME_HELLO, &hello, hello.len() * 8)?;
        let (ack, _) = expect_frame(&mut stream, FRAME_HELLO)?;
        let (role, echoed_id, m, got_fp) = decode_hello(&ack)?;
        if role != ROLE_SERVER || echoed_id as usize != source_id || m as usize != sources {
            return Err(NetError::Handshake {
                reason: "server ack disagrees with the source parameters".to_string(),
            });
        }
        if got_fp != fp {
            return Err(NetError::Handshake {
                reason: format!(
                    "configuration fingerprint mismatch \
                     (source {fp:#018x}, server {got_fp:#018x})"
                ),
            });
        }
        Ok(TcpSource {
            me: source_id,
            sources,
            stream: Some(stream),
            stats: NetworkStats::new(sources),
        })
    }

    /// The source id this process owns.
    pub fn source_id(&self) -> usize {
        self.me
    }

    /// Ends the run: reads the server's digest, replies with this
    /// process's `digest`, and verifies they match. Returns the server's
    /// digest.
    ///
    /// # Errors
    ///
    /// [`NetError::Divergence`] if the two runs differ;
    /// [`NetError::Transport`] on socket failures.
    pub fn finish(&mut self, digest: RunDigest) -> Result<RunDigest> {
        let me = self.me;
        let stream = stream_or_taken(&mut self.stream, "finish")?;
        let (payload, _) = expect_frame(stream, FRAME_FIN)?;
        let server = RunDigest::decode(&payload)?;
        let mine = digest.encode();
        write_frame(stream, FRAME_FIN, &mine, mine.len() * 8)?;
        if server != digest {
            return Err(NetError::Divergence {
                source: me,
                direction: "digest",
            });
        }
        Ok(server)
    }

    fn check(&self, source: usize) -> Result<()> {
        if source >= self.sources {
            return Err(NetError::UnknownSource {
                source,
                sources: self.sources,
            });
        }
        Ok(())
    }
}

/// A source-side per-source link: the owned source's traffic crosses the
/// socket, every other source's is a charged local echo.
#[derive(Debug)]
pub struct TcpSourceLink {
    counters: SourceLink,
    stream: Option<TcpStream>,
}

impl TransportLink for TcpSourceLink {
    fn source(&self) -> usize {
        self.counters.source()
    }

    fn send_to_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        if let Some(stream) = &mut self.stream {
            write_frame(stream, FRAME_MSG, &buf, bits)?;
        }
        self.counters.charge_uplink(bits, msg.kind());
        Message::decode(&buf, bits)
    }

    fn recv_from_server(&mut self, msg: &Message) -> Result<Message> {
        let (buf, bits) = msg.encode();
        if let Some(stream) = &mut self.stream {
            recv_verified(stream, self.counters.source(), "downlink", &buf, bits)?;
        }
        self.counters.charge_downlink(bits);
        Message::decode(&buf, bits)
    }
}

impl Transport for TcpSource {
    type Link = TcpSourceLink;

    fn sources(&self) -> usize {
        self.sources
    }

    fn send_to_server(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        if source == self.me {
            let stream = stream_or_taken(&mut self.stream, "send_to_server")?;
            write_frame(stream, FRAME_MSG, &buf, bits)?;
        }
        self.stats.charge_uplink(source, bits, msg.kind());
        Message::decode(&buf, bits)
    }

    fn send_to_source(&mut self, source: usize, msg: &Message) -> Result<Message> {
        self.check(source)?;
        let (buf, bits) = msg.encode();
        if source == self.me {
            let stream = stream_or_taken(&mut self.stream, "send_to_source")?;
            recv_verified(stream, source, "downlink", &buf, bits)?;
        }
        self.stats.charge_downlink(source, bits);
        Message::decode(&buf, bits)
    }

    fn take_links(&mut self, count: usize) -> Result<Vec<Self::Link>> {
        if count != self.sources {
            return Err(NetError::Transport {
                context: "take_links",
                detail: format!(
                    "socket transport requires one shard per source \
                     (requested {count}, sources {})",
                    self.sources
                ),
            });
        }
        let mut links = Vec::with_capacity(count);
        for source in 0..count {
            let stream = if source == self.me {
                Some(self.stream.take().ok_or_else(|| NetError::Transport {
                    context: "take_links",
                    detail: "connection already checked out".to_string(),
                })?)
            } else {
                None
            };
            links.push(TcpSourceLink {
                counters: SourceLink::new(source),
                stream,
            });
        }
        Ok(links)
    }

    fn absorb_links(&mut self, links: Vec<Self::Link>) {
        for link in links {
            let source = link.counters.source();
            assert!(source < self.sources, "foreign link absorbed");
            if let Some(stream) = link.stream {
                assert_eq!(source, self.me, "socket on a foreign link");
                self.stream = Some(stream);
            }
            self.stats.merge_link(link.counters);
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Network;
    use std::thread;

    const FP: u64 = 0xFEED_F00D;

    fn pair(sources: usize, me: usize) -> (TcpServer, TcpSource) {
        let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        let src = thread::spawn(move || {
            TcpSource::connect(addr, me, sources, FP, Duration::from_secs(5)).unwrap()
        });
        let server = binding.accept_one_for_tests(sources, me);
        (server, src.join().unwrap())
    }

    impl TcpServerBinding {
        /// Test helper: accept with only source `me` physically
        /// connected (the other slots hold dummy loopback streams so the
        /// transport can be constructed; tests only exercise `me`).
        fn accept_one_for_tests(self, sources: usize, me: usize) -> TcpServer {
            let (mut stream, _) = self.listener.accept().unwrap();
            configure(&stream, IO_TIMEOUT).unwrap();
            let (payload, _) = expect_frame(&mut stream, FRAME_HELLO).unwrap();
            let (role, id, m, fp) = decode_hello(&payload).unwrap();
            assert_eq!(
                (role, id as usize, m as usize, fp),
                (ROLE_SOURCE, me, sources, FP)
            );
            let ack = encode_hello(ROLE_SERVER, id, m, fp);
            write_frame(&mut stream, FRAME_HELLO, &ack, ack.len() * 8).unwrap();
            let mut streams: Vec<Option<TcpStream>> = (0..sources).map(|_| None).collect();
            streams[me] = Some(stream);
            // Dummy self-connected sockets for the untested slots.
            let dummy = TcpListener::bind("127.0.0.1:0").unwrap();
            let daddr = dummy.local_addr().unwrap();
            for slot in streams.iter_mut().filter(|s| s.is_none()) {
                let c = TcpStream::connect(daddr).unwrap();
                let _ = dummy.accept().unwrap();
                *slot = Some(c);
            }
            TcpServer {
                streams,
                stats: NetworkStats::new(sources),
            }
        }
    }

    #[test]
    fn single_source_roundtrip_matches_simulation() {
        let (mut server, mut source) = pair(1, 0);
        let up = Message::CostReport { cost: 4.25 };
        let down = Message::SampleAllocation { size: 17 };

        let (up2, down2) = (up.clone(), down.clone());
        let handle = thread::spawn(move || {
            let got = Transport::send_to_server(&mut source, 0, &up2).unwrap();
            assert_eq!(got, up2);
            let got = Transport::send_to_source(&mut source, 0, &down2).unwrap();
            assert_eq!(got, down2);
            source
        });
        let got = Transport::send_to_server(&mut server, 0, &up).unwrap();
        assert_eq!(got, up);
        Transport::send_to_source(&mut server, 0, &down).unwrap();
        let source = handle.join().unwrap();

        // Both ends' statistics equal the in-process simulation's.
        let mut sim = Network::new(1);
        sim.send_to_server(0, &up).unwrap();
        sim.send_to_source(0, &down).unwrap();
        assert_eq!(server.stats(), sim.stats());
        assert_eq!(Transport::stats(&source), sim.stats());
    }

    #[test]
    fn links_route_and_merge() {
        let (mut server, mut source) = pair(2, 1);
        let msg = Message::CostReport { cost: 1.5 };
        let (_, bits) = msg.encode();

        let msg2 = msg.clone();
        let handle = thread::spawn(move || {
            let mut links = source.take_links(2).unwrap();
            for link in &mut links {
                link.send_to_server(&msg2).unwrap();
            }
            source.absorb_links(links);
            source
        });
        let mut links = server.take_links(2).unwrap();
        // Only source 1 is physically connected in this test fixture.
        links[1].send_to_server(&msg).unwrap();
        links[0].counters.charge_uplink(bits, msg.kind());
        server.absorb_links(links);
        let source = handle.join().unwrap();

        assert_eq!(server.stats().uplink_bits(1), bits as u64);
        assert_eq!(
            Transport::stats(&source).total_uplink_bits(),
            2 * bits as u64
        );
    }

    #[test]
    fn uplink_divergence_detected() {
        let (mut server, mut source) = pair(1, 0);
        let handle = thread::spawn(move || {
            Transport::send_to_server(&mut source, 0, &Message::CostReport { cost: 1.0 }).unwrap();
        });
        // The server's replica computed a *different* message.
        let err = Transport::send_to_server(&mut server, 0, &Message::CostReport { cost: 2.0 })
            .unwrap_err();
        assert!(matches!(
            err,
            NetError::Divergence {
                source: 0,
                direction: "uplink"
            }
        ));
        handle.join().unwrap();
    }

    #[test]
    fn digest_exchange_detects_mismatch() {
        let centers = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let (mut server, mut source) = pair(1, 0);
        let good = RunDigest::new(server.stats(), &centers);
        let mut bad = good;
        bad.centers_hash ^= 1;
        let handle = thread::spawn(move || source.finish(bad).unwrap_err());
        let server_err = server.finish(good).unwrap_err();
        assert!(matches!(server_err, NetError::Divergence { .. }));
        assert!(matches!(
            handle.join().unwrap(),
            NetError::Divergence { .. }
        ));
    }

    #[test]
    fn fingerprint_mismatch_rejected_at_handshake() {
        let binding = TcpServerBinding::bind("127.0.0.1:0").unwrap();
        let addr = binding.local_addr().unwrap();
        let src = thread::spawn(move || {
            TcpSource::connect(addr, 0, 1, FP ^ 0xFF, Duration::from_secs(5))
        });
        let err = binding.accept(1, FP).unwrap_err();
        assert!(matches!(err, NetError::Handshake { .. }));
        // The source sees either a handshake rejection or a dropped
        // connection, depending on shutdown timing.
        assert!(src.join().unwrap().is_err());
    }

    #[test]
    fn connect_times_out_when_nobody_listens() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = TcpSource::connect(addr, 0, 1, FP, Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
    }

    #[test]
    fn digest_reflects_bit_identity() {
        let a = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut b = a.clone();
        let stats = NetworkStats::new(1);
        assert_eq!(RunDigest::new(&stats, &a), RunDigest::new(&stats, &b));
        b.as_mut_slice()[0] += 1e-12;
        assert_ne!(
            RunDigest::new(&stats, &a).centers_hash,
            RunDigest::new(&stats, &b).centers_hash
        );
    }

    #[test]
    fn digest_ignores_the_replica_ledger() {
        // The digest hashes the classic uplink/downlink totals only:
        // a run that promoted a replica (and paid control-plane bits
        // for it) must still digest-match its never-failed twin.
        let centers = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        let clean = NetworkStats::new(2);
        let mut failed_over = NetworkStats::new(2);
        failed_over.charge_promotion(96);
        failed_over.charge_replay(4096);
        failed_over.charge_replica_bits(136);
        assert_eq!(
            RunDigest::new(&clean, &centers),
            RunDigest::new(&failed_over, &centers)
        );
        assert_eq!(failed_over.replica_promotions(), 1);
        assert_eq!(failed_over.replayed_rounds(), 1);
        assert_eq!(failed_over.replica_bits(), 96 + 4096 + 136);
    }

    #[test]
    fn hello_validation() {
        assert!(decode_hello(&[0; 5]).is_err());
        let mut ok = encode_hello(ROLE_SOURCE, 1, 4, 9);
        assert_eq!(decode_hello(&ok).unwrap(), (ROLE_SOURCE, 1, 4, 9));
        ok[0] ^= 0xFF; // corrupt magic
        assert!(matches!(decode_hello(&ok), Err(NetError::Handshake { .. })));
    }
}
