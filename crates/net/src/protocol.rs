//! The server-driven protocol: command/response frames for the
//! non-replicated execution model.
//!
//! The replicated SPMD backend ([`crate::tcp`]) runs the *whole*
//! deterministic pipeline in every process and verifies byte equality.
//! This module defines the vocabulary of the paper's actual deployment
//! model instead: one **server driver** owns the stage plan and emits
//! [`Command`]s; each **source executor** holds *only its own shard*,
//! answers with [`Response`]s, and never observes another source's data.
//!
//! Two planes travel over one connection:
//!
//! * the **control plane** — stage advancement, shard-shape descriptions,
//!   per-phase op counts and timings, the final counter report. Control
//!   frames are *not* charged to the [`NetworkStats`]: they carry plan
//!   coordination the paper's model treats as shared configuration.
//! * the **data plane** — the exact [`Message`] encodings of the
//!   in-process simulation, wrapped as [`Payload`]s inside
//!   [`Command::Deliver`] (downlink) and [`Response::Up`] (uplink).
//!   Every payload is charged its exact encoded bit length under its
//!   message kind, so a protocol run's `NetworkStats` is bit-identical
//!   to the simulation by construction.
//!
//! Payloads stay *encoded* end to end — even the in-process channel
//! backend hands the receiver the encoded bytes to decode — so anything
//! lossy about the wire format (quantization, f32 auxiliaries) shapes
//! the computation identically on every backend.
//!
//! Backends:
//!
//! * [`channel_pairs`] — in-process mpsc channels, one executor thread
//!   per source (what `ekm run` uses);
//! * [`crate::event`] — a non-blocking `std::net` backend whose server
//!   multiplexes every source connection in one poll loop.

use crate::messages::Message;
use crate::network::NetworkStats;
use crate::{NetError, Result};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// The one fault-tolerance knob every backend obeys: how long any single
/// socket read/write may take (`io`) and how long the driver waits for a
/// source to answer a command round (`command`) before declaring the
/// source lost ([`Response::SourceLost`]).
///
/// Both the in-process channel backend and the event-driven TCP backend
/// derive their timeouts from this policy, and the legacy replicated
/// backend's `IO_TIMEOUT` is an alias of [`DeadlinePolicy::DEFAULT_IO`] —
/// so one knob (`ekm serve --deadline-ms`) governs every transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Per-read/write socket deadline.
    pub io: Duration,
    /// Whole-command-round deadline: how long the driver waits for a
    /// source's response before treating the source as a straggler.
    pub command: Duration,
}

impl DeadlinePolicy {
    /// Default per-read/write socket deadline (the former hard-coded
    /// `tcp::IO_TIMEOUT`).
    pub const DEFAULT_IO: Duration = Duration::from_secs(120);

    /// Default command-round deadline (the former hard-coded
    /// [`CHANNEL_TIMEOUT`]).
    pub const DEFAULT_COMMAND: Duration = Duration::from_secs(600);

    /// A policy with both deadlines set to `d` (what `--deadline-ms`
    /// configures).
    pub fn uniform(d: Duration) -> DeadlinePolicy {
        DeadlinePolicy { io: d, command: d }
    }

    /// How long a *source* waits for its next command before concluding
    /// the server is gone. Between two commands to the same source the
    /// driver may legitimately stall several whole command deadlines —
    /// waiting out, then reissuing, every straggler in the round — so
    /// sources allow eight of them before giving up.
    pub fn idle(&self) -> Duration {
        self.command.saturating_mul(8)
    }

    /// Backoff between connection attempts while a source waits for the
    /// server to (re)bind: `io / 20`, clamped to `[1ms, 100ms]`. At the
    /// default policy this reproduces the former hard-coded 100ms sleep;
    /// a tightened `--deadline-ms` now proportionally tightens reconnect
    /// latency during `--resume` recovery instead of being ignored.
    pub fn retry_backoff(&self) -> Duration {
        (self.io / 20).clamp(Duration::from_millis(1), Duration::from_millis(100))
    }
}

impl Default for DeadlinePolicy {
    fn default() -> DeadlinePolicy {
        DeadlinePolicy {
            io: Self::DEFAULT_IO,
            command: Self::DEFAULT_COMMAND,
        }
    }
}

/// One data-plane message, kept in its exact wire encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Payload {
    bytes: Vec<u8>,
    bits: u64,
}

impl Payload {
    /// Encodes a message into a payload.
    pub fn of(msg: &Message) -> Payload {
        let (bytes, bits) = msg.encode();
        Payload {
            bytes,
            bits: bits as u64,
        }
    }

    /// Wraps already-encoded bytes (used by the frame decoders).
    pub(crate) fn from_encoded(bytes: Vec<u8>, bits: u64) -> Payload {
        Payload { bytes, bits }
    }

    /// Decodes the carried message.
    ///
    /// # Errors
    ///
    /// Wire-format decode failures.
    pub fn decode(&self) -> Result<Message> {
        Message::decode(&self.bytes, self.bits as usize)
    }

    /// Exact encoded bit length — what the transport charges.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The message kind, read from the leading tag byte without
    /// decoding the payload.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownMessageTag`] for unrecognized or empty
    /// payloads.
    pub fn kind(&self) -> Result<&'static str> {
        let tag = self
            .bytes
            .first()
            .copied()
            .ok_or(NetError::UnknownMessageTag { tag: 0 })?;
        Message::kind_of_tag(tag)
    }

    /// The leading wire tag byte (`0` for an empty payload) — what a
    /// tree-mode executor reports as its leaf kind without decoding.
    pub fn tag(&self) -> u8 {
        self.bytes.first().copied().unwrap_or(0)
    }

    fn encoded(&self) -> (&[u8], u64) {
        (&self.bytes, self.bits)
    }
}

/// A server → source protocol command.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Command {
    /// Report the shard's current shape (the first round of every run;
    /// the driver validates dimensional agreement from the answers).
    Describe,
    /// Run the source-local part of stage `index` of the shared plan.
    Stage {
        /// Index into the agreed stage list.
        index: u32,
    },
    /// A charged data-plane downlink payload (disPCA basis broadcast,
    /// disSS sample allocation).
    Deliver {
        /// The encoded message.
        payload: Payload,
    },
    /// Uplink the FSS basis (sent to the single source that owns one).
    TransmitBasis,
    /// Uplink the final summary (coreset or raw points).
    Transmit,
    /// End of run: the driver's totals, answered by a [`Response::Fin`]
    /// counter report.
    Finish {
        /// Total uplink bits the server charged.
        uplink_bits: u64,
        /// Total downlink bits the server charged.
        downlink_bits: u64,
        /// FNV-1a hash of the final centers' bit patterns.
        centers_hash: u64,
    },
    /// The driver failed; the executor should stop with an error.
    Abort {
        /// The driver-side failure.
        reason: String,
    },
    /// Fire-and-forget deadline announcement: the executor applies a
    /// uniform [`DeadlinePolicy`] of `ms` milliseconds to its endpoint.
    /// Not a round command — no response is sent.
    Deadline {
        /// Uniform deadline in milliseconds.
        ms: u64,
    },
    /// Recovery: re-deliver the response for round `round`. An executor
    /// already past the round answers from its cached last response; an
    /// executor one round behind executes `cmd` fresh.
    Reissue {
        /// The round the driver is missing a response for.
        round: u64,
        /// The original round command, re-executed if the executor never
        /// saw it.
        cmd: Box<Command>,
    },
    /// Recovery: a restarted driver asks the executor for its position.
    /// Answered by [`Response::Resumed`]; pending responses the executor
    /// already sent may arrive first.
    Resume {
        /// The last round the driver holds a journaled response for.
        round: u64,
    },
    /// Replica failover: the receiving host instantiates (or resets) a
    /// fresh executor persona for dead source `origin` from its cold
    /// replica shard, answered by [`Response::Promoted`]. Idempotent by
    /// reset — re-promoting after a driver crash rebuilds the persona
    /// from the shard again, so any crash point replays cleanly.
    Promote {
        /// The dead source whose shard the host must answer for.
        origin: u64,
    },
    /// Replica failover: re-run one of dead source `origin`'s completed
    /// round commands on the promoted persona to rebuild its state,
    /// answered by [`Response::Replayed`]. Mirrors [`Command::Reissue`]
    /// round semantics: a persona already past `round` acknowledges
    /// without re-executing, one exactly at `round − 1` executes fresh.
    Replay {
        /// The dead source being impersonated.
        origin: u64,
        /// The 1-based round the carried command completed originally.
        round: u64,
        /// The original round command, bit-identical to what the dead
        /// owner executed.
        cmd: Box<Command>,
    },
    /// Replica failover: a live command for absorbed source `origin`,
    /// delivered to its promoted host and executed by the persona. The
    /// carried command is charged exactly as if sent to `origin`
    /// directly; only the wrapper overhead is replica-plane cost.
    Forward {
        /// The absorbed source the carried command addresses.
        origin: u64,
        /// The command the persona executes.
        cmd: Box<Command>,
    },
    /// Tree-topology aggregation step, answered by [`Response::Merged`].
    /// With a `payload`, the executor folds the peer's encoded summary
    /// into its merge buffer; with `emit` set, it surrenders its buffer
    /// in the response (`last` marks the root delivery — the single
    /// server-side fold input). Peer summaries are routed through the
    /// server in v1, so the relay traffic is charged here and on the
    /// matching response, never to the star-equivalent classic ledgers.
    MergeWith {
        /// Which gather the merge belongs to (1 = disPCA summaries,
        /// 2 = disSS coresets, 3 = final transmit).
        gather: u8,
        /// Reduction-tree level, 0-based; the root emit uses the level
        /// one past the last merge level.
        level: u64,
        /// Number of summary holders still active entering this level.
        active: u64,
        /// A peer's encoded summary to fold into the local buffer.
        payload: Option<Payload>,
        /// Whether to surrender the merge buffer in the response.
        emit: bool,
        /// Whether the emitted buffer is the folded root bound for the
        /// server.
        last: bool,
    },
}

/// A source → server protocol response.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Response {
    /// A local phase finished; control-plane metadata only.
    Done {
        /// The executor's round counter after this command (1-based).
        round: u64,
        /// Shard rows after the phase.
        rows: u64,
        /// Shard columns after the phase.
        cols: u64,
        /// Deterministic operation count of the phase.
        ops: u64,
        /// Wall-clock seconds of the phase.
        seconds: f64,
    },
    /// A charged data-plane uplink payload plus the phase metadata.
    Up {
        /// The executor's round counter after this command (1-based).
        round: u64,
        /// The encoded message.
        payload: Payload,
        /// Deterministic operation count of the phase.
        ops: u64,
        /// Wall-clock seconds of the phase.
        seconds: f64,
    },
    /// Counter report answering [`Command::Finish`].
    Fin {
        /// The executor's round counter after this command (1-based).
        round: u64,
        /// Uplink bits this source observed itself sending.
        uplink_bits: u64,
        /// Downlink bits this source observed itself receiving.
        downlink_bits: u64,
    },
    /// The executor failed; carries the failure for the driver.
    Err {
        /// The executor-side failure.
        reason: String,
    },
    /// Answers [`Command::Resume`]: where the executor stands.
    Resumed {
        /// The executor's current round counter.
        round: u64,
        /// FNV-1a fingerprint over (round, uplink bits, downlink bits)
        /// of the executor's own ledger, cross-checked by the resumed
        /// driver against its journal-replayed counters.
        fingerprint: u64,
    },
    /// Synthesized by the *server-side* transport when a source
    /// disconnects or misses its command deadline — never sent on the
    /// wire by an executor. Typed so the driver can degrade instead of
    /// abort.
    SourceLost {
        /// What happened (disconnect vs deadline).
        reason: String,
    },
    /// Answers [`Command::Promote`]: the persona for `origin` exists
    /// and stands at `round` (always `0` — promotion resets it).
    Promoted {
        /// The absorbed source the host now answers for.
        origin: u64,
        /// The fresh persona's round counter.
        round: u64,
    },
    /// Answers [`Command::Replay`]: the persona finished rebuilding
    /// round `round` of dead source `origin`.
    Replayed {
        /// The absorbed source being impersonated.
        origin: u64,
        /// The persona's round counter after the replay.
        round: u64,
        /// The persona's own ledger fingerprint (same FNV-1a as
        /// [`Response::Resumed`]) — after the final replay the driver
        /// cross-checks it against the dead owner's journaled ledger.
        fingerprint: u64,
    },
    /// Answers [`Command::Forward`]: the persona's response for the
    /// carried command, charged exactly as if `origin` sent it.
    Forwarded {
        /// The absorbed source the carried response answers for.
        origin: u64,
        /// The persona's response.
        resp: Box<Response>,
    },
    /// Answers [`Command::MergeWith`]: an optional surrendered merge
    /// buffer plus the source's one-time leaf accounting.
    Merged {
        /// The executor's round counter after this command (1-based).
        round: u64,
        /// The surrendered merge buffer (present iff the command set
        /// `emit`).
        payload: Option<Payload>,
        /// On the source's *first* `Merged` only: the encoded bit
        /// length of its own buffered leaf summary, charged to the
        /// classic uplink ledger under `leaf_tag`'s kind — which keeps
        /// every per-source counter and the run digest identical to
        /// the star topology. Zero afterwards.
        leaf_bits: u64,
        /// Wire tag of the leaf summary (`0` when `leaf_bits == 0`).
        leaf_tag: u8,
        /// Whether `payload` is the folded root (charged as the
        /// server's single fold input rather than relay traffic).
        last: bool,
    },
}

const CMD_DESCRIBE: u8 = 1;
const CMD_STAGE: u8 = 2;
const CMD_DELIVER: u8 = 3;
const CMD_TRANSMIT_BASIS: u8 = 4;
const CMD_TRANSMIT: u8 = 5;
const CMD_FINISH: u8 = 6;
const CMD_ABORT: u8 = 7;
const CMD_DEADLINE: u8 = 8;
const CMD_REISSUE: u8 = 9;
const CMD_RESUME: u8 = 10;
const CMD_MERGE_WITH: u8 = 11;
const CMD_PROMOTE: u8 = 12;
const CMD_REPLAY: u8 = 13;
const CMD_FORWARD: u8 = 14;

const RESP_DONE: u8 = 1;
const RESP_UP: u8 = 2;
const RESP_FIN: u8 = 3;
const RESP_ERR: u8 = 4;
const RESP_RESUMED: u8 = 5;
const RESP_SOURCE_LOST: u8 = 6;
const RESP_MERGED: u8 = 7;
const RESP_PROMOTED: u8 = 8;
const RESP_REPLAYED: u8 = 9;
const RESP_FORWARDED: u8 = 10;

/// Encoded overhead of a [`Command::Forward`] / [`Response::Forwarded`]
/// wrapper around its carried frame (tag + origin + length prefix),
/// charged to the replica-plane ledger.
pub const FORWARD_OVERHEAD_BITS: u64 = (1 + 8 + 8) * 8;

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn push_payload(buf: &mut Vec<u8>, payload: &Payload) {
    let (bytes, bits) = payload.encoded();
    push_u64(buf, bits);
    buf.extend_from_slice(bytes);
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8], context: &'static str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context,
        }
    }

    fn short(&self) -> NetError {
        NetError::Transport {
            context: self.context,
            detail: format!("truncated frame ({} bytes)", self.buf.len()),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        let v = *self.buf.get(self.pos).ok_or_else(|| self.short())?;
        self.pos += 1;
        Ok(v)
    }

    fn u64(&mut self) -> Result<u64> {
        let end = self.pos + 8;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(u64::from_be_bytes(slice.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bytes(&mut self, len: usize) -> Result<Vec<u8>> {
        let end = self.pos + len;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| self.short())?;
        self.pos = end;
        Ok(slice.to_vec())
    }

    fn payload(&mut self) -> Result<Payload> {
        let bits = self.u64()?;
        let bytes = self.bytes((bits as usize).div_ceil(8))?;
        Ok(Payload::from_encoded(bytes, bits))
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u64()? as usize;
        String::from_utf8(self.bytes(len)?).map_err(|_| NetError::Transport {
            context: self.context,
            detail: "non-utf8 reason string".to_string(),
        })
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(NetError::Transport {
                context: self.context,
                detail: format!(
                    "{} trailing bytes after a complete frame",
                    self.buf.len() - self.pos
                ),
            });
        }
        Ok(())
    }
}

impl Command {
    /// The frame name, for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Command::Describe => "describe",
            Command::Stage { .. } => "stage",
            Command::Deliver { .. } => "deliver",
            Command::TransmitBasis => "transmit-basis",
            Command::Transmit => "transmit",
            Command::Finish { .. } => "finish",
            Command::Abort { .. } => "abort",
            Command::Deadline { .. } => "deadline",
            Command::Reissue { .. } => "reissue",
            Command::Resume { .. } => "resume",
            Command::Promote { .. } => "promote",
            Command::Replay { .. } => "replay",
            Command::Forward { .. } => "forward",
            Command::MergeWith { .. } => "merge-with",
        }
    }

    /// `true` for the commands that advance the executor's round counter
    /// and expect exactly one response (everything except `Abort` and
    /// the fault-tolerance vocabulary). A [`Command::Forward`] wrapper
    /// is itself not a round — the carried command's round-ness belongs
    /// to the absorbed origin and is accounted above the routing layer.
    pub fn is_round(&self) -> bool {
        !matches!(
            self,
            Command::Abort { .. }
                | Command::Deadline { .. }
                | Command::Reissue { .. }
                | Command::Resume { .. }
                | Command::Promote { .. }
                | Command::Replay { .. }
                | Command::Forward { .. }
        )
    }

    /// Encodes the command for a socket frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Command::Describe => buf.push(CMD_DESCRIBE),
            Command::Stage { index } => {
                buf.push(CMD_STAGE);
                push_u64(&mut buf, *index as u64);
            }
            Command::Deliver { payload } => {
                buf.push(CMD_DELIVER);
                push_payload(&mut buf, payload);
            }
            Command::TransmitBasis => buf.push(CMD_TRANSMIT_BASIS),
            Command::Transmit => buf.push(CMD_TRANSMIT),
            Command::Finish {
                uplink_bits,
                downlink_bits,
                centers_hash,
            } => {
                buf.push(CMD_FINISH);
                push_u64(&mut buf, *uplink_bits);
                push_u64(&mut buf, *downlink_bits);
                push_u64(&mut buf, *centers_hash);
            }
            Command::Abort { reason } => {
                buf.push(CMD_ABORT);
                push_str(&mut buf, reason);
            }
            Command::Deadline { ms } => {
                buf.push(CMD_DEADLINE);
                push_u64(&mut buf, *ms);
            }
            Command::Reissue { round, cmd } => {
                buf.push(CMD_REISSUE);
                push_u64(&mut buf, *round);
                let inner = cmd.encode();
                push_u64(&mut buf, inner.len() as u64);
                buf.extend_from_slice(&inner);
            }
            Command::Resume { round } => {
                buf.push(CMD_RESUME);
                push_u64(&mut buf, *round);
            }
            Command::Promote { origin } => {
                buf.push(CMD_PROMOTE);
                push_u64(&mut buf, *origin);
            }
            Command::Replay { origin, round, cmd } => {
                buf.push(CMD_REPLAY);
                push_u64(&mut buf, *origin);
                push_u64(&mut buf, *round);
                let inner = cmd.encode();
                push_u64(&mut buf, inner.len() as u64);
                buf.extend_from_slice(&inner);
            }
            Command::Forward { origin, cmd } => {
                buf.push(CMD_FORWARD);
                push_u64(&mut buf, *origin);
                let inner = cmd.encode();
                push_u64(&mut buf, inner.len() as u64);
                buf.extend_from_slice(&inner);
            }
            Command::MergeWith {
                gather,
                level,
                active,
                payload,
                emit,
                last,
            } => {
                buf.push(CMD_MERGE_WITH);
                buf.push(*gather);
                push_u64(&mut buf, *level);
                push_u64(&mut buf, *active);
                let flags =
                    u8::from(payload.is_some()) | (u8::from(*emit) << 1) | (u8::from(*last) << 2);
                buf.push(flags);
                if let Some(p) = payload {
                    push_payload(&mut buf, p);
                }
            }
        }
        buf
    }

    /// Decodes a command frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] on truncated or trailing bytes,
    /// [`NetError::ProtocolViolation`] on an unknown tag.
    pub fn decode(buf: &[u8]) -> Result<Command> {
        let mut r = ByteReader::new(buf, "command decode");
        let cmd = match r.u8()? {
            CMD_DESCRIBE => Command::Describe,
            CMD_STAGE => Command::Stage {
                index: r.u64()? as u32,
            },
            CMD_DELIVER => Command::Deliver {
                payload: r.payload()?,
            },
            CMD_TRANSMIT_BASIS => Command::TransmitBasis,
            CMD_TRANSMIT => Command::Transmit,
            CMD_FINISH => Command::Finish {
                uplink_bits: r.u64()?,
                downlink_bits: r.u64()?,
                centers_hash: r.u64()?,
            },
            CMD_ABORT => Command::Abort {
                reason: r.string()?,
            },
            CMD_DEADLINE => Command::Deadline { ms: r.u64()? },
            CMD_REISSUE => {
                let round = r.u64()?;
                let len = r.u64()? as usize;
                let inner = r.bytes(len)?;
                Command::Reissue {
                    round,
                    cmd: Box::new(Command::decode(&inner)?),
                }
            }
            CMD_RESUME => Command::Resume { round: r.u64()? },
            CMD_PROMOTE => Command::Promote { origin: r.u64()? },
            CMD_REPLAY => {
                let origin = r.u64()?;
                let round = r.u64()?;
                let len = r.u64()? as usize;
                let inner = r.bytes(len)?;
                Command::Replay {
                    origin,
                    round,
                    cmd: Box::new(Command::decode(&inner)?),
                }
            }
            CMD_FORWARD => {
                let origin = r.u64()?;
                let len = r.u64()? as usize;
                let inner = r.bytes(len)?;
                Command::Forward {
                    origin,
                    cmd: Box::new(Command::decode(&inner)?),
                }
            }
            CMD_MERGE_WITH => {
                let gather = r.u8()?;
                let level = r.u64()?;
                let active = r.u64()?;
                let flags = r.u8()?;
                let payload = if flags & 1 != 0 {
                    Some(r.payload()?)
                } else {
                    None
                };
                Command::MergeWith {
                    gather,
                    level,
                    active,
                    payload,
                    emit: flags & 2 != 0,
                    last: flags & 4 != 0,
                }
            }
            other => {
                return Err(NetError::ProtocolViolation {
                    context: "command decode",
                    expected: "a command tag",
                    got: format!("tag {other}"),
                })
            }
        };
        r.finish()?;
        Ok(cmd)
    }
}

impl Response {
    /// The frame name, for error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Response::Done { .. } => "done",
            Response::Up { .. } => "up",
            Response::Fin { .. } => "fin",
            Response::Err { .. } => "err",
            Response::Resumed { .. } => "resumed",
            Response::SourceLost { .. } => "source-lost",
            Response::Promoted { .. } => "promoted",
            Response::Replayed { .. } => "replayed",
            Response::Forwarded { .. } => "forwarded",
            Response::Merged { .. } => "merged",
        }
    }

    /// The round counter a [`Response::Done`]/[`Up`](Response::Up)/
    /// [`Fin`](Response::Fin)/[`Merged`](Response::Merged) carries;
    /// `None` for the others.
    pub fn round(&self) -> Option<u64> {
        match self {
            Response::Done { round, .. }
            | Response::Up { round, .. }
            | Response::Fin { round, .. }
            | Response::Merged { round, .. } => Some(*round),
            _ => None,
        }
    }

    /// Encodes the response for a socket frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Done {
                round,
                rows,
                cols,
                ops,
                seconds,
            } => {
                buf.push(RESP_DONE);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *rows);
                push_u64(&mut buf, *cols);
                push_u64(&mut buf, *ops);
                push_u64(&mut buf, seconds.to_bits());
            }
            Response::Up {
                round,
                payload,
                ops,
                seconds,
            } => {
                buf.push(RESP_UP);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *ops);
                push_u64(&mut buf, seconds.to_bits());
                push_payload(&mut buf, payload);
            }
            Response::Fin {
                round,
                uplink_bits,
                downlink_bits,
            } => {
                buf.push(RESP_FIN);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *uplink_bits);
                push_u64(&mut buf, *downlink_bits);
            }
            Response::Err { reason } => {
                buf.push(RESP_ERR);
                push_str(&mut buf, reason);
            }
            Response::Resumed { round, fingerprint } => {
                buf.push(RESP_RESUMED);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *fingerprint);
            }
            Response::SourceLost { reason } => {
                buf.push(RESP_SOURCE_LOST);
                push_str(&mut buf, reason);
            }
            Response::Promoted { origin, round } => {
                buf.push(RESP_PROMOTED);
                push_u64(&mut buf, *origin);
                push_u64(&mut buf, *round);
            }
            Response::Replayed {
                origin,
                round,
                fingerprint,
            } => {
                buf.push(RESP_REPLAYED);
                push_u64(&mut buf, *origin);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *fingerprint);
            }
            Response::Forwarded { origin, resp } => {
                buf.push(RESP_FORWARDED);
                push_u64(&mut buf, *origin);
                let inner = resp.encode();
                push_u64(&mut buf, inner.len() as u64);
                buf.extend_from_slice(&inner);
            }
            Response::Merged {
                round,
                payload,
                leaf_bits,
                leaf_tag,
                last,
            } => {
                buf.push(RESP_MERGED);
                push_u64(&mut buf, *round);
                push_u64(&mut buf, *leaf_bits);
                buf.push(*leaf_tag);
                let flags = u8::from(payload.is_some()) | (u8::from(*last) << 1);
                buf.push(flags);
                if let Some(p) = payload {
                    push_payload(&mut buf, p);
                }
            }
        }
        buf
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// See [`Command::decode`].
    pub fn decode(buf: &[u8]) -> Result<Response> {
        let mut r = ByteReader::new(buf, "response decode");
        let resp = match r.u8()? {
            RESP_DONE => Response::Done {
                round: r.u64()?,
                rows: r.u64()?,
                cols: r.u64()?,
                ops: r.u64()?,
                seconds: r.f64()?,
            },
            RESP_UP => Response::Up {
                round: r.u64()?,
                ops: r.u64()?,
                seconds: r.f64()?,
                payload: r.payload()?,
            },
            RESP_FIN => Response::Fin {
                round: r.u64()?,
                uplink_bits: r.u64()?,
                downlink_bits: r.u64()?,
            },
            RESP_ERR => Response::Err {
                reason: r.string()?,
            },
            RESP_RESUMED => Response::Resumed {
                round: r.u64()?,
                fingerprint: r.u64()?,
            },
            RESP_SOURCE_LOST => Response::SourceLost {
                reason: r.string()?,
            },
            RESP_PROMOTED => Response::Promoted {
                origin: r.u64()?,
                round: r.u64()?,
            },
            RESP_REPLAYED => Response::Replayed {
                origin: r.u64()?,
                round: r.u64()?,
                fingerprint: r.u64()?,
            },
            RESP_FORWARDED => {
                let origin = r.u64()?;
                let len = r.u64()? as usize;
                let inner = r.bytes(len)?;
                Response::Forwarded {
                    origin,
                    resp: Box::new(Response::decode(&inner)?),
                }
            }
            RESP_MERGED => {
                let round = r.u64()?;
                let leaf_bits = r.u64()?;
                let leaf_tag = r.u8()?;
                let flags = r.u8()?;
                let payload = if flags & 1 != 0 {
                    Some(r.payload()?)
                } else {
                    None
                };
                Response::Merged {
                    round,
                    payload,
                    leaf_bits,
                    leaf_tag,
                    last: flags & 2 != 0,
                }
            }
            other => {
                return Err(NetError::ProtocolViolation {
                    context: "response decode",
                    expected: "a response tag",
                    got: format!("tag {other}"),
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

/// A [`Command`] encoded exactly once: the driver builds one of these
/// for a broadcast round and hands the *same* pre-framed bytes to every
/// source, instead of re-running the bit-packing encoder per recipient.
///
/// The original command rides along because every layer above the wire
/// still needs it — statistics charging inspects the variant, `RoundNet`
/// pushes it into replay history, the journal records its bytes, and
/// non-socket backends simply deliver it (their
/// [`CommandTransport::send_encoded`] default ignores the frame).
#[derive(Debug, Clone)]
pub struct EncodedCommand {
    cmd: Command,
    frame: crate::frame::FrameBuf,
}

impl EncodedCommand {
    /// Encodes `cmd` once into a reusable [`crate::frame::FrameBuf`]
    /// under [`crate::frame::FRAME_CMD`].
    pub fn new(cmd: Command) -> EncodedCommand {
        let bytes = cmd.encode();
        let frame = crate::frame::FrameBuf::new(crate::frame::FRAME_CMD, &bytes, bytes.len() * 8)
            .expect("command encodings are always consistent and under the frame cap");
        EncodedCommand { cmd, frame }
    }

    /// The command itself.
    pub fn command(&self) -> &Command {
        &self.cmd
    }

    /// The complete wire frame (header + encoded command).
    pub fn frame_bytes(&self) -> &[u8] {
        self.frame.bytes()
    }

    /// The encoded command bytes alone — byte-identical to
    /// `self.command().encode()`, without re-encoding.
    pub fn encoded(&self) -> &[u8] {
        self.frame.payload()
    }
}

/// The server side of a protocol run: one connection (or channel) per
/// source, exact [`NetworkStats`] accounting of the data plane.
///
/// Implementations must charge [`Command::Deliver`] payloads to the
/// downlink and [`Response::Up`] payloads to the uplink as the frames
/// pass through ([`charge_command`] / [`charge_response`] do exactly
/// that), so the driver never touches the counters itself.
pub trait CommandTransport {
    /// Number of sources.
    fn sources(&self) -> usize;

    /// Sends `cmd` to source `source`.
    ///
    /// # Errors
    ///
    /// Transport failures (a disconnected source surfaces here as a
    /// typed [`NetError::Transport`], never a hang).
    fn send(&mut self, source: usize, cmd: &Command) -> Result<()>;

    /// Sends a pre-encoded command, sharing one encoding across a
    /// fan-out. Must be observationally identical to
    /// `send(source, enc.command())` — same charging, same wire bytes —
    /// which is exactly what this default does; socket backends
    /// override it to write the shared frame without re-encoding.
    ///
    /// # Errors
    ///
    /// See [`CommandTransport::send`].
    fn send_encoded(&mut self, source: usize, enc: &EncodedCommand) -> Result<()> {
        self.send(source, enc.command())
    }

    /// Receives the next response from source `source`. Backends may
    /// harvest other sources' responses in arrival order while waiting.
    ///
    /// # Errors
    ///
    /// Transport failures and decode failures.
    fn recv(&mut self, source: usize) -> Result<Response>;

    /// Read access to the accumulated data-plane statistics.
    fn stats(&self) -> &NetworkStats;

    /// Applies a deadline policy to the transport. Backends without
    /// timeouts (or with fixed ones) may ignore it.
    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        let _ = policy;
    }

    /// Arms replica failover: dead source `origin`'s traffic is
    /// henceforth answered by `host`'s promoted persona. Layered
    /// transports propagate the call downward (journaling it, arming
    /// the routing table); plain backends reject it — failover requires
    /// a [`crate::routing::RoutingTransport`] in the stack.
    ///
    /// # Errors
    ///
    /// [`NetError::ProtocolViolation`] when the transport cannot route,
    /// transport failures when the host is unreachable.
    fn promote(&mut self, origin: usize, host: usize) -> Result<()> {
        let _ = host;
        Err(NetError::ProtocolViolation {
            context: "promote",
            expected: "a routing-capable transport in the stack",
            got: format!("a transport that cannot re-home source {origin}"),
        })
    }

    /// True while the transport is replaying a journaled prefix: no
    /// wire I/O happens, so the driver must skip the live promotion
    /// handshake (the journal re-fires it during reconciliation).
    fn replaying(&self) -> bool {
        false
    }
}

/// The source side of a protocol run.
pub trait SourceEndpoint {
    /// Blocks for the next command from the server.
    ///
    /// # Errors
    ///
    /// Transport failures (a vanished server surfaces as a typed
    /// [`NetError::Transport`]).
    fn recv_command(&mut self) -> Result<Command>;

    /// Sends a response to the server.
    ///
    /// # Errors
    ///
    /// Transport failures.
    fn send_response(&mut self, resp: Response) -> Result<()>;

    /// Applies a deadline policy to the endpoint (what
    /// [`Command::Deadline`] carries). Backends without timeouts may
    /// ignore it.
    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        let _ = policy;
    }
}

/// Charges a command's data-plane payload (if any) to the downlink.
///
/// A [`Command::MergeWith`] records its tree level and charges a carried
/// peer summary to the *relay* ledger — physical merge traffic stays off
/// the classic downlink counters, which remain bit-identical to the star
/// topology by construction.
///
/// # Errors
///
/// [`NetError::UnknownMessageTag`] for a malformed payload.
pub fn charge_command(stats: &mut NetworkStats, source: usize, cmd: &Command) -> Result<()> {
    match cmd {
        Command::Deliver { payload } => {
            payload.kind()?; // malformed payloads are rejected before charging
            stats.charge_downlink(source, payload.bits() as usize);
        }
        // The replica plane: a promotion, a replayed round, and a
        // forward wrapper's overhead all stay off the classic ledgers
        // (which must remain bit-identical to a never-failed twin); the
        // carried command of a `Forward` is charged exactly as if it
        // went to the absorbed origin directly.
        Command::Promote { .. } => {
            stats.charge_promotion((cmd.encode().len() * 8) as u64);
        }
        Command::Replay { .. } => {
            stats.charge_replay((cmd.encode().len() * 8) as u64);
        }
        Command::Forward { origin, cmd } => {
            charge_command(stats, *origin as usize, cmd)?;
            stats.charge_replica_bits(FORWARD_OVERHEAD_BITS);
        }
        Command::MergeWith {
            gather,
            level,
            active,
            payload,
            ..
        } => {
            stats.note_merge_level(*gather, *level, *active);
            if let Some(p) = payload {
                p.kind()?;
                stats.charge_relay(source, p.bits());
            }
        }
        _ => {}
    }
    Ok(())
}

/// Charges a response's data-plane payload (if any) to the uplink.
///
/// A [`Response::Merged`] charges the source's one-time `leaf_bits` to
/// the classic uplink ledger under the leaf's own kind (so per-source
/// counters and the run digest match the star topology exactly), and
/// books a surrendered buffer as relay traffic — or, for the folded
/// root, as the server's single fold input.
///
/// # Errors
///
/// [`NetError::UnknownMessageTag`] for a malformed payload or leaf tag.
pub fn charge_response(stats: &mut NetworkStats, source: usize, resp: &Response) -> Result<()> {
    match resp {
        Response::Up { payload, .. } => {
            let kind = payload.kind()?;
            stats.charge_uplink(source, payload.bits() as usize, kind);
        }
        // The replica plane mirrors `charge_command`: acknowledgements
        // are pure recovery overhead, a forwarded response is charged
        // as if the absorbed origin sent it itself.
        Response::Promoted { .. } | Response::Replayed { .. } => {
            stats.charge_replica_bits((resp.encode().len() * 8) as u64);
        }
        Response::Forwarded { origin, resp } => {
            charge_response(stats, *origin as usize, resp)?;
            stats.charge_replica_bits(FORWARD_OVERHEAD_BITS);
        }
        Response::Merged {
            payload,
            leaf_bits,
            leaf_tag,
            last,
            ..
        } => {
            if *leaf_bits > 0 {
                let kind = Message::kind_of_tag(*leaf_tag)?;
                stats.charge_uplink(source, *leaf_bits as usize, kind);
            }
            if let Some(p) = payload {
                p.kind()?;
                if *last {
                    stats.charge_server_fold(p.bits());
                } else {
                    stats.charge_relay(source, p.bits());
                }
            }
        }
        _ => {}
    }
    Ok(())
}

/// How long a channel-backend receive waits before declaring the peer
/// gone (an executor thread that panicked drops its endpoint, which
/// surfaces immediately; the timeout only guards genuine wedges).
/// Alias of [`DeadlinePolicy::DEFAULT_COMMAND`].
pub const CHANNEL_TIMEOUT: Duration = DeadlinePolicy::DEFAULT_COMMAND;

/// The server half of the in-process channel backend.
#[derive(Debug)]
pub struct ChannelHub {
    to_sources: Vec<Sender<Command>>,
    from_sources: Vec<Receiver<Response>>,
    stats: NetworkStats,
    deadline: DeadlinePolicy,
}

/// The source half of the in-process channel backend.
#[derive(Debug)]
pub struct ChannelEndpoint {
    commands: Receiver<Command>,
    responses: Sender<Response>,
    deadline: DeadlinePolicy,
}

/// Builds the in-process channel backend for `m` sources: one
/// [`ChannelHub`] for the driver thread and one [`ChannelEndpoint`] per
/// executor thread.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn channel_pairs(m: usize) -> (ChannelHub, Vec<ChannelEndpoint>) {
    assert!(m > 0, "protocol needs at least one source");
    let mut to_sources = Vec::with_capacity(m);
    let mut from_sources = Vec::with_capacity(m);
    let mut endpoints = Vec::with_capacity(m);
    for _ in 0..m {
        let (cmd_tx, cmd_rx) = channel();
        let (resp_tx, resp_rx) = channel();
        to_sources.push(cmd_tx);
        from_sources.push(resp_rx);
        endpoints.push(ChannelEndpoint {
            commands: cmd_rx,
            responses: resp_tx,
            deadline: DeadlinePolicy::default(),
        });
    }
    (
        ChannelHub {
            to_sources,
            from_sources,
            stats: NetworkStats::new(m),
            deadline: DeadlinePolicy::default(),
        },
        endpoints,
    )
}

impl ChannelHub {
    fn check(&self, source: usize) -> Result<()> {
        if source >= self.to_sources.len() {
            return Err(NetError::UnknownSource {
                source,
                sources: self.to_sources.len(),
            });
        }
        Ok(())
    }
}

impl CommandTransport for ChannelHub {
    fn sources(&self) -> usize {
        self.to_sources.len()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> Result<()> {
        self.check(source)?;
        charge_command(&mut self.stats, source, cmd)?;
        self.to_sources[source]
            .send(cmd.clone())
            .map_err(|_| NetError::Transport {
                context: "channel send",
                detail: format!("source {source} hung up"),
            })
    }

    fn recv(&mut self, source: usize) -> Result<Response> {
        self.check(source)?;
        let resp = match self.from_sources[source].recv_timeout(self.deadline.command) {
            Ok(resp) => resp,
            // A vanished or stalled executor is a *typed* loss the driver
            // can degrade around, not a transport error.
            Err(RecvTimeoutError::Timeout) => {
                return Ok(Response::SourceLost {
                    reason: format!(
                        "source {source} missed the {:?} command deadline",
                        self.deadline.command
                    ),
                })
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Ok(Response::SourceLost {
                    reason: format!("source {source} disconnected"),
                })
            }
        };
        charge_response(&mut self.stats, source, &resp)?;
        Ok(resp)
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.deadline = policy;
    }
}

impl SourceEndpoint for ChannelEndpoint {
    fn recv_command(&mut self) -> Result<Command> {
        self.commands
            .recv_timeout(self.deadline.idle())
            .map_err(|e| NetError::Transport {
                context: "channel recv_command",
                detail: format!("server: {e}"),
            })
    }

    fn send_response(&mut self, resp: Response) -> Result<()> {
        self.responses.send(resp).map_err(|_| NetError::Transport {
            context: "channel send_response",
            detail: "server hung up".to_string(),
        })
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.deadline = policy;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_linalg::Matrix;

    fn payload() -> Payload {
        Payload::of(&Message::Coreset {
            points: Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.5),
            weights: vec![1.0, 2.0, 3.0],
            delta: 0.25,
            precision: crate::wire::Precision::Full,
            weights_precision: crate::wire::Precision::Full,
        })
    }

    #[test]
    fn payload_preserves_exact_encoding() {
        let msg = Message::CostReport { cost: 1.5 };
        let p = Payload::of(&msg);
        let (_, bits) = msg.encode();
        assert_eq!(p.bits(), bits as u64);
        assert_eq!(p.kind().unwrap(), "cost-report");
        assert_eq!(p.decode().unwrap(), msg);
    }

    #[test]
    fn commands_roundtrip() {
        for cmd in [
            Command::Describe,
            Command::Stage { index: 3 },
            Command::Deliver { payload: payload() },
            Command::TransmitBasis,
            Command::Transmit,
            Command::Finish {
                uplink_bits: 10,
                downlink_bits: 20,
                centers_hash: 0xFEED,
            },
            Command::Abort {
                reason: "boom".to_string(),
            },
            Command::Deadline { ms: 1500 },
            Command::Reissue {
                round: 4,
                cmd: Box::new(Command::Deliver { payload: payload() }),
            },
            Command::Resume { round: 9 },
            Command::Promote { origin: 2 },
            Command::Replay {
                origin: 2,
                round: 3,
                cmd: Box::new(Command::Deliver { payload: payload() }),
            },
            Command::Forward {
                origin: 2,
                cmd: Box::new(Command::Stage { index: 1 }),
            },
            Command::MergeWith {
                gather: 1,
                level: 2,
                active: 5,
                payload: None,
                emit: true,
                last: false,
            },
            Command::MergeWith {
                gather: 3,
                level: 0,
                active: 8,
                payload: Some(payload()),
                emit: false,
                last: true,
            },
        ] {
            assert_eq!(
                Command::decode(&cmd.encode()).unwrap(),
                cmd,
                "{}",
                cmd.name()
            );
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Done {
                round: 1,
                rows: 5,
                cols: 7,
                ops: 11,
                seconds: 0.25,
            },
            Response::Up {
                round: 2,
                payload: payload(),
                ops: 3,
                seconds: 0.5,
            },
            Response::Fin {
                round: 3,
                uplink_bits: 1,
                downlink_bits: 2,
            },
            Response::Err {
                reason: "bad".to_string(),
            },
            Response::Resumed {
                round: 6,
                fingerprint: 0xABCD,
            },
            Response::SourceLost {
                reason: "gone".to_string(),
            },
            Response::Promoted {
                origin: 3,
                round: 0,
            },
            Response::Replayed {
                origin: 3,
                round: 4,
                fingerprint: 0x5EED,
            },
            Response::Forwarded {
                origin: 3,
                resp: Box::new(Response::Up {
                    round: 5,
                    payload: payload(),
                    ops: 1,
                    seconds: 0.0,
                }),
            },
            Response::Merged {
                round: 7,
                payload: Some(payload()),
                leaf_bits: 321,
                leaf_tag: 2,
                last: true,
            },
            Response::Merged {
                round: 8,
                payload: None,
                leaf_bits: 0,
                leaf_tag: 0,
                last: false,
            },
        ] {
            assert_eq!(
                Response::decode(&resp.encode()).unwrap(),
                resp,
                "{}",
                resp.name()
            );
        }
    }

    #[test]
    fn malformed_frames_are_typed_errors() {
        assert!(matches!(
            Command::decode(&[99]),
            Err(NetError::ProtocolViolation { .. })
        ));
        assert!(matches!(
            Response::decode(&[99]),
            Err(NetError::ProtocolViolation { .. })
        ));
        // Truncated stage index.
        assert!(matches!(
            Command::decode(&[CMD_STAGE, 0, 0]),
            Err(NetError::Transport { .. })
        ));
        // Trailing garbage.
        let mut buf = Command::Describe.encode();
        buf.push(0);
        assert!(matches!(
            Command::decode(&buf),
            Err(NetError::Transport { .. })
        ));
    }

    #[test]
    fn channel_backend_routes_and_charges() {
        let (mut hub, mut eps) = channel_pairs(2);
        let p = payload();
        let bits = p.bits();

        // Downlink: Deliver is charged, Stage is not.
        hub.send(0, &Command::Stage { index: 0 }).unwrap();
        hub.send(1, &Command::Deliver { payload: p.clone() })
            .unwrap();
        assert_eq!(hub.stats().total_downlink_bits(), bits);
        assert_eq!(hub.stats().downlink_bits(1), bits);
        assert_eq!(eps[0].recv_command().unwrap(), Command::Stage { index: 0 });
        assert!(matches!(
            eps[1].recv_command().unwrap(),
            Command::Deliver { .. }
        ));

        // Uplink: Up is charged under its message kind, Done is not.
        eps[0]
            .send_response(Response::Done {
                round: 1,
                rows: 1,
                cols: 1,
                ops: 0,
                seconds: 0.0,
            })
            .unwrap();
        eps[1]
            .send_response(Response::Up {
                round: 1,
                payload: p,
                ops: 0,
                seconds: 0.0,
            })
            .unwrap();
        hub.recv(0).unwrap();
        hub.recv(1).unwrap();
        assert_eq!(hub.stats().total_uplink_bits(), bits);
        assert_eq!(hub.stats().uplink_bits_by_kind()["coreset"], bits);
        assert_eq!(hub.stats().total_uplink_messages(), 1);
    }

    #[test]
    fn dropped_endpoint_is_send_error_and_source_lost_on_recv() {
        let (mut hub, eps) = channel_pairs(1);
        drop(eps);
        assert!(matches!(
            hub.send(0, &Command::Describe),
            Err(NetError::Transport { .. })
        ));
        // The receive side degrades: a vanished executor is a typed
        // SourceLost the driver folds around, not an abort.
        match hub.recv(0) {
            Ok(Response::SourceLost { reason }) => assert!(reason.contains("disconnected")),
            other => panic!("expected SourceLost, got {other:?}"),
        }
    }

    #[test]
    fn missed_command_deadline_is_source_lost() {
        let (mut hub, _eps) = channel_pairs(1);
        hub.set_deadline(DeadlinePolicy::uniform(Duration::from_millis(10)));
        match hub.recv(0) {
            Ok(Response::SourceLost { reason }) => assert!(reason.contains("deadline")),
            other => panic!("expected SourceLost, got {other:?}"),
        }
    }

    #[test]
    fn merge_frames_charge_tree_counters_not_classic_ledgers() {
        let p = payload();
        let bits = p.bits();
        let mut stats = NetworkStats::new(3);

        // A bare emit request records the level but moves no data.
        charge_command(
            &mut stats,
            1,
            &Command::MergeWith {
                gather: 2,
                level: 0,
                active: 3,
                payload: None,
                emit: true,
                last: false,
            },
        )
        .unwrap();
        // Delivering a peer summary is relay traffic; a replayed or
        // reissued level note stays idempotent.
        charge_command(
            &mut stats,
            0,
            &Command::MergeWith {
                gather: 2,
                level: 0,
                active: 99,
                payload: Some(p.clone()),
                emit: false,
                last: false,
            },
        )
        .unwrap();
        assert_eq!(stats.total_downlink_bits(), 0);
        assert_eq!(stats.relay_bits(0), bits);
        assert_eq!(stats.merge_levels()[&(2, 0)], 3);
        assert_eq!(stats.max_merge_rounds(), 1);

        // A first Merged charges the leaf to the classic uplink under
        // its own kind; the surrendered buffer is relay traffic…
        charge_response(
            &mut stats,
            1,
            &Response::Merged {
                round: 4,
                payload: Some(p.clone()),
                leaf_bits: 100,
                leaf_tag: 2,
                last: false,
            },
        )
        .unwrap();
        assert_eq!(stats.uplink_bits(1), 100);
        assert_eq!(stats.uplink_bits_by_kind()["coreset"], 100);
        assert_eq!(stats.relay_bits(1), bits);
        assert_eq!(stats.server_fold_inputs(), 0);

        // …while the root emit is the server's single fold input.
        charge_response(
            &mut stats,
            0,
            &Response::Merged {
                round: 5,
                payload: Some(p),
                leaf_bits: 0,
                leaf_tag: 0,
                last: true,
            },
        )
        .unwrap();
        assert_eq!(stats.server_fold_inputs(), 1);
        assert_eq!(stats.server_fold_bits(), bits);
        assert_eq!(stats.total_uplink_bits(), 100);
    }

    #[test]
    fn replica_frames_charge_the_replica_plane_not_classic_ledgers() {
        let p = payload();
        let bits = p.bits();
        let mut stats = NetworkStats::new(3);

        // Promotion + replay traffic never touches the classic ledgers.
        let promote = Command::Promote { origin: 1 };
        charge_command(&mut stats, 2, &promote).unwrap();
        assert_eq!(stats.replica_promotions(), 1);
        assert_eq!(stats.replica_bits(), (promote.encode().len() * 8) as u64);
        let replay = Command::Replay {
            origin: 1,
            round: 2,
            cmd: Box::new(Command::Deliver { payload: p.clone() }),
        };
        charge_command(&mut stats, 2, &replay).unwrap();
        assert_eq!(stats.replayed_rounds(), 1);
        assert_eq!(stats.total_downlink_bits(), 0);
        assert_eq!(stats.total_uplink_bits(), 0);

        // A forwarded live round charges the carried frames to the
        // absorbed origin exactly as a direct exchange would, plus the
        // wrapper overhead on the replica plane.
        let mut fwd = NetworkStats::new(3);
        charge_command(
            &mut fwd,
            2,
            &Command::Forward {
                origin: 1,
                cmd: Box::new(Command::Deliver { payload: p.clone() }),
            },
        )
        .unwrap();
        charge_response(
            &mut fwd,
            2,
            &Response::Forwarded {
                origin: 1,
                resp: Box::new(Response::Up {
                    round: 3,
                    payload: p.clone(),
                    ops: 0,
                    seconds: 0.0,
                }),
            },
        )
        .unwrap();
        let mut direct = NetworkStats::new(3);
        charge_command(&mut direct, 1, &Command::Deliver { payload: p.clone() }).unwrap();
        charge_response(
            &mut direct,
            1,
            &Response::Up {
                round: 3,
                payload: p,
                ops: 0,
                seconds: 0.0,
            },
        )
        .unwrap();
        assert_eq!(fwd.downlink_bits(1), bits);
        assert_eq!(fwd.uplink_bits(1), direct.uplink_bits(1));
        assert_eq!(fwd.uplink_bits_by_kind(), direct.uplink_bits_by_kind());
        assert_eq!(fwd.downlink_bits(2), 0);
        assert_eq!(fwd.uplink_bits(2), 0);
        assert_eq!(fwd.replica_bits(), 2 * FORWARD_OVERHEAD_BITS);
        assert_eq!(direct.replica_bits(), 0);
    }

    #[test]
    fn retry_backoff_tracks_the_io_deadline() {
        // The default policy reproduces the former hard-coded 100ms.
        assert_eq!(
            DeadlinePolicy::default().retry_backoff(),
            Duration::from_millis(100)
        );
        // A tightened deadline tightens the backoff proportionally…
        assert_eq!(
            DeadlinePolicy::uniform(Duration::from_millis(250)).retry_backoff(),
            Duration::from_micros(12_500)
        );
        // …clamped so pathological policies neither spin nor stall.
        assert_eq!(
            DeadlinePolicy::uniform(Duration::from_micros(1)).retry_backoff(),
            Duration::from_millis(1)
        );
        assert_eq!(
            DeadlinePolicy::uniform(Duration::from_secs(3600)).retry_backoff(),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn deadline_policy_defaults_and_uniform() {
        let d = DeadlinePolicy::default();
        assert_eq!(d.io, DeadlinePolicy::DEFAULT_IO);
        assert_eq!(d.command, DeadlinePolicy::DEFAULT_COMMAND);
        let u = DeadlinePolicy::uniform(Duration::from_millis(250));
        assert_eq!(u.io, u.command);
        assert!(Command::Describe.is_round());
        assert!(!Command::Deadline { ms: 1 }.is_round());
        assert!(!Command::Resume { round: 0 }.is_round());
    }
}
