//! Readiness-based reactor for the event backend.
//!
//! The event server ([`crate::event`]) multiplexes every source
//! connection in one thread. Before this module it discovered readable
//! bytes by sweeping all sockets and sleeping 200 µs between empty
//! sweeps — a hard-coded latency floor on every sub-millisecond round.
//! The reactor replaces the sweep with kernel readiness notification:
//! on Linux, `epoll` over the raw fds (via a minimal `extern "C"` shim —
//! `epoll_create1`/`epoll_ctl`/`epoll_wait` are plain libc symbols, and
//! the workspace is offline, so no mio/tokio); everywhere else, or when
//! `epoll_create1` fails, a fallback that reproduces the classic
//! sweep-and-park loop behind the same interface.
//!
//! Semantics are deliberately minimal and *level-triggered*:
//!
//! * [`Reactor::register`] watches an fd for read readiness under a
//!   caller-chosen token;
//! * [`Reactor::set_write_interest`] adds or removes write-readiness
//!   reporting for an already-registered fd (used only while a send is
//!   backpressured);
//! * [`Reactor::wait`] blocks until any registered fd is ready or the
//!   timeout elapses, appending [`Event`]s. The sleep fallback reports
//!   *every* registered fd as ready immediately and never blocks — the
//!   caller probes with non-blocking I/O exactly like the old sweep,
//!   and parks via [`park`] only when a whole cycle made no progress.
//! * [`Reactor::deregister`] stops watching an fd. A closed peer keeps
//!   a level-triggered fd permanently readable (EOF is "ready"), so the
//!   event server must deregister a connection the moment it observes
//!   the close — otherwise every later wait spins on the corpse.
//!
//! Timeouts are plain [`Duration`]s derived by the caller from
//! [`crate::protocol::DeadlinePolicy`], so straggler deadlines keep
//! their exact typed semantics (`SourceLost`, reissue, promote) with no
//! spin-sleep anywhere on the hot path.

use crate::tcp::transport_err;
use crate::Result;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Which reactor implementation to use (the `--reactor` CLI flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReactorChoice {
    /// Kernel readiness notification via `epoll`, falling back to the
    /// sleep-poll loop if `epoll_create1` is unavailable (non-Linux
    /// hosts, exhausted fd table, locked-down sandbox). The default on
    /// Linux.
    #[default]
    Epoll,
    /// The classic sweep-and-park loop: probe every connection, park
    /// 200 µs when nothing moved. Kept as an escape hatch and as the
    /// baseline the bench harness measures the reactor against.
    Sleep,
}

impl ReactorChoice {
    /// Parses a `--reactor` flag value.
    ///
    /// # Errors
    ///
    /// A usage message for anything other than `epoll` or `sleep`.
    pub fn parse(s: &str) -> std::result::Result<ReactorChoice, String> {
        match s {
            "epoll" => Ok(ReactorChoice::Epoll),
            "sleep" => Ok(ReactorChoice::Sleep),
            other => Err(format!("--reactor expects epoll|sleep, got '{other}'")),
        }
    }
}

/// What a [`Reactor`] actually resolved to at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReactorKind {
    /// Kernel readiness notification; [`Reactor::wait`] blocks.
    Epoll,
    /// Sweep fallback; [`Reactor::wait`] returns immediately and the
    /// caller parks between empty cycles.
    Sleep,
}

/// One readiness notification: the token the fd was registered under,
/// plus which directions are ready. Error/hangup conditions are folded
/// into `readable` — the caller's next read observes the actual error
/// or EOF, exactly as the old sweep did.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token passed to [`Reactor::register`].
    pub token: usize,
    /// The fd has bytes (or an EOF/error condition) to read.
    pub readable: bool,
    /// The fd can accept more outgoing bytes.
    pub writable: bool,
}

/// The single sleep used by every backoff/park site in this crate: the
/// sleep reactor's empty-cycle park, connect-retry backoff in the event
/// and replicated backends. Keeping it here means "where do we still
/// sleep?" has a one-line answer.
pub fn park(d: Duration) {
    std::thread::sleep(d);
}

/// A readiness reactor over raw fds. See the module docs for the
/// level-triggered contract.
#[derive(Debug)]
pub struct Reactor {
    imp: Impl,
}

#[derive(Debug)]
enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(sys::Epoll),
    Sleep(SleepReactor),
}

impl Reactor {
    /// Builds the reactor for `choice`, falling back to the sleep
    /// implementation when epoll cannot be constructed (never an
    /// error: the fallback is always available).
    pub fn new(choice: ReactorChoice) -> Reactor {
        #[cfg(target_os = "linux")]
        {
            Self::from_probe(choice, sys::Epoll::new())
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = choice;
            Reactor {
                imp: Impl::Sleep(SleepReactor::default()),
            }
        }
    }

    /// The fallback seam: `probe` is what `epoll_create1` produced.
    /// Tests force an unavailable epoll through here; production code
    /// reaches it via [`Reactor::new`].
    #[cfg(target_os = "linux")]
    fn from_probe(choice: ReactorChoice, probe: io::Result<sys::Epoll>) -> Reactor {
        let imp = match (choice, probe) {
            (ReactorChoice::Epoll, Ok(ep)) => Impl::Epoll(ep),
            // Graceful fallback: a host without epoll still runs, at
            // the sleep loop's latency floor.
            (ReactorChoice::Epoll, Err(_)) | (ReactorChoice::Sleep, _) => {
                Impl::Sleep(SleepReactor::default())
            }
        };
        Reactor { imp }
    }

    /// Constructs a reactor whose epoll probe failed, regardless of the
    /// host — the graceful-fallback path under test.
    #[cfg(target_os = "linux")]
    #[doc(hidden)]
    pub fn with_unavailable_epoll(choice: ReactorChoice) -> Reactor {
        Self::from_probe(
            choice,
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll_create1 unavailable (forced by test)",
            )),
        )
    }

    /// Which implementation this reactor resolved to.
    pub fn kind(&self) -> ReactorKind {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => ReactorKind::Epoll,
            Impl::Sleep(_) => ReactorKind::Sleep,
        }
    }

    /// Starts watching `fd` for read readiness under `token`.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Transport`] if the kernel rejects the fd.
    pub fn register(&mut self, fd: RawFd, token: usize) -> Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep
                .ctl(sys::EPOLL_CTL_ADD, fd, sys::EPOLLIN, token as u64)
                .map_err(|e| transport_err("reactor register", e)),
            Impl::Sleep(s) => {
                s.slots.retain(|slot| slot.fd != fd);
                s.slots.push(SleepSlot {
                    fd,
                    token,
                    write_interest: false,
                });
                Ok(())
            }
        }
    }

    /// Adds (`on = true`) or removes write-readiness reporting for an
    /// fd registered via [`Reactor::register`]. Read interest is always
    /// kept — a backpressured send must not suspend harvesting.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Transport`] if the fd is not registered.
    pub fn set_write_interest(&mut self, fd: RawFd, token: usize, on: bool) -> Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => {
                let events = if on {
                    sys::EPOLLIN | sys::EPOLLOUT
                } else {
                    sys::EPOLLIN
                };
                ep.ctl(sys::EPOLL_CTL_MOD, fd, events, token as u64)
                    .map_err(|e| transport_err("reactor set_write_interest", e))
            }
            Impl::Sleep(s) => {
                for slot in &mut s.slots {
                    if slot.fd == fd {
                        slot.token = token;
                        slot.write_interest = on;
                        return Ok(());
                    }
                }
                Err(crate::NetError::Transport {
                    context: "reactor set_write_interest",
                    detail: format!("fd {fd} is not registered"),
                })
            }
        }
    }

    /// Stops watching `fd`. Must be called the moment a connection is
    /// observed closed (see the module docs); harmless to call for an
    /// fd that was never registered.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Transport`] on an unexpected kernel error.
    pub fn deregister(&mut self, fd: RawFd) -> Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => match ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0) {
                Ok(()) => Ok(()),
                // ENOENT/EBADF: already gone (the fd may have been
                // closed, which removes it from the epoll set).
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::NotFound | io::ErrorKind::InvalidInput
                    ) || e.raw_os_error() == Some(9) =>
                {
                    Ok(())
                }
                Err(e) => Err(transport_err("reactor deregister", e)),
            },
            Impl::Sleep(s) => {
                s.slots.retain(|slot| slot.fd != fd);
                Ok(())
            }
        }
    }

    /// Waits until at least one registered fd is ready or `timeout`
    /// elapses, appending the ready set to `events` (which is cleared
    /// first). `None` means wait indefinitely. The sleep fallback
    /// reports every registered fd as ready and returns immediately —
    /// its caller probes and then [`park`]s on an empty cycle.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::Transport`] on a kernel-level wait failure
    /// (`EINTR` is retried internally, never surfaced).
    pub fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> Result<()> {
        events.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => {
                // epoll_wait's timeout is whole milliseconds; round up
                // so a 0.4 ms remaining deadline does not busy-loop at
                // timeout 0, and cap each wait so a multi-minute
                // command deadline still re-checks periodically.
                let timeout_ms: i32 = match timeout {
                    None => -1,
                    Some(d) => {
                        let ms = d.as_millis();
                        let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
                        ms.min(60_000) as i32
                    }
                };
                let mut buf = [sys::EpollEvent::empty(); 64];
                let n = loop {
                    match ep.wait(&mut buf, timeout_ms) {
                        Ok(n) => break n,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) => return Err(transport_err("reactor wait", e)),
                    }
                };
                for ev in &buf[..n] {
                    let (bits, data) = ev.parts();
                    events.push(Event {
                        token: data as usize,
                        // EOF, reset, and error conditions are all
                        // "readable": the next read reports them.
                        readable: bits
                            & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                            != 0,
                        writable: bits & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Impl::Sleep(s) => {
                for slot in &s.slots {
                    events.push(Event {
                        token: slot.token,
                        readable: true,
                        writable: slot.write_interest,
                    });
                }
                Ok(())
            }
        }
    }
}

/// The sweep fallback: a flat registry of watched fds. [`Reactor::wait`]
/// reports everything as ready; the caller's non-blocking probes do the
/// actual readiness discovery, as the pre-reactor poll loop did.
#[derive(Debug, Default)]
struct SleepReactor {
    slots: Vec<SleepSlot>,
}

#[derive(Debug)]
struct SleepSlot {
    fd: RawFd,
    token: usize,
    write_interest: bool,
}

/// The epoll syscall shim. `epoll_create1`/`epoll_ctl`/`epoll_wait` are
/// plain libc symbols every Linux process already links; declaring them
/// here is the crate's entire unsafe surface (the crate-level policy is
/// `deny(unsafe_code)` with this one scoped exception).
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;

    /// The kernel's `struct epoll_event`. On x86-64 the kernel ABI
    /// packs it (no padding between the 4-byte mask and 8-byte data);
    /// other architectures use natural alignment.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        pub fn empty() -> EpollEvent {
            EpollEvent { events: 0, data: 0 }
        }

        pub fn new(events: u32, data: u64) -> EpollEvent {
            EpollEvent { events, data }
        }

        /// Copies the (possibly unaligned) fields out.
        pub fn parts(&self) -> (u32, u64) {
            (self.events, self.data)
        }
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    /// An owned epoll instance; the fd closes on drop.
    #[derive(Debug)]
    pub struct Epoll {
        epfd: OwnedFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        pub fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
            use std::os::fd::AsRawFd;
            let mut ev = EpollEvent::new(events, data);
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            use std::os::fd::AsRawFd;
            let rc = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as i32,
                    timeout_ms,
                )
            };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(rc as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn default_choice_is_epoll() {
        assert_eq!(ReactorChoice::default(), ReactorChoice::Epoll);
        assert_eq!(ReactorChoice::parse("epoll").unwrap(), ReactorChoice::Epoll);
        assert_eq!(ReactorChoice::parse("sleep").unwrap(), ReactorChoice::Sleep);
        assert!(ReactorChoice::parse("uring")
            .unwrap_err()
            .contains("--reactor"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_reports_readable_only_when_bytes_arrive() {
        let mut r = Reactor::new(ReactorChoice::Epoll);
        assert_eq!(r.kind(), ReactorKind::Epoll, "test host must have epoll");
        let (mut tx, rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        r.register(rx.as_raw_fd(), 7).unwrap();

        let mut events = Vec::new();
        r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty(), "no bytes yet: {events:?}");

        tx.write_all(&[1, 2, 3]).unwrap();
        r.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_wakes_well_under_the_sleep_floor() {
        // The whole point of the reactor: a byte written from another
        // thread wakes the waiter in kernel time, not at the 200 µs
        // park cadence.
        let mut r = Reactor::new(ReactorChoice::Epoll);
        let (mut tx, rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        r.register(rx.as_raw_fd(), 0).unwrap();
        let mut events = Vec::new();
        let writer = std::thread::spawn(move || {
            tx.write_all(&[9]).unwrap();
            tx
        });
        let t0 = Instant::now();
        r.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(!events.is_empty());
        // Generous bound (CI jitter) — still far below a 200 µs park
        // cadence compounded over a multi-round protocol.
        assert!(t0.elapsed() < Duration::from_millis(100));
        writer.join().unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn deregistered_fd_stops_reporting() {
        let mut r = Reactor::new(ReactorChoice::Epoll);
        let (mut tx, rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        r.register(rx.as_raw_fd(), 3).unwrap();
        tx.write_all(&[1]).unwrap();
        let mut events = Vec::new();
        r.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(!events.is_empty());
        r.deregister(rx.as_raw_fd()).unwrap();
        r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty(), "deregistered fd still reported");
        // Deregistering twice is harmless.
        r.deregister(rx.as_raw_fd()).unwrap();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn write_interest_is_opt_in_and_removable() {
        let mut r = Reactor::new(ReactorChoice::Epoll);
        let (_tx, rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        r.register(rx.as_raw_fd(), 1).unwrap();
        let mut events = Vec::new();

        // Read interest only: an idle, writable socket reports nothing.
        r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty());

        r.set_write_interest(rx.as_raw_fd(), 1, true).unwrap();
        r.wait(Some(Duration::from_secs(5)), &mut events).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.writable));

        r.set_write_interest(rx.as_raw_fd(), 1, false).unwrap();
        r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert!(events.is_empty(), "write interest not removed");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn unavailable_epoll_falls_back_to_sleep() {
        let mut r = Reactor::with_unavailable_epoll(ReactorChoice::Epoll);
        assert_eq!(r.kind(), ReactorKind::Sleep);
        // The fallback still drives I/O: it reports every registered
        // fd and the caller's probe finds the bytes.
        let (mut tx, mut rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        r.register(rx.as_raw_fd(), 5).unwrap();
        tx.write_all(&[42]).unwrap();
        let mut events = Vec::new();
        r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 5);
        let mut byte = [0u8; 1];
        loop {
            match rx.read(&mut byte) {
                Ok(1) => break,
                Ok(_) => panic!("unexpected eof"),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => park(Duration::from_micros(50)),
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(byte[0], 42);
    }

    #[test]
    fn sleep_reactor_reports_all_registered_and_never_blocks() {
        let mut r = Reactor::new(ReactorChoice::Sleep);
        assert_eq!(r.kind(), ReactorKind::Sleep);
        let (_a1, b1) = loopback_pair();
        let (_a2, b2) = loopback_pair();
        r.register(b1.as_raw_fd(), 0).unwrap();
        r.register(b2.as_raw_fd(), 1).unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        r.wait(Some(Duration::from_secs(60)), &mut events).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(1),
            "sleep reactor must not block in wait"
        );
        let mut tokens: Vec<usize> = events.iter().map(|e| e.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 1]);
        r.deregister(b1.as_raw_fd()).unwrap();
        r.wait(None, &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 1);
    }
}
