//! Length-prefixed framing for socket transports.
//!
//! A frame is `[kind: u8][bit_len: u64 BE][payload: ⌈bit_len/8⌉ bytes]`.
//! The header carries the payload's *bit* length — not its byte length —
//! because the wire encoding ([`crate::wire`]) is bit-granular and the
//! paper's communication metric counts bits; a socket transport charges
//! exactly the `bit_len` it framed, so its accounting is bit-identical to
//! the in-process simulation by construction.
//!
//! Framing is written against `std::io::{Read, Write}` so the hardening
//! tests (partial reads, truncation, oversized headers) run against
//! in-memory streams; the TCP backend ([`crate::tcp`]) reuses it verbatim
//! over `TcpStream`s.

use crate::{NetError, Result};
use std::io::{IoSlice, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};

/// Frame kind: one encoded protocol [`crate::messages::Message`].
pub const FRAME_MSG: u8 = 1;
/// Frame kind: connection handshake (see [`crate::tcp`]).
pub const FRAME_HELLO: u8 = 2;
/// Frame kind: end-of-run digest exchange (see [`crate::tcp::RunDigest`]).
pub const FRAME_FIN: u8 = 3;
/// Frame kind: one encoded protocol [`crate::protocol::Command`]
/// (server → source, server-driven protocol).
pub const FRAME_CMD: u8 = 4;
/// Frame kind: one encoded protocol [`crate::protocol::Response`]
/// (source → server, server-driven protocol).
pub const FRAME_RESP: u8 = 5;

/// Upper bound on a frame's payload bit length (8 GiB of payload). A
/// header claiming more is rejected *before* any allocation — garbage or
/// a malicious peer cannot make the receiver reserve absurd buffers.
pub const MAX_FRAME_BITS: u64 = 1 << 36;

fn io_err(context: &'static str, e: std::io::Error) -> NetError {
    NetError::Transport {
        context,
        detail: e.to_string(),
    }
}

/// Frames whose header and payload left in a *single* write call (a
/// `writev` on a socket). Each one is a syscall the old two-`write_all`
/// path would have spent twice on; the bench harness records the delta
/// as its `syscalls_avoided` counter.
static SINGLE_WRITE_FRAMES: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of frames written header+payload in one write
/// call since startup (see [`write_frame`]).
pub fn single_write_frames() -> u64 {
    SINGLE_WRITE_FRAMES.load(Ordering::Relaxed)
}

/// Records a frame that left in a single write call through a path
/// other than [`write_frame`] (the event server writes pre-framed
/// buffers directly).
pub(crate) fn note_single_write_frame() {
    SINGLE_WRITE_FRAMES.fetch_add(1, Ordering::Relaxed);
}

fn check_lengths(payload: &[u8], bit_len: usize) -> Result<()> {
    if bit_len as u64 > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame write",
            detail: format!("payload of {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    if payload.len() != bit_len.div_ceil(8) {
        return Err(NetError::Transport {
            context: "frame write",
            detail: format!(
                "payload of {} bytes inconsistent with bit length {bit_len}",
                payload.len()
            ),
        });
    }
    Ok(())
}

fn encode_header(kind: u8, bit_len: usize) -> [u8; 9] {
    let mut header = [0u8; 9];
    header[0] = kind;
    header[1..].copy_from_slice(&(bit_len as u64).to_be_bytes());
    header
}

/// Writes one frame and flushes the stream.
///
/// Header and payload go out through `write_vectored`, so a socket sees
/// one `writev` per frame instead of the former two `write` syscalls
/// (short writes and `Interrupted` are retried until the frame is out).
/// Validation happens before any byte is written: a rejected frame
/// leaves the stream untouched.
///
/// # Errors
///
/// * [`NetError::Transport`] if `bit_len` exceeds [`MAX_FRAME_BITS`], if
///   `payload` is not exactly `⌈bit_len/8⌉` bytes, or on I/O failure.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8], bit_len: usize) -> Result<()> {
    check_lengths(payload, bit_len)?;
    let header = encode_header(kind, bit_len);
    let total = header.len() + payload.len();
    let mut written = 0;
    while written < total {
        let res = if written < header.len() {
            w.write_vectored(&[IoSlice::new(&header[written..]), IoSlice::new(payload)])
        } else {
            w.write(&payload[written - header.len()..])
        };
        match res {
            Ok(0) => {
                return Err(NetError::Transport {
                    context: "frame write",
                    detail: "stream closed mid-frame".to_string(),
                })
            }
            Ok(n) => {
                if written == 0 && n == total && !payload.is_empty() {
                    SINGLE_WRITE_FRAMES.fetch_add(1, Ordering::Relaxed);
                }
                written += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_err("frame write", e)),
        }
    }
    w.flush().map_err(|e| io_err("frame flush", e))?;
    Ok(())
}

/// A frame encoded once into one contiguous header+payload buffer:
/// build it for a broadcast, write the same bytes to every connection
/// with a single write call each, no per-recipient re-encode or
/// allocation (see [`crate::protocol::EncodedCommand`]).
#[derive(Debug, Clone)]
pub struct FrameBuf {
    bytes: Vec<u8>,
}

impl FrameBuf {
    /// Encodes `payload` under `kind`, validating exactly like
    /// [`write_frame`].
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if `bit_len` exceeds [`MAX_FRAME_BITS`]
    /// or `payload` is not exactly `⌈bit_len/8⌉` bytes.
    pub fn new(kind: u8, payload: &[u8], bit_len: usize) -> Result<FrameBuf> {
        check_lengths(payload, bit_len)?;
        let mut bytes = Vec::with_capacity(9 + payload.len());
        bytes.extend_from_slice(&encode_header(kind, bit_len));
        bytes.extend_from_slice(payload);
        Ok(FrameBuf { bytes })
    }

    /// The wire bytes: 9-byte header followed by the payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The payload bytes alone (what [`write_frame`] was given).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[9..]
    }

    /// The frame kind byte.
    pub fn kind(&self) -> u8 {
        self.bytes[0]
    }
}

/// Reassembles frames from a non-blocking byte stream through a
/// reusable ring buffer.
///
/// The event backend's old path accumulated bytes in a `Vec` and
/// `drain`ed each completed frame — an O(buffered) memmove per frame,
/// plus repeated reallocation as rounds alternated between fat and thin
/// payloads. The assembler reads *directly into* its ring storage
/// ([`spare`](FrameAssembler::spare) / [`commit`](FrameAssembler::commit)),
/// consumes parsed frames by advancing an index, and keeps its capacity
/// across rounds.
#[derive(Debug)]
pub struct FrameAssembler {
    buf: Box<[u8]>,
    head: usize,
    len: usize,
}

impl Default for FrameAssembler {
    fn default() -> FrameAssembler {
        FrameAssembler::new()
    }
}

impl FrameAssembler {
    const MIN_CAP: usize = 4096;

    /// An empty assembler with the minimum capacity.
    pub fn new() -> FrameAssembler {
        FrameAssembler {
            buf: vec![0u8; Self::MIN_CAP].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// Bytes currently buffered (parsed frames are consumed eagerly).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    fn grow(&mut self, needed: usize) {
        let new_cap = needed.next_power_of_two().max(Self::MIN_CAP);
        let mut new_buf = vec![0u8; new_cap].into_boxed_slice();
        self.copy_out(0, &mut new_buf[..self.len]);
        self.buf = new_buf;
        self.head = 0;
    }

    /// A contiguous writable slice at the tail, at least one byte long
    /// (growing the ring if it is full). Read into it, then
    /// [`commit`](FrameAssembler::commit) the byte count; a wrapped
    /// spare region is surfaced across successive calls, so callers
    /// just loop read→commit until the source runs dry.
    pub fn spare(&mut self) -> &mut [u8] {
        if self.len == self.buf.len() {
            self.grow(self.len + 1);
        }
        let tail = (self.head + self.len) & self.mask();
        if tail >= self.head {
            // Unwrapped data: spare runs from the tail to the end of
            // storage (a second region before `head` surfaces on the
            // next call, once this one fills).
            &mut self.buf[tail..]
        } else {
            // Wrapped data: the single spare region sits between the
            // tail and the head.
            &mut self.buf[tail..self.head]
        }
    }

    /// Marks `n` bytes of the last [`spare`](FrameAssembler::spare)
    /// slice as filled.
    pub fn commit(&mut self, n: usize) {
        debug_assert!(self.len + n <= self.buf.len());
        self.len += n;
    }

    fn copy_out(&self, offset: usize, dst: &mut [u8]) {
        debug_assert!(offset + dst.len() <= self.len);
        let cap = self.buf.len();
        let start = (self.head + offset) & (cap - 1);
        let first = dst.len().min(cap - start);
        dst[..first].copy_from_slice(&self.buf[start..start + first]);
        if first < dst.len() {
            let rest = dst.len() - first;
            dst[first..].copy_from_slice(&self.buf[..rest]);
        }
    }

    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len);
        self.head = (self.head + n) & self.mask();
        self.len -= n;
        if self.len == 0 {
            // Empty ring: restart at 0 so the next frame lands
            // contiguously.
            self.head = 0;
        }
    }

    /// Extracts the next complete frame, if one is fully buffered,
    /// returning `(kind, payload, bit_len)` like [`read_frame`].
    ///
    /// # Errors
    ///
    /// [`NetError::Transport`] if the buffered header claims more than
    /// [`MAX_FRAME_BITS`] — detected from the header alone, before the
    /// payload arrives or anything is allocated.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>, usize)>> {
        if self.len < 9 {
            return Ok(None);
        }
        let mut header = [0u8; 9];
        self.copy_out(0, &mut header);
        let kind = header[0];
        let bit_len = u64::from_be_bytes(header[1..].try_into().expect("8-byte slice"));
        if bit_len > MAX_FRAME_BITS {
            return Err(NetError::Transport {
                context: "frame header read",
                detail: format!(
                    "oversized frame: {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"
                ),
            });
        }
        let payload_len = (bit_len as usize).div_ceil(8);
        if self.len < 9 + payload_len {
            return Ok(None);
        }
        let mut payload = vec![0u8; payload_len];
        self.copy_out(9, &mut payload);
        self.consume(9 + payload_len);
        Ok(Some((kind, payload, bit_len as usize)))
    }
}

/// Reads one frame, returning `(kind, payload, bit_len)`.
///
/// Uses `read_exact`, so partial reads (a slow socket delivering one byte
/// at a time) are handled; a stream that ends mid-header or mid-payload
/// surfaces as a truncation error rather than a short buffer.
///
/// # Errors
///
/// [`NetError::Transport`] on truncation, I/O failure, or a header
/// claiming more than [`MAX_FRAME_BITS`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>, usize)> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)
        .map_err(|e| io_err("frame header read", e))?;
    let kind = header[0];
    let bit_len = u64::from_be_bytes(header[1..].try_into().expect("8-byte slice"));
    if bit_len > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame header read",
            detail: format!("oversized frame: {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    let mut payload = vec![0u8; (bit_len as usize).div_ceil(8)];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload read (truncated frame?)", e))?;
    Ok((kind, payload, bit_len as usize))
}

/// Reads one frame like [`read_frame`], but distinguishes a *clean* end
/// of stream (zero bytes available at a frame boundary → `Ok(None)`)
/// from a *torn* frame (stream ends mid-header or mid-payload → typed
/// [`NetError::Transport`]).
///
/// This is what journal readers use: a journal that ends exactly between
/// records is complete, one that ends inside a record was truncated by a
/// crash mid-append.
///
/// # Errors
///
/// [`NetError::Transport`] on a torn frame, I/O failure, or a header
/// claiming more than [`MAX_FRAME_BITS`].
pub fn try_read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>, usize)>> {
    let mut header = [0u8; 9];
    let mut filled = 0;
    while filled < header.len() {
        let n = r
            .read(&mut header[filled..])
            .map_err(|e| io_err("frame header read", e))?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean boundary
            }
            return Err(NetError::Transport {
                context: "frame header read",
                detail: format!("stream ended {filled} bytes into a 9-byte frame header"),
            });
        }
        filled += n;
    }
    let kind = header[0];
    let bit_len = u64::from_be_bytes(header[1..].try_into().expect("8-byte slice"));
    if bit_len > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame header read",
            detail: format!("oversized frame: {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    let mut payload = vec![0u8; (bit_len as usize).div_ceil(8)];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload read (truncated frame?)", e))?;
    Ok(Some((kind, payload, bit_len as usize)))
}

/// Reads one frame and checks its kind.
///
/// # Errors
///
/// See [`read_frame`]; additionally [`NetError::Transport`] if the frame
/// kind differs from `expected`.
pub fn expect_frame<R: Read>(r: &mut R, expected: u8) -> Result<(Vec<u8>, usize)> {
    let (kind, payload, bits) = read_frame(r)?;
    if kind != expected {
        return Err(NetError::Transport {
            context: "frame kind check",
            detail: format!("expected frame kind {expected}, got {kind}"),
        });
    }
    Ok((payload, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that delivers at most one byte per `read` call — the
    /// worst-case partial-read behavior a socket can exhibit.
    struct Trickle<R>(R);

    impl<R: Read> Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[0xAB, 0xC0], 11).unwrap();
        let (kind, payload, bits) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(kind, FRAME_MSG);
        assert_eq!(payload, vec![0xAB, 0xC0]);
        assert_eq!(bits, 11);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_FIN, &[], 0).unwrap();
        let (kind, payload, bits) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!((kind, bits), (FRAME_FIN, 0));
        assert!(payload.is_empty());
    }

    #[test]
    fn partial_reads_are_reassembled() {
        let mut buf = Vec::new();
        let payload: Vec<u8> = (0..=255).collect();
        write_frame(&mut buf, FRAME_MSG, &payload, 256 * 8).unwrap();
        let mut r = Trickle(Cursor::new(&buf));
        let (kind, got, bits) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FRAME_MSG);
        assert_eq!(got, payload);
        assert_eq!(bits, 256 * 8);
    }

    #[test]
    fn truncated_header_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3], 24).unwrap();
        for cut in [0, 1, 8] {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, NetError::Transport { .. }), "cut={cut}");
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3, 4], 32).unwrap();
        let err = read_frame(&mut Cursor::new(&buf[..buf.len() - 2])).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
        // Truncation through a trickling reader is detected too.
        let err = read_frame(&mut Trickle(Cursor::new(&buf[..buf.len() - 1]))).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
    }

    #[test]
    fn oversized_header_rejected_without_allocating() {
        let mut buf = vec![FRAME_MSG];
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        match err {
            NetError::Transport { detail, .. } => assert!(detail.contains("oversized")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_rejects_inconsistent_lengths() {
        let mut buf = Vec::new();
        assert!(write_frame(&mut buf, FRAME_MSG, &[1, 2], 24).is_err());
        assert!(write_frame(&mut buf, FRAME_MSG, &[1], (MAX_FRAME_BITS + 1) as usize).is_err());
        assert!(buf.is_empty(), "nothing written on rejection");
    }

    #[test]
    fn try_read_frame_distinguishes_clean_eof_from_torn_frames() {
        // Clean boundary: zero frames, then one frame, then Ok(None).
        assert!(try_read_frame(&mut Cursor::new(&[] as &[u8]))
            .unwrap()
            .is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3], 24).unwrap();
        let mut cur = Cursor::new(&buf);
        let (kind, payload, bits) = try_read_frame(&mut cur).unwrap().unwrap();
        assert_eq!((kind, payload, bits), (FRAME_MSG, vec![1, 2, 3], 24));
        assert!(try_read_frame(&mut cur).unwrap().is_none());

        // Torn header and torn payload are typed errors, not Ok(None).
        for cut in [1, 8, 10] {
            let err = try_read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, NetError::Transport { .. }), "cut={cut}");
        }
        // Torn frames delivered a byte at a time are detected too.
        let err = try_read_frame(&mut Trickle(Cursor::new(&buf[..5]))).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
    }

    #[test]
    fn frame_buf_matches_write_frame_bytes() {
        let payload = [0xAB, 0xC0];
        let mut streamed = Vec::new();
        write_frame(&mut streamed, FRAME_MSG, &payload, 11).unwrap();
        let fb = FrameBuf::new(FRAME_MSG, &payload, 11).unwrap();
        assert_eq!(fb.bytes(), &streamed[..]);
        assert_eq!(fb.payload(), &payload);
        assert_eq!(fb.kind(), FRAME_MSG);
        // Same validation as the streaming writer.
        assert!(FrameBuf::new(FRAME_MSG, &payload, 24).is_err());
        assert!(FrameBuf::new(FRAME_MSG, &[1], (MAX_FRAME_BITS + 1) as usize).is_err());
    }

    #[test]
    fn single_write_counter_advances_on_vectored_frames() {
        let before = single_write_frames();
        let mut buf = Vec::new();
        // Vec's write_vectored appends every slice in one call, so this
        // counts as a single-write frame, exactly like a socket writev.
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3], 24).unwrap();
        assert!(single_write_frames() > before);
    }

    #[test]
    fn assembler_reassembles_one_byte_at_a_time() {
        let mut wire = Vec::new();
        let payload: Vec<u8> = (0..=255).collect();
        write_frame(&mut wire, FRAME_MSG, &payload, 256 * 8).unwrap();
        let mut asm = FrameAssembler::new();
        for (i, &byte) in wire.iter().enumerate() {
            assert!(
                asm.next_frame().unwrap().is_none(),
                "frame complete {i} bytes early"
            );
            asm.spare()[0] = byte;
            asm.commit(1);
        }
        let (kind, got, bits) = asm.next_frame().unwrap().expect("complete");
        assert_eq!((kind, bits), (FRAME_MSG, 256 * 8));
        assert_eq!(got, payload);
        assert!(asm.is_empty());
    }

    #[test]
    fn assembler_wraps_and_grows_across_many_frames() {
        // Frames sized to never divide the ring capacity force the
        // head through every wrap offset; a jumbo frame forces growth.
        let mut asm = FrameAssembler::new();
        let push = |asm: &mut FrameAssembler, bytes: &[u8]| {
            let mut off = 0;
            while off < bytes.len() {
                let spare = asm.spare();
                let n = spare.len().min(bytes.len() - off);
                spare[..n].copy_from_slice(&bytes[off..off + n]);
                asm.commit(n);
                off += n;
            }
        };
        for round in 0..200u32 {
            let payload: Vec<u8> = (0..37 + (round % 13) as usize)
                .map(|i| (i as u32 ^ round) as u8)
                .collect();
            let mut wire = Vec::new();
            write_frame(&mut wire, FRAME_MSG, &payload, payload.len() * 8).unwrap();
            push(&mut asm, &wire);
            let (kind, got, bits) = asm.next_frame().unwrap().expect("complete");
            assert_eq!(
                (kind, bits),
                (FRAME_MSG, payload.len() * 8),
                "round {round}"
            );
            assert_eq!(got, payload, "round {round}");
        }
        let jumbo: Vec<u8> = (0..64 * 1024).map(|i| i as u8).collect();
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_MSG, &jumbo, jumbo.len() * 8).unwrap();
        push(&mut asm, &wire);
        let (_, got, _) = asm.next_frame().unwrap().expect("complete");
        assert_eq!(got, jumbo);
        assert!(asm.next_frame().unwrap().is_none());
    }

    #[test]
    fn assembler_rejects_oversized_header_before_payload() {
        let mut asm = FrameAssembler::new();
        let mut header = vec![FRAME_MSG];
        header.extend_from_slice(&u64::MAX.to_be_bytes());
        asm.spare()[..9].copy_from_slice(&header);
        asm.commit(9);
        let err = asm.next_frame().unwrap_err();
        match err {
            NetError::Transport { detail, .. } => assert!(detail.contains("oversized")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expect_frame_checks_kind() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_HELLO, &[7], 8).unwrap();
        assert!(expect_frame(&mut Cursor::new(&buf), FRAME_MSG).is_err());
        let (payload, bits) = expect_frame(&mut Cursor::new(&buf), FRAME_HELLO).unwrap();
        assert_eq!((payload, bits), (vec![7], 8));
    }
}
