//! Length-prefixed framing for socket transports.
//!
//! A frame is `[kind: u8][bit_len: u64 BE][payload: ⌈bit_len/8⌉ bytes]`.
//! The header carries the payload's *bit* length — not its byte length —
//! because the wire encoding ([`crate::wire`]) is bit-granular and the
//! paper's communication metric counts bits; a socket transport charges
//! exactly the `bit_len` it framed, so its accounting is bit-identical to
//! the in-process simulation by construction.
//!
//! Framing is written against `std::io::{Read, Write}` so the hardening
//! tests (partial reads, truncation, oversized headers) run against
//! in-memory streams; the TCP backend ([`crate::tcp`]) reuses it verbatim
//! over `TcpStream`s.

use crate::{NetError, Result};
use std::io::{Read, Write};

/// Frame kind: one encoded protocol [`crate::messages::Message`].
pub const FRAME_MSG: u8 = 1;
/// Frame kind: connection handshake (see [`crate::tcp`]).
pub const FRAME_HELLO: u8 = 2;
/// Frame kind: end-of-run digest exchange (see [`crate::tcp::RunDigest`]).
pub const FRAME_FIN: u8 = 3;
/// Frame kind: one encoded protocol [`crate::protocol::Command`]
/// (server → source, server-driven protocol).
pub const FRAME_CMD: u8 = 4;
/// Frame kind: one encoded protocol [`crate::protocol::Response`]
/// (source → server, server-driven protocol).
pub const FRAME_RESP: u8 = 5;

/// Upper bound on a frame's payload bit length (8 GiB of payload). A
/// header claiming more is rejected *before* any allocation — garbage or
/// a malicious peer cannot make the receiver reserve absurd buffers.
pub const MAX_FRAME_BITS: u64 = 1 << 36;

fn io_err(context: &'static str, e: std::io::Error) -> NetError {
    NetError::Transport {
        context,
        detail: e.to_string(),
    }
}

/// Writes one frame and flushes the stream.
///
/// # Errors
///
/// * [`NetError::Transport`] if `bit_len` exceeds [`MAX_FRAME_BITS`], if
///   `payload` is not exactly `⌈bit_len/8⌉` bytes, or on I/O failure.
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8], bit_len: usize) -> Result<()> {
    if bit_len as u64 > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame write",
            detail: format!("payload of {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    if payload.len() != bit_len.div_ceil(8) {
        return Err(NetError::Transport {
            context: "frame write",
            detail: format!(
                "payload of {} bytes inconsistent with bit length {bit_len}",
                payload.len()
            ),
        });
    }
    let mut header = [0u8; 9];
    header[0] = kind;
    header[1..].copy_from_slice(&(bit_len as u64).to_be_bytes());
    w.write_all(&header)
        .map_err(|e| io_err("frame header write", e))?;
    w.write_all(payload)
        .map_err(|e| io_err("frame payload write", e))?;
    w.flush().map_err(|e| io_err("frame flush", e))?;
    Ok(())
}

/// Reads one frame, returning `(kind, payload, bit_len)`.
///
/// Uses `read_exact`, so partial reads (a slow socket delivering one byte
/// at a time) are handled; a stream that ends mid-header or mid-payload
/// surfaces as a truncation error rather than a short buffer.
///
/// # Errors
///
/// [`NetError::Transport`] on truncation, I/O failure, or a header
/// claiming more than [`MAX_FRAME_BITS`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<(u8, Vec<u8>, usize)> {
    let mut header = [0u8; 9];
    r.read_exact(&mut header)
        .map_err(|e| io_err("frame header read", e))?;
    let kind = header[0];
    let bit_len = u64::from_be_bytes(header[1..].try_into().expect("8-byte slice"));
    if bit_len > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame header read",
            detail: format!("oversized frame: {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    let mut payload = vec![0u8; (bit_len as usize).div_ceil(8)];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload read (truncated frame?)", e))?;
    Ok((kind, payload, bit_len as usize))
}

/// Reads one frame like [`read_frame`], but distinguishes a *clean* end
/// of stream (zero bytes available at a frame boundary → `Ok(None)`)
/// from a *torn* frame (stream ends mid-header or mid-payload → typed
/// [`NetError::Transport`]).
///
/// This is what journal readers use: a journal that ends exactly between
/// records is complete, one that ends inside a record was truncated by a
/// crash mid-append.
///
/// # Errors
///
/// [`NetError::Transport`] on a torn frame, I/O failure, or a header
/// claiming more than [`MAX_FRAME_BITS`].
pub fn try_read_frame<R: Read>(r: &mut R) -> Result<Option<(u8, Vec<u8>, usize)>> {
    let mut header = [0u8; 9];
    let mut filled = 0;
    while filled < header.len() {
        let n = r
            .read(&mut header[filled..])
            .map_err(|e| io_err("frame header read", e))?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean boundary
            }
            return Err(NetError::Transport {
                context: "frame header read",
                detail: format!("stream ended {filled} bytes into a 9-byte frame header"),
            });
        }
        filled += n;
    }
    let kind = header[0];
    let bit_len = u64::from_be_bytes(header[1..].try_into().expect("8-byte slice"));
    if bit_len > MAX_FRAME_BITS {
        return Err(NetError::Transport {
            context: "frame header read",
            detail: format!("oversized frame: {bit_len} bits exceeds the {MAX_FRAME_BITS}-bit cap"),
        });
    }
    let mut payload = vec![0u8; (bit_len as usize).div_ceil(8)];
    r.read_exact(&mut payload)
        .map_err(|e| io_err("frame payload read (truncated frame?)", e))?;
    Ok(Some((kind, payload, bit_len as usize)))
}

/// Reads one frame and checks its kind.
///
/// # Errors
///
/// See [`read_frame`]; additionally [`NetError::Transport`] if the frame
/// kind differs from `expected`.
pub fn expect_frame<R: Read>(r: &mut R, expected: u8) -> Result<(Vec<u8>, usize)> {
    let (kind, payload, bits) = read_frame(r)?;
    if kind != expected {
        return Err(NetError::Transport {
            context: "frame kind check",
            detail: format!("expected frame kind {expected}, got {kind}"),
        });
    }
    Ok((payload, bits))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that delivers at most one byte per `read` call — the
    /// worst-case partial-read behavior a socket can exhibit.
    struct Trickle<R>(R);

    impl<R: Read> Read for Trickle<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = buf.len().min(1);
            self.0.read(&mut buf[..n])
        }
    }

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[0xAB, 0xC0], 11).unwrap();
        let (kind, payload, bits) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(kind, FRAME_MSG);
        assert_eq!(payload, vec![0xAB, 0xC0]);
        assert_eq!(bits, 11);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_FIN, &[], 0).unwrap();
        let (kind, payload, bits) = read_frame(&mut Cursor::new(&buf)).unwrap();
        assert_eq!((kind, bits), (FRAME_FIN, 0));
        assert!(payload.is_empty());
    }

    #[test]
    fn partial_reads_are_reassembled() {
        let mut buf = Vec::new();
        let payload: Vec<u8> = (0..=255).collect();
        write_frame(&mut buf, FRAME_MSG, &payload, 256 * 8).unwrap();
        let mut r = Trickle(Cursor::new(&buf));
        let (kind, got, bits) = read_frame(&mut r).unwrap();
        assert_eq!(kind, FRAME_MSG);
        assert_eq!(got, payload);
        assert_eq!(bits, 256 * 8);
    }

    #[test]
    fn truncated_header_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3], 24).unwrap();
        for cut in [0, 1, 8] {
            let err = read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, NetError::Transport { .. }), "cut={cut}");
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3, 4], 32).unwrap();
        let err = read_frame(&mut Cursor::new(&buf[..buf.len() - 2])).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
        // Truncation through a trickling reader is detected too.
        let err = read_frame(&mut Trickle(Cursor::new(&buf[..buf.len() - 1]))).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
    }

    #[test]
    fn oversized_header_rejected_without_allocating() {
        let mut buf = vec![FRAME_MSG];
        buf.extend_from_slice(&u64::MAX.to_be_bytes());
        let err = read_frame(&mut Cursor::new(&buf)).unwrap_err();
        match err {
            NetError::Transport { detail, .. } => assert!(detail.contains("oversized")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_rejects_inconsistent_lengths() {
        let mut buf = Vec::new();
        assert!(write_frame(&mut buf, FRAME_MSG, &[1, 2], 24).is_err());
        assert!(write_frame(&mut buf, FRAME_MSG, &[1], (MAX_FRAME_BITS + 1) as usize).is_err());
        assert!(buf.is_empty(), "nothing written on rejection");
    }

    #[test]
    fn try_read_frame_distinguishes_clean_eof_from_torn_frames() {
        // Clean boundary: zero frames, then one frame, then Ok(None).
        assert!(try_read_frame(&mut Cursor::new(&[] as &[u8]))
            .unwrap()
            .is_none());
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_MSG, &[1, 2, 3], 24).unwrap();
        let mut cur = Cursor::new(&buf);
        let (kind, payload, bits) = try_read_frame(&mut cur).unwrap().unwrap();
        assert_eq!((kind, payload, bits), (FRAME_MSG, vec![1, 2, 3], 24));
        assert!(try_read_frame(&mut cur).unwrap().is_none());

        // Torn header and torn payload are typed errors, not Ok(None).
        for cut in [1, 8, 10] {
            let err = try_read_frame(&mut Cursor::new(&buf[..cut])).unwrap_err();
            assert!(matches!(err, NetError::Transport { .. }), "cut={cut}");
        }
        // Torn frames delivered a byte at a time are detected too.
        let err = try_read_frame(&mut Trickle(Cursor::new(&buf[..5]))).unwrap_err();
        assert!(matches!(err, NetError::Transport { .. }));
    }

    #[test]
    fn expect_frame_checks_kind() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FRAME_HELLO, &[7], 8).unwrap();
        assert!(expect_frame(&mut Cursor::new(&buf), FRAME_MSG).is_err());
        let (payload, bits) = expect_frame(&mut Cursor::new(&buf), FRAME_HELLO).unwrap();
        assert_eq!((payload, bits), (vec![7], 8));
    }
}
