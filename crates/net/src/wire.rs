//! Wire encoding of scalars, vectors, and matrices.
//!
//! Scalars travel either at full IEEE-754 width (64 bits) or quantized to
//! `1 + 11 + s` bits (sign, exponent, top-`s` stored significand bits —
//! paper §6.1). The quantized decoder zero-fills the dropped significand
//! bits, so `decode(encode(Γ(x))) == Γ(x)` exactly for the rounding
//! quantizer Γ with the same `s`.

use crate::bitstream::{BitReader, BitWriter};
use crate::{NetError, Result};
use ekm_linalg::Matrix;
use ekm_quant::rounding::{EXPONENT_BITS, STORED_SIGNIFICAND_BITS};

/// Compute (kernel) precision, re-exported next to the wire
/// [`Precision`] so run configurations can carry both descriptors:
/// `Precision` governs how floats travel, `Compute` governs the scalar
/// type the distance kernels run in at either end.
pub use ekm_linalg::distance::Compute;

/// Precision at which float payloads are encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Full 64-bit IEEE-754 doubles.
    Full,
    /// 32-bit IEEE-754 singles (1 + 8 + 23): the scalar is rounded to the
    /// nearest `f32` and its bits travel verbatim — a free 2× on every
    /// full-precision payload whenever single precision suffices.
    F32,
    /// `1 + 11 + s` bits per scalar (the paper's quantized format).
    Quantized {
        /// Stored significand bits `s ∈ 1..=52`.
        s: u32,
    },
}

impl Precision {
    /// Bits one scalar occupies at this precision.
    pub fn bits_per_scalar(&self) -> u32 {
        match self {
            Precision::Full => 64,
            Precision::F32 => 32,
            Precision::Quantized { s } => 1 + EXPONENT_BITS + s,
        }
    }

    /// Validates the precision parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPrecision`] if `s ∉ 1..=52`.
    pub fn validate(&self) -> Result<()> {
        match *self {
            Precision::Full | Precision::F32 => Ok(()),
            Precision::Quantized { s } => {
                if s == 0 || s > STORED_SIGNIFICAND_BITS {
                    Err(NetError::InvalidPrecision { s })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Encodes the precision itself (1 + 6 bits): the leading bit selects
    /// quantized, and for unquantized payloads the width field picks the
    /// IEEE-754 size (0 → 64-bit, 32 → 32-bit).
    pub(crate) fn encode(&self, w: &mut BitWriter) {
        match *self {
            Precision::Full => {
                w.write_bits(0, 1);
                w.write_bits(0, 6);
            }
            Precision::F32 => {
                w.write_bits(0, 1);
                w.write_bits(32, 6);
            }
            Precision::Quantized { s } => {
                w.write_bits(1, 1);
                w.write_bits(s as u64, 6);
            }
        }
    }

    /// Decodes a precision descriptor.
    pub(crate) fn decode(r: &mut BitReader<'_>) -> Result<Precision> {
        let quantized = r.read_bits(1)? == 1;
        let s = r.read_bits(6)? as u32;
        let p = match (quantized, s) {
            (false, 0) => Precision::Full,
            (false, 32) => Precision::F32,
            (false, _) => {
                return Err(NetError::MalformedMessage {
                    reason: "unknown unquantized precision width",
                })
            }
            (true, s) => Precision::Quantized { s },
        };
        p.validate()?;
        Ok(p)
    }
}

/// Encodes one `f64` at the given precision.
pub fn encode_f64(w: &mut BitWriter, x: f64, precision: Precision) {
    match precision {
        Precision::Full => w.write_bits(x.to_bits(), 64),
        Precision::F32 => w.write_bits((x as f32).to_bits() as u64, 32),
        Precision::Quantized { s } => {
            let bits = x.to_bits();
            let sign = bits >> 63;
            let exponent = (bits >> STORED_SIGNIFICAND_BITS) & ((1u64 << EXPONENT_BITS) - 1);
            let mantissa_top =
                (bits & ((1u64 << STORED_SIGNIFICAND_BITS) - 1)) >> (STORED_SIGNIFICAND_BITS - s);
            w.write_bits(sign, 1);
            w.write_bits(exponent, EXPONENT_BITS);
            w.write_bits(mantissa_top, s);
        }
    }
}

/// Decodes one `f64` encoded at the given precision.
///
/// # Errors
///
/// Returns [`NetError::UnexpectedEnd`] on truncated payloads.
pub fn decode_f64(r: &mut BitReader<'_>, precision: Precision) -> Result<f64> {
    match precision {
        Precision::Full => Ok(f64::from_bits(r.read_bits(64)?)),
        Precision::F32 => Ok(f32::from_bits(r.read_bits(32)? as u32) as f64),
        Precision::Quantized { s } => {
            let sign = r.read_bits(1)?;
            let exponent = r.read_bits(EXPONENT_BITS)?;
            let mantissa_top = r.read_bits(s)?;
            let bits = (sign << 63)
                | (exponent << STORED_SIGNIFICAND_BITS)
                | (mantissa_top << (STORED_SIGNIFICAND_BITS - s));
            Ok(f64::from_bits(bits))
        }
    }
}

/// Encodes a `u64` length/count field (fixed 32 bits — ample for our
/// payloads, negligible next to the data).
pub fn encode_len(w: &mut BitWriter, len: usize) {
    debug_assert!(len <= u32::MAX as usize, "length field overflow");
    w.write_bits(len as u64, 32);
}

/// Decodes a length/count field.
///
/// # Errors
///
/// Returns [`NetError::UnexpectedEnd`] on truncated payloads.
pub fn decode_len(r: &mut BitReader<'_>) -> Result<usize> {
    Ok(r.read_bits(32)? as usize)
}

/// Encodes a slice of `f64` (length-prefixed).
pub fn encode_f64_slice(w: &mut BitWriter, xs: &[f64], precision: Precision) {
    encode_len(w, xs.len());
    for &x in xs {
        encode_f64(w, x, precision);
    }
}

/// Decodes a slice of `f64`.
///
/// # Errors
///
/// Returns [`NetError::UnexpectedEnd`] on truncated payloads.
pub fn decode_f64_slice(r: &mut BitReader<'_>, precision: Precision) -> Result<Vec<f64>> {
    let len = decode_len(r)?;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    for _ in 0..len {
        out.push(decode_f64(r, precision)?);
    }
    Ok(out)
}

/// Encodes a matrix (shape-prefixed, row-major entries).
pub fn encode_matrix(w: &mut BitWriter, m: &Matrix, precision: Precision) {
    encode_len(w, m.rows());
    encode_len(w, m.cols());
    for &x in m.as_slice() {
        encode_f64(w, x, precision);
    }
}

/// Decodes a matrix.
///
/// # Errors
///
/// * [`NetError::UnexpectedEnd`] on truncated payloads.
/// * [`NetError::MalformedMessage`] on absurd shapes.
pub fn decode_matrix(r: &mut BitReader<'_>, precision: Precision) -> Result<Matrix> {
    let rows = decode_len(r)?;
    let cols = decode_len(r)?;
    let total = rows.checked_mul(cols).ok_or(NetError::MalformedMessage {
        reason: "matrix shape overflow",
    })?;
    // A decoded entry takes ≥ 13 bits; anything claiming more entries than
    // the stream could hold is malformed.
    if (total as u64) * 13 > r.remaining() as u64 + 64 {
        return Err(NetError::MalformedMessage {
            reason: "matrix larger than payload",
        });
    }
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(decode_f64(r, precision)?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_quant::RoundingQuantizer;

    #[test]
    fn compute_descriptor_parses_both_ways() {
        // The re-exported compute descriptor must roundtrip through its
        // textual form, which is what run configs put on the wire.
        for c in [Compute::F64, Compute::F32] {
            assert_eq!(Compute::parse(c.as_str()), Some(c));
            assert_eq!(format!("{c}"), c.as_str());
        }
        assert_eq!(Compute::parse("f16"), None);
        assert_eq!(Compute::default(), Compute::F64);
    }

    fn roundtrip_f64(x: f64, p: Precision) -> f64 {
        let mut w = BitWriter::new();
        encode_f64(&mut w, x, p);
        let (buf, bits) = w.finish();
        assert_eq!(bits as u32, p.bits_per_scalar());
        let mut r = BitReader::new(&buf, bits);
        decode_f64(&mut r, p).unwrap()
    }

    #[test]
    fn full_precision_exact() {
        for &x in &[0.0, -0.0, 1.5, -3.25e300, f64::MIN_POSITIVE, f64::MAX] {
            let y = roundtrip_f64(x, Precision::Full);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(roundtrip_f64(f64::NAN, Precision::Full).is_nan());
    }

    #[test]
    fn quantized_roundtrip_exact_after_quantizer() {
        use rand::Rng;
        let mut rng = ekm_linalg::random::rng_from_seed(1);
        for s in [1u32, 4, 11, 23, 52] {
            let q = RoundingQuantizer::new(s).unwrap();
            let p = Precision::Quantized { s };
            for _ in 0..500 {
                let x: f64 = (rng.gen::<f64>() - 0.5) * 1e6;
                let qx = q.quantize(x);
                let y = roundtrip_f64(qx, p);
                assert_eq!(qx.to_bits(), y.to_bits(), "s={s} x={x}");
            }
        }
    }

    #[test]
    fn quantized_encoding_truncates_unquantized_values() {
        // Encoding an unquantized value at s bits truncates (not rounds) —
        // callers must quantize first; the error is still ≤ 2^{1-s}|x|.
        let x = std::f64::consts::PI;
        let y = roundtrip_f64(x, Precision::Quantized { s: 8 });
        assert!((x - y).abs() <= x * 2f64.powi(-7));
    }

    #[test]
    fn bits_per_scalar() {
        assert_eq!(Precision::Full.bits_per_scalar(), 64);
        assert_eq!(Precision::F32.bits_per_scalar(), 32);
        assert_eq!(Precision::Quantized { s: 8 }.bits_per_scalar(), 20);
        assert_eq!(Precision::Quantized { s: 52 }.bits_per_scalar(), 64);
    }

    #[test]
    fn f32_roundtrip_is_the_nearest_single() {
        // Exact for f32-representable values (sign, zero, subnormal, inf).
        for &x in &[
            0.0,
            -0.0,
            1.5,
            -3.25,
            f32::MIN_POSITIVE as f64,
            2f64.powi(90),
        ] {
            let y = roundtrip_f64(x, Precision::F32);
            assert_eq!(y.to_bits(), x.to_bits(), "{x}");
        }
        assert!(roundtrip_f64(f64::NAN, Precision::F32).is_nan());
        // Values outside f32 range saturate to ±inf, like the cast.
        assert_eq!(roundtrip_f64(1e300, Precision::F32), f64::INFINITY);
        // Otherwise the decode is exactly (x as f32) as f64 — idempotent.
        let x = std::f64::consts::PI;
        let y = roundtrip_f64(x, Precision::F32);
        assert_eq!(y, (x as f32) as f64);
        assert_eq!(roundtrip_f64(y, Precision::F32), y);
    }

    #[test]
    fn precision_descriptor_roundtrip() {
        for p in [
            Precision::Full,
            Precision::F32,
            Precision::Quantized { s: 1 },
            Precision::Quantized { s: 52 },
        ] {
            let mut w = BitWriter::new();
            p.encode(&mut w);
            let (buf, bits) = w.finish();
            let mut r = BitReader::new(&buf, bits);
            assert_eq!(Precision::decode(&mut r).unwrap(), p);
        }
    }

    #[test]
    fn precision_validation() {
        assert!(Precision::Full.validate().is_ok());
        assert!(Precision::F32.validate().is_ok());
        assert!(Precision::Quantized { s: 52 }.validate().is_ok());
        assert!(Precision::Quantized { s: 0 }.validate().is_err());
        assert!(Precision::Quantized { s: 53 }.validate().is_err());
    }

    #[test]
    fn unknown_unquantized_width_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(0, 1);
        w.write_bits(7, 6); // neither 0 (Full) nor 32 (F32)
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert!(matches!(
            Precision::decode(&mut r),
            Err(NetError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn slice_roundtrip() {
        let xs = vec![1.0, -2.5, 0.0, 1e-10];
        let mut w = BitWriter::new();
        encode_f64_slice(&mut w, &xs, Precision::Full);
        let (buf, bits) = w.finish();
        assert_eq!(bits, 32 + 4 * 64);
        let mut r = BitReader::new(&buf, bits);
        assert_eq!(decode_f64_slice(&mut r, Precision::Full).unwrap(), xs);
    }

    #[test]
    fn matrix_roundtrip_full_and_quantized() {
        let m = Matrix::from_fn(7, 3, |i, j| (i as f64 - 3.0) * 1.37 + j as f64 * 0.11);
        // Full precision: exact.
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &m, Precision::Full);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert!(decode_matrix(&mut r, Precision::Full)
            .unwrap()
            .approx_eq(&m, 0.0));
        // Quantized: exact after quantization.
        let q = RoundingQuantizer::new(10).unwrap();
        let qm = q.quantize_matrix(&m);
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &qm, Precision::Quantized { s: 10 });
        let (buf, bits) = w.finish();
        assert_eq!(bits, 64 + 21 * 22);
        let mut r = BitReader::new(&buf, bits);
        assert!(decode_matrix(&mut r, Precision::Quantized { s: 10 })
            .unwrap()
            .approx_eq(&qm, 0.0));
    }

    #[test]
    fn truncated_payload_errors() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &m, Precision::Full);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits - 10);
        assert!(decode_matrix(&mut r, Precision::Full).is_err());
    }

    #[test]
    fn oversized_shape_rejected() {
        let mut w = BitWriter::new();
        encode_len(&mut w, 1_000_000);
        encode_len(&mut w, 1_000_000);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        assert!(matches!(
            decode_matrix(&mut r, Precision::Full),
            Err(NetError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn empty_matrix_roundtrip() {
        let m = Matrix::zeros(0, 5);
        let mut w = BitWriter::new();
        encode_matrix(&mut w, &m, Precision::Full);
        let (buf, bits) = w.finish();
        let mut r = BitReader::new(&buf, bits);
        let back = decode_matrix(&mut r, Precision::Full).unwrap();
        assert_eq!(back.shape(), (0, 5));
    }
}
