use std::error::Error;
use std::fmt;

/// Errors produced by the simulated network and wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A read ran past the end of the encoded payload.
    UnexpectedEnd {
        /// Bits requested by the failing read.
        requested: u32,
        /// Bits remaining in the stream.
        remaining: usize,
    },
    /// An encoded message carried an unknown tag byte.
    UnknownMessageTag {
        /// The offending tag.
        tag: u8,
    },
    /// A field failed validation while decoding.
    MalformedMessage {
        /// Explanation.
        reason: &'static str,
    },
    /// A source index was out of range for the network.
    UnknownSource {
        /// The offending index.
        source: usize,
        /// Number of sources in the network.
        sources: usize,
    },
    /// Invalid precision parameter (significand bits out of range).
    InvalidPrecision {
        /// The offending bit count.
        s: u32,
    },
    /// A socket or framing operation failed.
    Transport {
        /// Which operation failed.
        context: &'static str,
        /// Underlying failure, stringified.
        detail: String,
    },
    /// The bytes that crossed a socket differ from the locally computed
    /// encoding — the two sides of a replicated run diverged.
    Divergence {
        /// The source whose traffic diverged.
        source: usize,
        /// Which direction ("uplink", "downlink", or "digest").
        direction: &'static str,
    },
    /// A TCP handshake carried inconsistent parameters.
    Handshake {
        /// Explanation.
        reason: String,
    },
    /// A protocol peer answered with the wrong command/response type.
    ProtocolViolation {
        /// Which exchange was in flight.
        context: &'static str,
        /// The frame type the receiver expected.
        expected: &'static str,
        /// What actually arrived.
        got: String,
    },
    /// The remote end of a protocol run reported a failure or was told
    /// to abort.
    RemoteAbort {
        /// The failure as reported by (or sent to) the peer.
        reason: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnexpectedEnd {
                requested,
                remaining,
            } => write!(
                f,
                "unexpected end of payload: requested {requested} bits, {remaining} remain"
            ),
            NetError::UnknownMessageTag { tag } => write!(f, "unknown message tag {tag}"),
            NetError::MalformedMessage { reason } => write!(f, "malformed message: {reason}"),
            NetError::UnknownSource { source, sources } => {
                write!(f, "source {source} out of range (network has {sources})")
            }
            NetError::InvalidPrecision { s } => {
                write!(f, "invalid precision: {s} significand bits")
            }
            NetError::Transport { context, detail } => {
                write!(f, "transport failure during {context}: {detail}")
            }
            NetError::Divergence { source, direction } => write!(
                f,
                "transport divergence on source {source} ({direction}): \
                 socket bytes differ from the locally computed encoding"
            ),
            NetError::Handshake { reason } => write!(f, "handshake rejected: {reason}"),
            NetError::ProtocolViolation {
                context,
                expected,
                got,
            } => write!(
                f,
                "protocol violation during {context}: expected {expected}, got {got}"
            ),
            NetError::RemoteAbort { reason } => {
                write!(f, "remote end aborted the run: {reason}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::UnexpectedEnd {
            requested: 8,
            remaining: 3
        }
        .to_string()
        .contains("8 bits"));
        assert!(NetError::UnknownMessageTag { tag: 9 }
            .to_string()
            .contains('9'));
        assert!(NetError::MalformedMessage { reason: "x" }
            .to_string()
            .contains('x'));
        assert!(NetError::UnknownSource {
            source: 5,
            sources: 2
        }
        .to_string()
        .contains('5'));
        assert!(NetError::InvalidPrecision { s: 60 }
            .to_string()
            .contains("60"));
        assert!(NetError::Transport {
            context: "frame header",
            detail: "eof".into()
        }
        .to_string()
        .contains("frame header"));
        assert!(NetError::Divergence {
            source: 3,
            direction: "uplink"
        }
        .to_string()
        .contains("source 3"));
        assert!(NetError::Handshake { reason: "v".into() }
            .to_string()
            .contains('v'));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetError>();
    }
}
