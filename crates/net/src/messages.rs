//! Protocol messages exchanged by the paper's algorithms.
//!
//! | Message | Used by | Direction |
//! |---|---|---|
//! | [`Message::RawData`] | the "no reduction" baseline | source → server |
//! | [`Message::Coreset`] | FSS / Algorithms 1–4, disSS step 3 | source → server |
//! | [`Message::SvdSummary`] | disPCA step 1 (`Σ_i^{(t1)}, V_i^{(t1)}`) | source → server |
//! | [`Message::Basis`] | disPCA step 3 (global `V^{(t2)}`) | server → source |
//! | [`Message::CostReport`] | disSS step 1 (`cost(P_i, X_i)`) | source → server |
//! | [`Message::SampleAllocation`] | disSS step 2 (`s_i`) | server → source |
//! | [`Message::Centers`] | final result delivery | server → source |
//!
//! Coreset point payloads honor a [`Precision`]; the remaining float
//! payloads (weights, singular values, bases) default to full precision,
//! matching the paper's choice to quantize only the coreset points (§6.2
//! footnote 6: "their transfer dominates the communication cost"), but
//! carry their own [`Precision`] descriptor so a deployment can downshift
//! them to [`Precision::F32`] — a free 2× on every full-precision payload.
//! Δ and the scalar protocol rounds always travel at full width.

use crate::bitstream::{BitReader, BitWriter};
use crate::wire::{
    decode_f64, decode_f64_slice, decode_matrix, encode_f64, encode_f64_slice, encode_matrix,
    Precision,
};
use crate::{NetError, Result};
use ekm_linalg::Matrix;

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Message {
    /// Raw dataset upload (the NR baseline).
    RawData {
        /// The points (rows).
        points: Matrix,
    },
    /// A (possibly dimension-reduced, possibly quantized) coreset
    /// `(S, Δ, w)`.
    Coreset {
        /// Coreset points `S`.
        points: Matrix,
        /// Weights `w`, parallel to the rows of `points`.
        weights: Vec<f64>,
        /// Additive constant Δ.
        delta: f64,
        /// Precision of the `points` payload.
        precision: Precision,
        /// Precision of the `weights` payload (Δ stays full width).
        weights_precision: Precision,
    },
    /// Local SVD summary for disPCA: top singular values and right
    /// singular vectors.
    SvdSummary {
        /// Top-`t1` singular values `Σ_i^{(t1)}`.
        singular_values: Vec<f64>,
        /// Top-`t1` right singular vectors `V_i^{(t1)}` (`d × t1`).
        basis: Matrix,
        /// Precision of the singular values and basis payloads.
        precision: Precision,
    },
    /// A shared basis (disPCA's global `V^{(t2)}`), server → sources.
    Basis {
        /// The basis matrix (`d × t2`).
        basis: Matrix,
        /// Precision of the basis payload.
        precision: Precision,
    },
    /// A local clustering cost report (disSS step 1).
    CostReport {
        /// `cost(P_i, X_i)`.
        cost: f64,
    },
    /// A sample-size allocation (disSS step 2).
    SampleAllocation {
        /// `s_i` samples requested from this source.
        size: u64,
    },
    /// Final k-means centers.
    Centers {
        /// The centers (`k × d`).
        centers: Matrix,
    },
}

const TAG_RAW: u8 = 1;
const TAG_CORESET: u8 = 2;
const TAG_SVD: u8 = 3;
const TAG_BASIS: u8 = 4;
const TAG_COST: u8 = 5;
const TAG_ALLOC: u8 = 6;
const TAG_CENTERS: u8 = 7;

impl Message {
    /// Encodes the message, returning the payload and its exact bit length.
    pub fn encode(&self) -> (Vec<u8>, usize) {
        let mut w = BitWriter::new();
        match self {
            Message::RawData { points } => {
                w.write_bits(TAG_RAW as u64, 8);
                encode_matrix(&mut w, points, Precision::Full);
            }
            Message::Coreset {
                points,
                weights,
                delta,
                precision,
                weights_precision,
            } => {
                w.write_bits(TAG_CORESET as u64, 8);
                precision.encode(&mut w);
                weights_precision.encode(&mut w);
                encode_matrix(&mut w, points, *precision);
                encode_f64_slice(&mut w, weights, *weights_precision);
                encode_f64(&mut w, *delta, Precision::Full);
            }
            Message::SvdSummary {
                singular_values,
                basis,
                precision,
            } => {
                w.write_bits(TAG_SVD as u64, 8);
                precision.encode(&mut w);
                encode_f64_slice(&mut w, singular_values, *precision);
                encode_matrix(&mut w, basis, *precision);
            }
            Message::Basis { basis, precision } => {
                w.write_bits(TAG_BASIS as u64, 8);
                precision.encode(&mut w);
                encode_matrix(&mut w, basis, *precision);
            }
            Message::CostReport { cost } => {
                w.write_bits(TAG_COST as u64, 8);
                encode_f64(&mut w, *cost, Precision::Full);
            }
            Message::SampleAllocation { size } => {
                w.write_bits(TAG_ALLOC as u64, 8);
                w.write_bits(*size, 64);
            }
            Message::Centers { centers } => {
                w.write_bits(TAG_CENTERS as u64, 8);
                encode_matrix(&mut w, centers, Precision::Full);
            }
        }
        w.finish()
    }

    /// Decodes a message from a payload of `bit_len` meaningful bits.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownMessageTag`] for unrecognized tags.
    /// * [`NetError::UnexpectedEnd`] / [`NetError::MalformedMessage`] for
    ///   truncated or inconsistent payloads.
    pub fn decode(data: &[u8], bit_len: usize) -> Result<Message> {
        let mut r = BitReader::new(data, bit_len);
        let tag = r.read_bits(8)? as u8;
        match tag {
            TAG_RAW => Ok(Message::RawData {
                points: decode_matrix(&mut r, Precision::Full)?,
            }),
            TAG_CORESET => {
                let precision = Precision::decode(&mut r)?;
                let weights_precision = Precision::decode(&mut r)?;
                let points = decode_matrix(&mut r, precision)?;
                let weights = decode_f64_slice(&mut r, weights_precision)?;
                if weights.len() != points.rows() {
                    return Err(NetError::MalformedMessage {
                        reason: "coreset weight count mismatch",
                    });
                }
                let delta = decode_f64(&mut r, Precision::Full)?;
                Ok(Message::Coreset {
                    points,
                    weights,
                    delta,
                    precision,
                    weights_precision,
                })
            }
            TAG_SVD => {
                let precision = Precision::decode(&mut r)?;
                let singular_values = decode_f64_slice(&mut r, precision)?;
                let basis = decode_matrix(&mut r, precision)?;
                if singular_values.len() != basis.cols() {
                    return Err(NetError::MalformedMessage {
                        reason: "svd summary rank mismatch",
                    });
                }
                Ok(Message::SvdSummary {
                    singular_values,
                    basis,
                    precision,
                })
            }
            TAG_BASIS => {
                let precision = Precision::decode(&mut r)?;
                Ok(Message::Basis {
                    basis: decode_matrix(&mut r, precision)?,
                    precision,
                })
            }
            TAG_COST => Ok(Message::CostReport {
                cost: decode_f64(&mut r, Precision::Full)?,
            }),
            TAG_ALLOC => Ok(Message::SampleAllocation {
                size: r.read_bits(64)?,
            }),
            TAG_CENTERS => Ok(Message::Centers {
                centers: decode_matrix(&mut r, Precision::Full)?,
            }),
            other => Err(NetError::UnknownMessageTag { tag: other }),
        }
    }

    /// The wire tag byte of this message (the first 8 bits of its
    /// encoding).
    fn tag(&self) -> u8 {
        match self {
            Message::RawData { .. } => TAG_RAW,
            Message::Coreset { .. } => TAG_CORESET,
            Message::SvdSummary { .. } => TAG_SVD,
            Message::Basis { .. } => TAG_BASIS,
            Message::CostReport { .. } => TAG_COST,
            Message::SampleAllocation { .. } => TAG_ALLOC,
            Message::Centers { .. } => TAG_CENTERS,
        }
    }

    /// Maps an encoded payload's leading tag byte to its kind string —
    /// what a transport that holds only the encoded bytes charges to
    /// the by-kind counters. [`Message::kind`] routes through this
    /// table, so the two can never drift apart.
    pub(crate) fn kind_of_tag(tag: u8) -> Result<&'static str> {
        match tag {
            TAG_RAW => Ok("raw-data"),
            TAG_CORESET => Ok("coreset"),
            TAG_SVD => Ok("svd-summary"),
            TAG_BASIS => Ok("basis"),
            TAG_COST => Ok("cost-report"),
            TAG_ALLOC => Ok("sample-allocation"),
            TAG_CENTERS => Ok("centers"),
            other => Err(NetError::UnknownMessageTag { tag: other }),
        }
    }

    /// Short human-readable kind (for logs and stats).
    pub fn kind(&self) -> &'static str {
        Message::kind_of_tag(self.tag()).expect("every variant has a kind")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_quant::RoundingQuantizer;

    fn roundtrip(msg: &Message) -> Message {
        let (buf, bits) = msg.encode();
        Message::decode(&buf, bits).unwrap()
    }

    #[test]
    fn raw_data_roundtrip() {
        let msg = Message::RawData {
            points: Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5),
        };
        assert_eq!(roundtrip(&msg), msg);
        assert_eq!(msg.kind(), "raw-data");
    }

    #[test]
    fn coreset_roundtrip_full_precision() {
        let msg = Message::Coreset {
            points: Matrix::from_fn(5, 2, |i, j| (i as f64).powf(1.1) - j as f64),
            weights: vec![1.0, 2.0, 3.0, 4.0, 5.0],
            delta: 0.75,
            precision: Precision::Full,
            weights_precision: Precision::Full,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn coreset_roundtrip_quantized() {
        let q = RoundingQuantizer::new(9).unwrap();
        let raw = Matrix::from_fn(6, 4, |i, j| ((i + 1) as f64).ln() * (j as f64 + 0.3));
        let msg = Message::Coreset {
            points: q.quantize_matrix(&raw),
            weights: vec![1.5; 6],
            delta: 2.0,
            precision: Precision::Quantized { s: 9 },
            weights_precision: Precision::Full,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn quantized_coreset_smaller_on_wire() {
        let points = Matrix::from_fn(50, 20, |i, j| (i * j) as f64 * 0.01);
        let full = Message::Coreset {
            points: points.clone(),
            weights: vec![1.0; 50],
            delta: 0.0,
            precision: Precision::Full,
            weights_precision: Precision::Full,
        };
        let q = RoundingQuantizer::new(6).unwrap();
        let quant = Message::Coreset {
            points: q.quantize_matrix(&points),
            weights: vec![1.0; 50],
            delta: 0.0,
            precision: Precision::Quantized { s: 6 },
            weights_precision: Precision::Full,
        };
        let (_, full_bits) = full.encode();
        let (_, quant_bits) = quant.encode();
        assert!(
            (quant_bits as f64) < 0.5 * full_bits as f64,
            "quantized {quant_bits} vs full {full_bits}"
        );
    }

    #[test]
    fn svd_summary_roundtrip_and_validation() {
        let msg = Message::SvdSummary {
            singular_values: vec![3.0, 1.0],
            basis: Matrix::from_fn(6, 2, |i, j| (i + j) as f64 * 0.1),
            precision: Precision::Full,
        };
        assert_eq!(roundtrip(&msg), msg);
        // Rank mismatch is rejected at decode time.
        let bad = Message::SvdSummary {
            singular_values: vec![3.0, 1.0, 0.5],
            basis: Matrix::from_fn(6, 2, |i, j| (i + j) as f64),
            precision: Precision::Full,
        };
        let (buf, bits) = bad.encode();
        assert!(matches!(
            Message::decode(&buf, bits),
            Err(NetError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn small_messages_roundtrip() {
        for msg in [
            Message::CostReport { cost: 1.25e-3 },
            Message::SampleAllocation { size: 12345 },
            Message::Basis {
                basis: Matrix::identity(3),
                precision: Precision::Full,
            },
            Message::Centers {
                centers: Matrix::from_fn(2, 5, |i, j| (i * 5 + j) as f64),
            },
        ] {
            assert_eq!(roundtrip(&msg), msg);
        }
    }

    #[test]
    fn f32_aux_payloads_halve_their_bits_and_roundtrip() {
        // f32-representable payloads round-trip exactly at half the width.
        let basis = Matrix::from_fn(16, 4, |i, j| (i as f64) * 0.5 - (j as f64) * 0.25);
        let full = Message::Basis {
            basis: basis.clone(),
            precision: Precision::Full,
        };
        let single = Message::Basis {
            basis: basis.clone(),
            precision: Precision::F32,
        };
        assert_eq!(roundtrip(&single), single);
        let (_, full_bits) = full.encode();
        let (_, single_bits) = single.encode();
        let payload = 16 * 4 * 64;
        assert_eq!(full_bits - single_bits, payload / 2);

        let svd = Message::SvdSummary {
            singular_values: vec![4.0, 2.0, 1.0, 0.5],
            basis,
            precision: Precision::F32,
        };
        assert_eq!(roundtrip(&svd), svd);

        // A coreset whose weights travel at f32 while the points stay
        // quantized: each descriptor decodes independently.
        let q = RoundingQuantizer::new(8).unwrap();
        let pts = q.quantize_matrix(&Matrix::from_fn(10, 3, |i, j| (i * 3 + j) as f64 * 0.37));
        let msg = Message::Coreset {
            points: pts,
            weights: vec![2.5; 10],
            delta: 0.125,
            precision: Precision::Quantized { s: 8 },
            weights_precision: Precision::F32,
        };
        assert_eq!(roundtrip(&msg), msg);
    }

    #[test]
    fn f32_weights_decode_to_nearest_single() {
        // Non-representable weights come back as (w as f32) as f64 — the
        // lossy-but-deterministic contract shared with the F32 scalar.
        let weights = vec![std::f64::consts::PI, 1.0 / 3.0];
        let msg = Message::Coreset {
            points: Matrix::zeros(2, 1),
            weights: weights.clone(),
            delta: 0.0,
            precision: Precision::Full,
            weights_precision: Precision::F32,
        };
        let (buf, bits) = msg.encode();
        match Message::decode(&buf, bits).unwrap() {
            Message::Coreset { weights: got, .. } => {
                for (w, g) in weights.iter().zip(&got) {
                    assert_eq!(*g, (*w as f32) as f64);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut w = BitWriter::new();
        w.write_bits(250, 8);
        let (buf, bits) = w.finish();
        assert!(matches!(
            Message::decode(&buf, bits),
            Err(NetError::UnknownMessageTag { tag: 250 })
        ));
    }

    #[test]
    fn weight_count_mismatch_rejected() {
        // Hand-craft a coreset message with 2 points but 3 weights.
        let mut w = BitWriter::new();
        w.write_bits(2, 8); // coreset tag
        Precision::Full.encode(&mut w);
        encode_matrix(&mut w, &Matrix::zeros(2, 1), Precision::Full);
        encode_f64_slice(&mut w, &[1.0, 1.0, 1.0], Precision::Full);
        encode_f64(&mut w, 0.0, Precision::Full);
        let (buf, bits) = w.finish();
        assert!(matches!(
            Message::decode(&buf, bits),
            Err(NetError::MalformedMessage { .. })
        ));
    }

    #[test]
    fn cost_report_is_tiny() {
        let (_, bits) = Message::CostReport { cost: 7.0 }.encode();
        assert_eq!(bits, 8 + 64);
    }

    #[test]
    fn kinds_are_distinct() {
        let kinds = [
            Message::RawData {
                points: Matrix::zeros(1, 1),
            }
            .kind(),
            Message::CostReport { cost: 0.0 }.kind(),
            Message::SampleAllocation { size: 0 }.kind(),
            Message::Centers {
                centers: Matrix::zeros(1, 1),
            }
            .kind(),
            Message::Basis {
                basis: Matrix::zeros(1, 1),
                precision: Precision::Full,
            }
            .kind(),
        ];
        let mut sorted = kinds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), kinds.len());
    }
}
