//! Experiment: **§6.3** — configuring joint DR, CR, and QT.
//!
//! Reproduces the analysis of §6.3.2: for each significant-bit count `s`,
//! compute the quantization error `ε_QT`, the largest feasible ε under
//! the approximation-error constraint (21b), and the modeled
//! communication cost (24) with the paper's constants
//! (`C1 = 54912(1+log₂3)(1+log₂(26/3))/225`, `C2 = 24`, `C3 = 2`);
//! then report the cost-minimizing configuration, for several error
//! budgets `Y₀`.
//!
//! The lower bound `E ≤ cost(P, X*)` comes from the §6.3.1
//! adaptive-sampling estimator run on the actual workload.

use ekm_bench::config::Scale;
use ekm_bench::datasets::mnist_workload;
use ekm_bench::report;
use ekm_clustering::lower_bound::cost_lower_bound;
use ekm_quant::QtOptimizer;

fn main() {
    report::banner("Section 6.3: optimal joint DR/CR/QT configuration");
    let workload = mnist_workload(Scale::from_env(), 71);
    let data = &workload.data;
    let (n, d) = data.shape();
    println!("dataset {} ({n} x {d}), k = 2", workload.name);

    let weights = vec![1.0; n];
    let e = cost_lower_bound(data, &weights, 2, 0.1, 9).expect("lower bound");
    println!(
        "adaptive-sampling lower bound: E = {:.4} (bicriteria cost {:.4}, {} trials)",
        e.lower_bound, e.bicriteria_cost, e.trials
    );

    for y0 in [1.5f64, 2.0, 3.0, 5.0] {
        let optimizer = QtOptimizer {
            n,
            d,
            k: 2,
            y0,
            delta0: 0.1,
            lower_bound_e: e.lower_bound.max(1e-9),
            diameter: 2.0 * (d as f64).sqrt(),
            max_norm: data.max_row_norm(),
        };
        match optimizer.optimize() {
            Ok(rep) => {
                let columns = vec![
                    "epsilon_qt".to_string(),
                    "max_epsilon".to_string(),
                    "modeled_comm".to_string(),
                ];
                let rows: Vec<(f64, Vec<f64>)> = rep
                    .candidates
                    .iter()
                    .map(|c| {
                        (
                            c.s as f64,
                            vec![
                                c.epsilon_qt,
                                c.epsilon.unwrap_or(f64::NAN),
                                c.comm_cost.unwrap_or(f64::NAN),
                            ],
                        )
                    })
                    .collect();
                report::print_series_table(
                    "sec63_qt_config",
                    &format!("config_y0_{}", (y0 * 10.0) as u32),
                    &format!("Per-s evaluation under Y0 = {y0} (NaN = infeasible)"),
                    "s",
                    &columns,
                    &rows,
                );
                let best = rep.best();
                println!(
                    "==> Y0 = {y0}: optimal s* = {} (epsilon = {:.4}, modeled comm {:.4e})",
                    best.s,
                    best.epsilon.unwrap_or(f64::NAN),
                    best.comm_cost.unwrap_or(f64::NAN)
                );
            }
            Err(err) => println!("==> Y0 = {y0}: {err}"),
        }
    }
    println!("\nExpected shapes (paper §7.3.2): the optimum is interior — very small");
    println!("s is infeasible (quantization error alone exceeds the budget), very");
    println!("large s wastes bits; tighter Y0 pushes s* upward.");
}
