//! Experiment: **Figure 6** — multi-source DR+CR+QT sweep on NeurIPS.
//!
//! Same as Figure 5 on the high-dimensional word-count workload.

use ekm_bench::config::{Scale, DISTRIBUTED_SOURCES};
use ekm_bench::datasets::neurips_workload;
use ekm_bench::qt_sweep::run_distributed_sweep;
use ekm_data::partition::partition_uniform;

fn main() {
    let workload = neurips_workload(Scale::from_env(), 64);
    let shards = partition_uniform(&workload.data, DISTRIBUTED_SOURCES, 0xF16).expect("partition");
    run_distributed_sweep(
        "fig6_qt_multi_neurips",
        workload.name,
        &workload.data,
        &shards,
    );
}
