//! Experiment: **Figure 3** — single-source DR+CR+QT sweep on MNIST.
//!
//! Panels: (a) normalized k-means cost, (b) normalized communication
//! cost, (c) source running time — each versus the quantizer's
//! significant-bit count `s` for FSS+QT and the +QT variants of
//! Algorithms 1–3.

use ekm_bench::config::Scale;
use ekm_bench::datasets::mnist_workload;
use ekm_bench::qt_sweep::run_centralized_sweep;

fn main() {
    let workload = mnist_workload(Scale::from_env(), 61);
    run_centralized_sweep("fig3_qt_mnist", workload.name, &workload.data);
}
