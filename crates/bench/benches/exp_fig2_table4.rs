//! Experiment: **Figure 2 + Table 4** — multi-source joint DR and CR.
//!
//! Ten data sources hold random shards of the dataset (paper §7.1).
//! Reproduces, per dataset:
//! * Figure 2: CDFs of normalized k-means cost and source running time
//!   for BKLW and JL+BKLW (Algorithm 4);
//! * Table 4: mean normalized communication cost.

use ekm_bench::config::{monte_carlo_runs, Scale, DISTRIBUTED_SOURCES};
use ekm_bench::datasets::{mnist_workload, neurips_workload, Workload};
use ekm_bench::report;
use ekm_bench::runner::{make_reference, run_distributed_mc, MonteCarlo};
use ekm_core::distributed::{Bklw, DistributedPipeline, JlBklw};
use ekm_core::params::SummaryParams;
use ekm_data::partition::partition_uniform;

fn run_dataset(workload: &Workload, mc: usize) -> Vec<MonteCarlo> {
    let data = &workload.data;
    let (n, d) = data.shape();
    println!(
        "\n--- dataset {} ({n} x {d}), k = 2, m = {DISTRIBUTED_SOURCES}, {mc} Monte-Carlo runs ---",
        workload.name
    );
    let shards = partition_uniform(data, DISTRIBUTED_SOURCES, 0xA11).expect("partition");
    let reference = make_reference(data, 2);
    println!("reference k-means cost: {:.4}", reference.cost);
    let params = SummaryParams::practical(2, n, d);

    type Factory = fn(SummaryParams) -> Box<dyn DistributedPipeline>;
    let factories: Vec<Factory> = vec![|p| Box::new(Bklw::new(p)), |p| Box::new(JlBklw::new(p))];
    factories
        .into_iter()
        .map(|f| run_distributed_mc(data, &shards, &reference, mc, &params, f))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let mc = monte_carlo_runs(10);
    report::banner("Figure 2 + Table 4: multi-source joint DR and CR");

    for (tag, workload) in [
        ("mnist", mnist_workload(scale, 51)),
        ("neurips", neurips_workload(scale, 52)),
    ] {
        let results = run_dataset(&workload, mc);
        let refs: Vec<&MonteCarlo> = results.iter().collect();
        report::print_cdfs(
            "fig2_table4",
            &format!("fig2_{tag}_cost"),
            "normalized k-means cost (Figure 2, left panels)",
            &refs,
            |t| t.normalized_cost,
        );
        report::print_cdfs(
            "fig2_table4",
            &format!("fig2_{tag}_time"),
            "max per-source running time in seconds (Figure 2, right panels)",
            &refs,
            |t| t.source_seconds,
        );
        report::print_mean_table(
            "fig2_table4",
            &format!("table4_{tag}"),
            &format!(
                "Table 4 ({}): mean metrics (NR normalized comm = 1 by definition)",
                workload.name
            ),
            &refs,
        );
    }
    println!("\nExpected shapes (paper): JL+BKLW achieves a similar cost to BKLW at");
    println!("a lower communication cost and lower per-source running time.");
}
