//! Experiment: **Figure 5** — multi-source DR+CR+QT sweep on MNIST.
//!
//! BKLW+QT versus JL+BKLW+QT (Algorithm 4 + QT) across the quantizer's
//! significant-bit count, with 10 data sources.

use ekm_bench::config::{Scale, DISTRIBUTED_SOURCES};
use ekm_bench::datasets::mnist_workload;
use ekm_bench::qt_sweep::run_distributed_sweep;
use ekm_data::partition::partition_uniform;

fn main() {
    let workload = mnist_workload(Scale::from_env(), 63);
    let shards = partition_uniform(&workload.data, DISTRIBUTED_SOURCES, 0xF15).expect("partition");
    run_distributed_sweep(
        "fig5_qt_multi_mnist",
        workload.name,
        &workload.data,
        &shards,
    );
}
