//! Experiment: **Figure 1 + Table 3** — single-source joint DR and CR.
//!
//! Reproduces, per dataset (MNIST-like, NeurIPS-like):
//! * Figure 1: CDFs over Monte-Carlo runs of the normalized k-means cost
//!   and of the data-source running time for FSS, JL+FSS (Alg 1), FSS+JL
//!   (Alg 2), and JL+FSS+JL (Alg 3);
//! * Table 3: mean normalized communication cost, with NR = 1 by
//!   definition.
//!
//! `EKM_SCALE=full` runs the paper's dataset shapes; the default reduced
//! scale preserves the comparative shapes (see EXPERIMENTS.md).

use ekm_bench::config::{monte_carlo_runs, Scale};
use ekm_bench::datasets::{mnist_workload, neurips_workload, Workload};
use ekm_bench::report;
use ekm_bench::runner::{make_reference, run_centralized_mc, MonteCarlo};
use ekm_core::params::SummaryParams;
use ekm_core::pipelines::{CentralizedPipeline, Fss, FssJl, JlFss, JlFssJl};

fn run_dataset(workload: &Workload, mc: usize) -> Vec<MonteCarlo> {
    let data = &workload.data;
    let (n, d) = data.shape();
    println!(
        "\n--- dataset {} ({n} x {d}), k = 2, {mc} Monte-Carlo runs ---",
        workload.name
    );
    let reference = make_reference(data, 2);
    println!("reference k-means cost: {:.4}", reference.cost);
    let params = SummaryParams::practical(2, n, d);

    type Factory = fn(SummaryParams) -> Box<dyn CentralizedPipeline>;
    let factories: Vec<Factory> = vec![
        |p| Box::new(Fss::new(p)),
        |p| Box::new(JlFss::new(p)),
        |p| Box::new(FssJl::new(p)),
        |p| Box::new(JlFssJl::new(p)),
    ];
    factories
        .into_iter()
        .map(|f| run_centralized_mc(data, &reference, mc, &params, f))
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let mc = monte_carlo_runs(10);
    report::banner("Figure 1 + Table 3: single-source joint DR and CR");

    for (tag, workload) in [
        ("mnist", mnist_workload(scale, 41)),
        ("neurips", neurips_workload(scale, 42)),
    ] {
        let results = run_dataset(&workload, mc);
        let refs: Vec<&MonteCarlo> = results.iter().collect();
        report::print_cdfs(
            "fig1_table3",
            &format!("fig1_{tag}_cost"),
            "normalized k-means cost (Figure 1, left panels)",
            &refs,
            |t| t.normalized_cost,
        );
        report::print_cdfs(
            "fig1_table3",
            &format!("fig1_{tag}_time"),
            "data-source running time in seconds (Figure 1, right panels)",
            &refs,
            |t| t.source_seconds,
        );
        report::print_mean_table(
            "fig1_table3",
            &format!("table3_{tag}"),
            &format!(
                "Table 3 ({}): mean metrics (NR normalized comm = 1 by definition)",
                workload.name
            ),
            &refs,
        );
    }
    println!("\nExpected shapes (paper): all four algorithms cluster near cost 1;");
    println!("JL-augmented methods transmit fewer bits than FSS; JL-first methods");
    println!("are fastest at the data source.");
}
