//! Ablation studies for the design choices the paper leaves open.
//!
//! 1. **JL family** — Theorem 3.1 admits any sub-Gaussian family; the
//!    paper cites dense Gaussian and Achlioptas sparse-sign matrices
//!    (\[32\]–\[34\]). Same target dimension, same pipeline: does the
//!    family change quality, bits, or time?
//! 2. **Coreset weight mode** — the plain unbiased sensitivity weights
//!    versus the deterministic-total variant of \[4\] (paper footnote 8)
//!    that FSS/disSS rely on.
//! 3. **Second projection dimension** — Algorithm 3's `d''` trades
//!    communication against the center-lift quality; sweep it.
//! 4. **JL placement around BKLW** — §5.2 argues that applying JL *after*
//!    BKLW keeps the communication order of BKLW while adding error, so
//!    only the JL-*before* ordering (Algorithm 4) is worthwhile. Verified
//!    head-to-head.

use ekm_bench::config::{monte_carlo_runs, Scale};
use ekm_bench::datasets::mnist_workload;
use ekm_bench::report;
use ekm_bench::runner::{make_reference, run_centralized_mc, MonteCarlo};
use ekm_core::distributed::{Bklw, BklwJl, DistributedPipeline, JlBklw};
use ekm_core::params::SummaryParams;
use ekm_core::pipelines::{CentralizedPipeline, JlFssJl};
use ekm_coreset::sensitivity::WeightMode;
use ekm_coreset::SensitivitySampler;
use ekm_linalg::Matrix;
use ekm_sketch::JlKind;

fn jl_kind_ablation(data: &Matrix, mc: usize) {
    let (n, d) = data.shape();
    let reference = make_reference(data, 2);
    let base = SummaryParams::practical(2, n, d);
    let mut results: Vec<MonteCarlo> = Vec::new();
    for (label, kind) in [
        ("gaussian", JlKind::Gaussian),
        ("achlioptas", JlKind::Achlioptas),
    ] {
        let params = base.clone().with_jl_kind(kind);
        let mut mc_run = run_centralized_mc(data, &reference, mc, &params, |p| {
            Box::new(JlFssJl::new(p)) as Box<dyn CentralizedPipeline>
        });
        mc_run.name = format!("JL+FSS+JL[{label}]");
        results.push(mc_run);
    }
    let refs: Vec<&MonteCarlo> = results.iter().collect();
    report::print_mean_table(
        "ablation",
        "jl_kind",
        "Ablation 1: JL family (same dimensions, same pipeline)",
        &refs,
    );
}

fn weight_mode_ablation(data: &Matrix) {
    println!("\nAblation 2: sensitivity-sampling weight mode (coreset cost distortion)");
    println!("{:<22} {:>14} {:>14}", "mode", "max distortion", "Σw - n");
    let n = data.rows() as f64;
    for (label, mode) in [
        ("plain", WeightMode::Plain),
        ("deterministic-total", WeightMode::DeterministicTotal),
    ] {
        let mut worst = 0.0f64;
        let mut weight_gap = 0.0f64;
        for seed in 0..6u64 {
            let coreset = SensitivitySampler::new(2, 200)
                .with_seed(seed)
                .with_weight_mode(mode)
                .sample(data, None)
                .expect("sample");
            weight_gap = weight_gap.max((coreset.total_weight() - n).abs());
            for cs in 0..3u64 {
                let x = ekm_linalg::random::gaussian_matrix(100 + cs, 2, data.cols(), 0.3);
                let truth = ekm_clustering::cost::cost(data, &x).expect("cost");
                let approx = coreset.cost(&x).expect("coreset cost");
                worst = worst.max((approx / truth - 1.0).abs());
            }
        }
        println!("{label:<22} {worst:>14.4} {weight_gap:>14.2e}");
    }
    println!("(deterministic-total trades a little bias for exact mass preservation)");
}

fn second_projection_ablation(data: &Matrix, mc: usize) {
    let (n, d) = data.shape();
    let reference = make_reference(data, 2);
    let base = SummaryParams::practical(2, n, d);
    let dims = [8usize, 16, 32, 64, 128];
    let columns = vec!["norm_cost".to_string(), "norm_comm".to_string()];
    let mut rows = Vec::new();
    for &d2 in &dims {
        let params = base.clone().with_jl_dim_after(d2);
        let mc_run = run_centralized_mc(data, &reference, mc, &params, |p| {
            Box::new(JlFssJl::new(p)) as Box<dyn CentralizedPipeline>
        });
        rows.push((
            d2 as f64,
            vec![
                mc_run.mean(|t| t.normalized_cost),
                mc_run.mean(|t| t.normalized_comm),
            ],
        ));
    }
    report::print_series_table(
        "ablation",
        "second_projection",
        "Ablation 3: Algorithm 3's post-CR dimension d'' (cost/comm tradeoff)",
        "d''",
        &columns,
        &rows,
    );
}

fn jl_placement_ablation(data: &Matrix, mc: usize) {
    use ekm_bench::runner::run_distributed_mc;
    use ekm_data::partition::partition_uniform;

    let (n, d) = data.shape();
    let shards = partition_uniform(data, 10, 0xAB1).expect("partition");
    let reference = make_reference(data, 2);
    let base = SummaryParams::practical(2, n, d);
    type Factory = fn(SummaryParams) -> Box<dyn DistributedPipeline>;
    let factories: Vec<Factory> = vec![
        |p| Box::new(Bklw::new(p)),
        |p| Box::new(JlBklw::new(p)),
        |p| Box::new(BklwJl::new(p)),
    ];
    let results: Vec<MonteCarlo> = factories
        .into_iter()
        .map(|f| run_distributed_mc(data, &shards, &reference, mc, &base, f))
        .collect();
    let refs: Vec<&MonteCarlo> = results.iter().collect();
    report::print_mean_table(
        "ablation",
        "jl_placement",
        "Ablation 4: JL placement around BKLW (§5.2 — only JL-before helps)",
        &refs,
    );
}

fn main() {
    report::banner("Ablations: JL family, weight mode, post-CR dimension, JL placement");
    let workload = mnist_workload(Scale::from_env(), 81);
    let mc = monte_carlo_runs(3);
    jl_kind_ablation(&workload.data, mc);
    weight_mode_ablation(&workload.data);
    second_projection_ablation(&workload.data, mc);
    jl_placement_ablation(&workload.data, mc);
    println!("\nExpected: the JL family is immaterial (any sub-Gaussian family");
    println!("satisfies Theorem 3.1); deterministic-total keeps Σw = n exactly;");
    println!("growing d'' buys cost at a linear price in bits; JL after BKLW");
    println!("keeps BKLW's communication order while adding error (§5.2).");
}
