//! Experiment: **Table 2** — empirical validation of the communication
//! and complexity scaling.
//!
//! Table 2 predicts, as functions of the dataset shape `(n, d)`:
//!
//! | algorithm | communication | source complexity |
//! |---|---|---|
//! | FSS | `O(kd/ε²)` — **linear in d**, flat in n | `O(nd·min(n,d))` |
//! | JL+FSS (Alg 1) | `O(k·log n/ε⁴)` — flat in d | `Õ(nd/ε²)` |
//! | FSS+JL (Alg 2) | `Õ(k³/ε⁶)` — flat in n and d | `O(nd·min(n,d))` |
//! | JL+FSS+JL (Alg 3) | `Õ(k³/ε⁶)` — flat | `Õ(nd/ε²)` |
//! | BKLW | `O(mkd/ε²)` | `O(nd·min(n,d))` |
//! | JL+BKLW (Alg 4) | `O(mk·log n/ε⁴)` | `Õ(nd/ε⁴)` |
//!
//! This harness sweeps `d` at fixed `n` and `n` at fixed `d`, measuring
//! transmitted bits and source seconds, and prints the growth factors so
//! the flat-vs-linear distinctions are visible directly.
//!
//! Note on faithfulness: the *derived* sizes (coreset cardinality, JL
//! dimensions, PCA rank) are held fixed across the sweep — the same
//! `(k, ε)` configuration applied to growing data — exactly how the
//! theorems state their bounds.

use ekm_bench::report;
use ekm_core::distributed::{Bklw, DistributedPipeline, JlBklw};
use ekm_core::params::SummaryParams;
use ekm_core::pipelines::{CentralizedPipeline, Fss, FssJl, JlFss, JlFssJl};
use ekm_data::normalize::normalize_paper;
use ekm_data::partition::partition_uniform;
use ekm_data::synth::GaussianMixture;
use ekm_linalg::Matrix;
use ekm_net::Network;

fn workload(n: usize, d: usize, seed: u64) -> Matrix {
    let raw = GaussianMixture::new(n, d, 2)
        .with_separation(4.0)
        .with_seed(seed)
        .generate()
        .expect("valid mixture")
        .points;
    normalize_paper(&raw).0
}

/// Fixed-knob parameters so the sweep isolates (n, d) scaling.
fn fixed_params(seed: u64) -> SummaryParams {
    SummaryParams::practical(2, 4_000, 256)
        .with_coreset_size(300)
        .with_pca_dim(16)
        .with_jl_dim_before(48)
        .with_jl_dim_after(24)
        .with_seed(seed)
}

type CentralizedFactory = Box<dyn Fn(SummaryParams) -> Box<dyn CentralizedPipeline>>;
type DistributedFactory = Box<dyn Fn(SummaryParams) -> Box<dyn DistributedPipeline>>;

fn centralized_algorithms() -> Vec<(String, CentralizedFactory)> {
    vec![
        (
            "FSS".into(),
            Box::new(|p| Box::new(Fss::new(p)) as Box<dyn CentralizedPipeline>),
        ),
        (
            "JL+FSS".into(),
            Box::new(|p| Box::new(JlFss::new(p)) as Box<dyn CentralizedPipeline>),
        ),
        (
            "FSS+JL".into(),
            Box::new(|p| Box::new(FssJl::new(p)) as Box<dyn CentralizedPipeline>),
        ),
        (
            "JL+FSS+JL".into(),
            Box::new(|p| Box::new(JlFssJl::new(p)) as Box<dyn CentralizedPipeline>),
        ),
    ]
}

fn distributed_algorithms() -> Vec<(String, DistributedFactory)> {
    vec![
        (
            "BKLW".into(),
            Box::new(|p| Box::new(Bklw::new(p)) as Box<dyn DistributedPipeline>),
        ),
        (
            "JL+BKLW".into(),
            Box::new(|p| Box::new(JlBklw::new(p)) as Box<dyn DistributedPipeline>),
        ),
    ]
}

fn sweep_dimension() {
    let n = 1_500;
    let dims = [64usize, 128, 256, 512];
    let mut columns: Vec<String> = Vec::new();
    let mut bit_rows: Vec<(f64, Vec<f64>)> = dims.iter().map(|&d| (d as f64, vec![])).collect();
    let mut time_rows: Vec<(f64, Vec<f64>)> = dims.iter().map(|&d| (d as f64, vec![])).collect();

    for (name, factory) in centralized_algorithms() {
        columns.push(name);
        for (row, &d) in dims.iter().enumerate() {
            let data = workload(n, d, 7 + d as u64);
            let mut net = Network::new(1);
            let out = factory(fixed_params(1)).run(&data, &mut net).expect("run");
            bit_rows[row].1.push(out.uplink_bits as f64);
            time_rows[row].1.push(out.source_seconds);
        }
    }
    for (name, factory) in distributed_algorithms() {
        columns.push(name);
        for (row, &d) in dims.iter().enumerate() {
            let data = workload(n, d, 7 + d as u64);
            let shards = partition_uniform(&data, 5, 3).expect("partition");
            let mut net = Network::new(5);
            let out = factory(fixed_params(1))
                .run(&shards, &mut net)
                .expect("run");
            bit_rows[row].1.push(out.uplink_bits as f64);
            time_rows[row].1.push(out.source_seconds);
        }
    }

    report::print_series_table(
        "table2_scaling",
        "comm_vs_d",
        &format!("Uplink bits vs dimension d (n = {n} fixed)"),
        "d",
        &columns,
        &bit_rows,
    );
    report::print_series_table(
        "table2_scaling",
        "time_vs_d",
        &format!("Source seconds vs dimension d (n = {n} fixed)"),
        "d",
        &columns,
        &time_rows,
    );
    print_growth(
        "communication growth d: 64 -> 512 (factor)",
        &columns,
        &bit_rows,
    );
}

fn sweep_cardinality() {
    let d = 128;
    let ns = [1_000usize, 2_000, 4_000, 8_000];
    let mut columns: Vec<String> = Vec::new();
    let mut bit_rows: Vec<(f64, Vec<f64>)> = ns.iter().map(|&n| (n as f64, vec![])).collect();
    let mut time_rows: Vec<(f64, Vec<f64>)> = ns.iter().map(|&n| (n as f64, vec![])).collect();

    for (name, factory) in centralized_algorithms() {
        columns.push(name);
        for (row, &n) in ns.iter().enumerate() {
            let data = workload(n, d, 11 + n as u64);
            let mut net = Network::new(1);
            let out = factory(fixed_params(2)).run(&data, &mut net).expect("run");
            bit_rows[row].1.push(out.uplink_bits as f64);
            time_rows[row].1.push(out.source_seconds);
        }
    }
    for (name, factory) in distributed_algorithms() {
        columns.push(name);
        for (row, &n) in ns.iter().enumerate() {
            let data = workload(n, d, 11 + n as u64);
            let shards = partition_uniform(&data, 5, 3).expect("partition");
            let mut net = Network::new(5);
            let out = factory(fixed_params(2))
                .run(&shards, &mut net)
                .expect("run");
            bit_rows[row].1.push(out.uplink_bits as f64);
            time_rows[row].1.push(out.source_seconds);
        }
    }

    report::print_series_table(
        "table2_scaling",
        "comm_vs_n",
        &format!("Uplink bits vs cardinality n (d = {d} fixed)"),
        "n",
        &columns,
        &bit_rows,
    );
    report::print_series_table(
        "table2_scaling",
        "time_vs_n",
        &format!("Source seconds vs cardinality n (d = {d} fixed)"),
        "n",
        &columns,
        &time_rows,
    );
    print_growth(
        "communication growth n: 1000 -> 8000 (factor)",
        &columns,
        &bit_rows,
    );
}

fn print_growth(title: &str, columns: &[String], rows: &[(f64, Vec<f64>)]) {
    println!("\n{title}:");
    let first = &rows.first().expect("rows").1;
    let last = &rows.last().expect("rows").1;
    for (i, c) in columns.iter().enumerate() {
        println!("  {c:<12} {:>8.2}x", last[i] / first[i]);
    }
}

fn main() {
    report::banner("Table 2: communication/complexity scaling in n and d");
    sweep_dimension();
    sweep_cardinality();
    println!("\nExpected shapes (paper Table 2): FSS and BKLW communication grows");
    println!("~linearly in d while the JL/twice-projected variants stay flat; no");
    println!("algorithm's communication grows linearly in n (coreset sizes are");
    println!("constant; JL+FSS grows only logarithmically via the summary header).");
    println!("Source time of FSS-first methods grows super-linearly in min(n,d).");
}
