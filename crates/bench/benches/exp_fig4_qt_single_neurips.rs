//! Experiment: **Figure 4** — single-source DR+CR+QT sweep on NeurIPS.
//!
//! Same panels as Figure 3 on the high-dimensional word-count workload,
//! where the four-step JL+FSS+JL+QT procedure shows its full advantage
//! (paper §7.3.2 observation iii).

use ekm_bench::config::Scale;
use ekm_bench::datasets::neurips_workload;
use ekm_bench::qt_sweep::run_centralized_sweep;

fn main() {
    let workload = neurips_workload(Scale::from_env(), 62);
    run_centralized_sweep("fig4_qt_neurips", workload.name, &workload.data);
}
