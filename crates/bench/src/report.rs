//! Table and CDF printing, CSV output under `target/ekm-exp/`, and the
//! machine-readable JSON emitter behind `BENCH_micro.json`.

use crate::runner::MonteCarlo;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Directory CSV artifacts are written to: `EKM_OUT_DIR` if set, else the
/// workspace `target/ekm-exp` (benches run with the package dir as cwd,
/// so a bare relative path would land inside `crates/bench`).
pub fn output_dir(experiment: &str) -> PathBuf {
    let base = std::env::var("EKM_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let manifest = std::env::var("CARGO_MANIFEST_DIR").map(PathBuf::from);
            match manifest {
                Ok(m) => {
                    // workspace root = two levels above crates/bench.
                    let ws = m.ancestors().nth(2).map(|p| p.to_path_buf()).unwrap_or(m);
                    ws.join("target").join("ekm-exp")
                }
                Err(_) => PathBuf::from("target").join("ekm-exp"),
            }
        });
    let dir = base.join(experiment);
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Prints a banner for an experiment section.
pub fn banner(title: &str) {
    println!("\n==================================================================");
    println!("{title}");
    println!("==================================================================");
}

/// Prints the empirical CDF series of a metric for several Monte-Carlo
/// runs side by side — the textual form of the paper's Figure 1/2 panels —
/// and writes `<experiment>/<file>.csv`.
pub fn print_cdfs<F: Fn(&crate::runner::TrialMetrics) -> f64 + Copy>(
    experiment: &str,
    file: &str,
    metric_label: &str,
    series: &[&MonteCarlo],
    metric: F,
) {
    println!("\nCDF of {metric_label}:");
    print!("{:>8}", "CDF");
    for mc in series {
        print!(" {:>14}", mc.name);
    }
    println!();
    let n = series.first().map(|m| m.trials.len()).unwrap_or(0);
    let sorted: Vec<Vec<f64>> = series.iter().map(|m| m.sorted(metric)).collect();
    for i in 0..n {
        print!("{:>8.3}", (i + 1) as f64 / n as f64);
        for s in &sorted {
            print!(" {:>14.6}", s[i]);
        }
        println!();
    }

    let path = output_dir(experiment).join(format!("{file}.csv"));
    if let Ok(mut f) = fs::File::create(&path) {
        let _ = write!(f, "cdf");
        for mc in series {
            let _ = write!(f, ",{}", mc.name);
        }
        let _ = writeln!(f);
        for i in 0..n {
            let _ = write!(f, "{}", (i + 1) as f64 / n as f64);
            for s in &sorted {
                let _ = write!(f, ",{}", s[i]);
            }
            let _ = writeln!(f);
        }
        println!("(csv: {})", path.display());
    }
}

/// Prints a one-row-per-algorithm summary table of metric means and
/// writes it as CSV.
pub fn print_mean_table(experiment: &str, file: &str, title: &str, series: &[&MonteCarlo]) {
    println!("\n{title}:");
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "algorithm", "norm. cost", "norm. comm", "source (s)", "server (s)"
    );
    let path = output_dir(experiment).join(format!("{file}.csv"));
    let mut csv = fs::File::create(&path).ok();
    if let Some(f) = csv.as_mut() {
        let _ = writeln!(f, "algorithm,norm_cost,norm_comm,source_s,server_s");
    }
    for mc in series {
        let cost = mc.mean(|t| t.normalized_cost);
        let comm = mc.mean(|t| t.normalized_comm);
        let src = mc.mean(|t| t.source_seconds);
        let srv = mc.mean(|t| t.server_seconds);
        println!(
            "{:<14} {:>14.4} {:>14.4e} {:>12.4} {:>12.4}",
            mc.name, cost, comm, src, srv
        );
        if let Some(f) = csv.as_mut() {
            let _ = writeln!(f, "{},{},{},{},{}", mc.name, cost, comm, src, srv);
        }
    }
    println!("(csv: {})", path.display());
}

/// Writes an arbitrary series table (e.g. quantization sweeps) as CSV and
/// prints it. `columns` are the column labels beyond the x column; `rows`
/// are `(x, values…)`.
pub fn print_series_table(
    experiment: &str,
    file: &str,
    title: &str,
    x_label: &str,
    columns: &[String],
    rows: &[(f64, Vec<f64>)],
) {
    println!("\n{title}:");
    print!("{x_label:>8}");
    for c in columns {
        print!(" {c:>14}");
    }
    println!();
    for (x, vals) in rows {
        print!("{x:>8.0}");
        for v in vals {
            print!(" {v:>14.6}");
        }
        println!();
    }
    let path = output_dir(experiment).join(format!("{file}.csv"));
    if let Ok(mut f) = fs::File::create(&path) {
        let _ = write!(f, "{x_label}");
        for c in columns {
            let _ = write!(f, ",{c}");
        }
        let _ = writeln!(f);
        for (x, vals) in rows {
            let _ = write!(f, "{x}");
            for v in vals {
                let _ = write!(f, ",{v}");
            }
            let _ = writeln!(f);
        }
        println!("(csv: {})", path.display());
    }
}

/// A minimal JSON value — the workspace carries no serde, and the perf
/// trajectory only needs objects, arrays, strings, and numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A floating-point number (non-finite values serialize as `null`).
    Num(f64),
    /// An unsigned integer (bit counts, op counts — exact, no f64 trip).
    Int(u64),
    /// A boolean (capability flags, e.g. whether epoll engaged).
    Bool(bool),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes with two-space indentation (stable key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(v) => out.push_str(&format!("{v}")),
            Json::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad);
                    Json::Str(key.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

/// Where `BENCH_micro.json` lands: `EKM_BENCH_JSON` when set (the CI
/// smoke job points it into the workspace), else `BENCH_micro.json` at
/// the workspace root (two levels above `crates/bench`).
pub fn bench_json_path() -> PathBuf {
    if let Ok(p) = std::env::var("EKM_BENCH_JSON") {
        return PathBuf::from(p);
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .map(|m| m.ancestors().nth(2).map(|p| p.to_path_buf()).unwrap_or(m))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("BENCH_micro.json")
}

/// Writes a JSON document (plus trailing newline) to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &PathBuf, doc: &Json) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", doc.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TrialMetrics;

    fn mc(name: &str, costs: &[f64]) -> MonteCarlo {
        MonteCarlo {
            name: name.into(),
            trials: costs
                .iter()
                .map(|&c| TrialMetrics {
                    normalized_cost: c,
                    normalized_comm: 0.01,
                    source_seconds: 0.1,
                    server_seconds: 0.2,
                })
                .collect(),
        }
    }

    #[test]
    fn csv_written() {
        let a = mc("A", &[1.0, 1.2, 1.1]);
        let b = mc("B", &[1.05, 1.0, 1.3]);
        print_cdfs("selftest", "cdf_test", "normalized cost", &[&a, &b], |t| {
            t.normalized_cost
        });
        let path = output_dir("selftest").join("cdf_test.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.starts_with("cdf,A,B"));
        assert_eq!(content.lines().count(), 4);

        print_mean_table("selftest", "table_test", "means", &[&a, &b]);
        let content =
            std::fs::read_to_string(output_dir("selftest").join("table_test.csv")).unwrap();
        assert!(content.contains("A,1.1"));
    }

    #[test]
    fn json_renders_and_round_trips_structure() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("test/v1".into())),
            ("bits".into(), Json::Int(u64::MAX)),
            ("rate".into(), Json::Num(0.5)),
            ("bad".into(), Json::Num(f64::NAN)),
            (
                "rows".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\n".into())]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = doc.render();
        assert!(s.contains("\"schema\": \"test/v1\""));
        assert!(s.contains(&format!("\"bits\": {}", u64::MAX)));
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"a\\\"b\\n\""));
        assert!(s.contains("\"empty\": []"));
        let path = output_dir("selftest").join("json_test.json");
        write_json(&path, &doc).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.ends_with("}\n"));
    }

    #[test]
    fn bench_json_path_honors_env_override() {
        // Note: avoid set_var races by only reading the default here.
        let p = bench_json_path();
        assert!(p.to_string_lossy().ends_with("BENCH_micro.json"));
    }

    #[test]
    fn series_table_written() {
        print_series_table(
            "selftest",
            "series_test",
            "sweep",
            "s",
            &["m1".into()],
            &[(1.0, vec![0.5]), (2.0, vec![0.7])],
        );
        let content =
            std::fs::read_to_string(output_dir("selftest").join("series_test.csv")).unwrap();
        assert!(content.contains("s,m1"));
        assert!(content.contains("2,0.7"));
    }
}
