//! Monte-Carlo trial runners for centralized and distributed pipelines.

use ekm_core::distributed::DistributedPipeline;
use ekm_core::evaluation::{normalized_cost, reference, Reference};
use ekm_core::params::SummaryParams;
use ekm_core::pipelines::CentralizedPipeline;
use ekm_linalg::Matrix;
use ekm_net::Network;

/// Metrics of one pipeline trial — the three quantities §7.1 evaluates.
#[derive(Debug, Clone, Copy)]
pub struct TrialMetrics {
    /// `cost(P, X)/cost(P, X*)`.
    pub normalized_cost: f64,
    /// Transmitted bits over raw-dataset bits.
    pub normalized_comm: f64,
    /// Data-source computation seconds.
    pub source_seconds: f64,
    /// Server computation seconds.
    pub server_seconds: f64,
}

/// Aggregate of a Monte-Carlo series.
#[derive(Debug, Clone)]
pub struct MonteCarlo {
    /// Pipeline display name.
    pub name: String,
    /// Per-trial metrics (one per seed).
    pub trials: Vec<TrialMetrics>,
}

impl MonteCarlo {
    /// Mean of a metric selected by `f`.
    pub fn mean<F: Fn(&TrialMetrics) -> f64>(&self, f: F) -> f64 {
        if self.trials.is_empty() {
            return f64::NAN;
        }
        self.trials.iter().map(&f).sum::<f64>() / self.trials.len() as f64
    }

    /// The sorted values of a metric (for CDF output).
    pub fn sorted<F: Fn(&TrialMetrics) -> f64>(&self, f: F) -> Vec<f64> {
        let mut v: Vec<f64> = self.trials.iter().map(&f).collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite metric"));
        v
    }
}

/// Computes the experiment's reference solution (`X*` proxy).
pub fn make_reference(data: &Matrix, k: usize) -> Reference {
    reference(data, k, 5, 0xEC0).expect("reference solve")
}

/// Runs `mc` Monte-Carlo trials of a centralized pipeline built per-seed
/// by `factory`.
pub fn run_centralized_mc<F>(
    data: &Matrix,
    reference: &Reference,
    mc: usize,
    base_params: &SummaryParams,
    factory: F,
) -> MonteCarlo
where
    F: Fn(SummaryParams) -> Box<dyn CentralizedPipeline>,
{
    let (n, d) = data.shape();
    let mut trials = Vec::with_capacity(mc);
    let mut name = String::new();
    for run in 0..mc {
        let params = base_params.clone().with_seed(0x5EED + 7919 * run as u64);
        let pipe = factory(params);
        if run == 0 {
            name = pipe.name();
        }
        let mut net = Network::new(1);
        let out = pipe.run(data, &mut net).expect("pipeline run");
        trials.push(TrialMetrics {
            normalized_cost: normalized_cost(data, &out.centers, reference.cost)
                .expect("cost evaluation"),
            normalized_comm: out.normalized_comm(n, d),
            source_seconds: out.source_seconds,
            server_seconds: out.server_seconds,
        });
    }
    MonteCarlo { name, trials }
}

/// Runs `mc` Monte-Carlo trials of a distributed pipeline over `shards`.
pub fn run_distributed_mc<F>(
    data: &Matrix,
    shards: &[Matrix],
    reference: &Reference,
    mc: usize,
    base_params: &SummaryParams,
    factory: F,
) -> MonteCarlo
where
    F: Fn(SummaryParams) -> Box<dyn DistributedPipeline>,
{
    let (n, d) = data.shape();
    let mut trials = Vec::with_capacity(mc);
    let mut name = String::new();
    for run in 0..mc {
        let params = base_params.clone().with_seed(0xD157 + 104729 * run as u64);
        let pipe = factory(params);
        if run == 0 {
            name = pipe.name();
        }
        let mut net = Network::new(shards.len());
        let out = pipe.run(shards, &mut net).expect("pipeline run");
        trials.push(TrialMetrics {
            normalized_cost: normalized_cost(data, &out.centers, reference.cost)
                .expect("cost evaluation"),
            normalized_comm: out.normalized_comm(n, d),
            source_seconds: out.source_seconds,
            server_seconds: out.server_seconds,
        });
    }
    MonteCarlo { name, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_core::pipelines::JlFss;

    #[test]
    fn centralized_mc_collects_trials() {
        let raw = ekm_data::synth::GaussianMixture::new(300, 20, 2)
            .with_separation(4.0)
            .with_seed(1)
            .generate()
            .unwrap()
            .points;
        let data = ekm_data::normalize::normalize_paper(&raw).0;
        let reference = make_reference(&data, 2);
        let params = SummaryParams::practical(2, 300, 20);
        let mc = run_centralized_mc(&data, &reference, 3, &params, |p| Box::new(JlFss::new(p)));
        assert_eq!(mc.trials.len(), 3);
        assert_eq!(mc.name, "JL+FSS");
        assert!(mc.mean(|t| t.normalized_cost) > 0.5);
        let sorted = mc.sorted(|t| t.normalized_cost);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }
}
