//! Shared infrastructure for the experiment harnesses in `benches/`.
//!
//! Every table and figure of the paper's evaluation (§7) has a dedicated
//! `harness = false` bench target that uses these helpers to generate the
//! workload, run Monte-Carlo trials, and print the same rows/series the
//! paper reports (plus CSV files under `target/ekm-exp/`).
//!
//! Environment knobs:
//!
//! * `EKM_SCALE` — `small` (default; minutes for the whole suite) or
//!   `full` (the paper's 60000×784 / 11463×5812 shapes; hours).
//! * `EKM_MC` — Monte-Carlo repetitions (default 10, like the paper).
//! * `EKM_MNIST_DIR` — directory with the real `train-images-idx3-ubyte`;
//!   when set, the MNIST workload uses it instead of the synthetic
//!   stand-in.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod datasets;
pub mod qt_sweep;
pub mod report;
pub mod runner;
