//! Experiment-scale configuration from environment variables.

/// Scale of the experiment datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced shapes that finish the whole suite in minutes (default).
    Small,
    /// The paper's shapes (60000×784 MNIST, 11463×5812 NeurIPS).
    Full,
}

impl Scale {
    /// Reads `EKM_SCALE` (`small`/`full`, case-insensitive).
    pub fn from_env() -> Scale {
        match std::env::var("EKM_SCALE") {
            Ok(v) if v.eq_ignore_ascii_case("full") => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// MNIST-workload shape `(n, side)` at this scale.
    pub fn mnist_shape(&self) -> (usize, usize) {
        match self {
            Scale::Small => (2_000, 14),
            Scale::Full => (60_000, 28),
        }
    }

    /// NeurIPS-workload shape `(n_words, n_papers)` at this scale.
    pub fn neurips_shape(&self) -> (usize, usize) {
        match self {
            Scale::Small => (1_500, 500),
            Scale::Full => (11_463, 5_812),
        }
    }
}

/// Monte-Carlo repetitions: `EKM_MC`, default `default` (the paper uses
/// 10).
pub fn monte_carlo_runs(default: usize) -> usize {
    std::env::var("EKM_MC")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(default)
}

/// The number of data sources in the distributed experiments (paper: 10).
pub const DISTRIBUTED_SOURCES: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_at_full_scale() {
        assert_eq!(Scale::Full.mnist_shape(), (60_000, 28));
        assert_eq!(Scale::Full.neurips_shape(), (11_463, 5_812));
        let (n, side) = Scale::Small.mnist_shape();
        assert!(n >= 1000 && side * side >= 100);
    }

    #[test]
    fn mc_default() {
        // Without EKM_MC set (test env), the default flows through.
        if std::env::var("EKM_MC").is_err() {
            assert_eq!(monte_carlo_runs(7), 7);
        }
    }
}
