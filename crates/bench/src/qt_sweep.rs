//! Shared driver for the quantization sweeps (paper Figures 3–6).
//!
//! For each significant-bit count `s` the driver builds the `+QT` variant
//! of every pipeline, runs Monte-Carlo trials, and records the three
//! per-panel metrics: normalized k-means cost (panel a), normalized
//! communication cost (panel b), and source running time (panel c).
//! `s = 53` denotes the unquantized configuration (the paper's right-most
//! points).

use crate::config::monte_carlo_runs;
use crate::report;
use crate::runner::{make_reference, run_centralized_mc, run_distributed_mc};
use ekm_core::distributed::{Bklw, DistributedPipeline, JlBklw};
use ekm_core::params::SummaryParams;
use ekm_core::pipelines::{CentralizedPipeline, Fss, FssJl, JlFss, JlFssJl};
use ekm_linalg::Matrix;
use ekm_quant::RoundingQuantizer;

/// The default sweep grid: dense at small `s` (where the paper's curves
/// move), sparse after, with 53 = no quantization.
pub fn default_grid() -> Vec<u32> {
    vec![1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 26, 32, 40, 46, 52, 53]
}

fn with_quantizer(base: &SummaryParams, s: u32) -> SummaryParams {
    if s >= 53 {
        base.clone().without_quantizer()
    } else {
        base.clone()
            .with_quantizer(RoundingQuantizer::new(s).expect("grid s valid"))
    }
}

/// Runs the single-source sweep (Figures 3 and 4) and prints/writes the
/// three panels.
pub fn run_centralized_sweep(experiment: &str, dataset_name: &str, data: &Matrix) {
    let (n, d) = data.shape();
    let mc = monte_carlo_runs(3);
    report::banner(&format!(
        "{experiment}: single-source DR+CR+QT sweep on {dataset_name} ({n} x {d}), {mc} MC runs"
    ));
    let reference = make_reference(data, 2);
    let base = SummaryParams::practical(2, n, d);

    type Factory = fn(SummaryParams) -> Box<dyn CentralizedPipeline>;
    let algorithms: Vec<(&str, Factory)> = vec![
        ("FSS+QT", |p| Box::new(Fss::new(p))),
        ("JL+FSS+QT", |p| Box::new(JlFss::new(p))),
        ("FSS+JL+QT", |p| Box::new(FssJl::new(p))),
        ("JL+FSS+JL+QT", |p| Box::new(JlFssJl::new(p))),
    ];

    let columns: Vec<String> = algorithms.iter().map(|(name, _)| (*name).into()).collect();
    let mut cost_rows = Vec::new();
    let mut comm_rows = Vec::new();
    let mut time_rows = Vec::new();
    for &s in &default_grid() {
        let mut costs = Vec::new();
        let mut comms = Vec::new();
        let mut times = Vec::new();
        for (_, factory) in &algorithms {
            let params = with_quantizer(&base, s);
            let mc_result = run_centralized_mc(data, &reference, mc, &params, factory);
            costs.push(mc_result.mean(|t| t.normalized_cost));
            comms.push(mc_result.mean(|t| t.normalized_comm));
            times.push(mc_result.mean(|t| t.source_seconds));
        }
        cost_rows.push((s as f64, costs));
        comm_rows.push((s as f64, comms));
        time_rows.push((s as f64, times));
    }
    print_panels(experiment, &columns, &cost_rows, &comm_rows, &time_rows);
}

/// Runs the multi-source sweep (Figures 5 and 6).
pub fn run_distributed_sweep(
    experiment: &str,
    dataset_name: &str,
    data: &Matrix,
    shards: &[Matrix],
) {
    let (n, d) = data.shape();
    let mc = monte_carlo_runs(3);
    report::banner(&format!(
        "{experiment}: multi-source DR+CR+QT sweep on {dataset_name} ({n} x {d}, m = {}), {mc} MC runs",
        shards.len()
    ));
    let reference = make_reference(data, 2);
    let base = SummaryParams::practical(2, n, d);

    type Factory = fn(SummaryParams) -> Box<dyn DistributedPipeline>;
    let algorithms: Vec<(&str, Factory)> = vec![
        ("BKLW+QT", |p| Box::new(Bklw::new(p))),
        ("JL+BKLW+QT", |p| Box::new(JlBklw::new(p))),
    ];

    let columns: Vec<String> = algorithms.iter().map(|(name, _)| (*name).into()).collect();
    let mut cost_rows = Vec::new();
    let mut comm_rows = Vec::new();
    let mut time_rows = Vec::new();
    for &s in &default_grid() {
        let mut costs = Vec::new();
        let mut comms = Vec::new();
        let mut times = Vec::new();
        for (_, factory) in &algorithms {
            let params = with_quantizer(&base, s);
            let mc_result = run_distributed_mc(data, shards, &reference, mc, &params, factory);
            costs.push(mc_result.mean(|t| t.normalized_cost));
            comms.push(mc_result.mean(|t| t.normalized_comm));
            times.push(mc_result.mean(|t| t.source_seconds));
        }
        cost_rows.push((s as f64, costs));
        comm_rows.push((s as f64, comms));
        time_rows.push((s as f64, times));
    }
    print_panels(experiment, &columns, &cost_rows, &comm_rows, &time_rows);
}

fn print_panels(
    experiment: &str,
    columns: &[String],
    cost_rows: &[(f64, Vec<f64>)],
    comm_rows: &[(f64, Vec<f64>)],
    time_rows: &[(f64, Vec<f64>)],
) {
    report::print_series_table(
        experiment,
        "panel_a_cost",
        "Panel (a): normalized k-means cost vs significant bits s (53 = no QT)",
        "s",
        columns,
        cost_rows,
    );
    report::print_series_table(
        experiment,
        "panel_b_comm",
        "Panel (b): normalized communication cost vs s",
        "s",
        columns,
        comm_rows,
    );
    report::print_series_table(
        experiment,
        "panel_c_time",
        "Panel (c): source running time (s) vs s",
        "s",
        columns,
        time_rows,
    );
    println!("\nExpected shapes (paper): communication grows ~linearly in s; cost is");
    println!("flat for moderate-to-large s and may degrade for very small s; time is");
    println!("insensitive to s. Suitably small s cuts bits without hurting cost.");
}
