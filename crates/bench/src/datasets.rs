//! Workload construction for the experiment harnesses.

use crate::config::Scale;
use ekm_data::mnist_like::MnistLike;
use ekm_data::neurips_like::NeurIpsLike;
use ekm_data::normalize::normalize_paper;
use ekm_linalg::Matrix;

/// A named, normalized experiment workload.
pub struct Workload {
    /// Display name ("MNIST"-like or "NeurIPS"-like).
    pub name: &'static str,
    /// Normalized data (zero mean, `[-1, 1]`).
    pub data: Matrix,
}

/// Builds the MNIST workload: the real dataset when `EKM_MNIST_DIR` is
/// set and readable, the synthetic stand-in otherwise (DESIGN.md
/// "Substitutions").
pub fn mnist_workload(scale: Scale, seed: u64) -> Workload {
    if let Ok(dir) = std::env::var("EKM_MNIST_DIR") {
        if let Ok(raw) = ekm_data::idx::load_mnist_train_images(&dir) {
            let (n, _) = raw.shape();
            let keep = match scale {
                Scale::Full => n,
                Scale::Small => n.min(2_000),
            };
            let subset = raw.select_rows(&(0..keep).collect::<Vec<_>>());
            let (data, _) = normalize_paper(&subset);
            return Workload {
                name: "MNIST(real)",
                data,
            };
        }
        eprintln!("warning: EKM_MNIST_DIR set but unreadable; using the synthetic stand-in");
    }
    let (n, side) = scale.mnist_shape();
    let ds = MnistLike::new(n, side)
        .with_seed(seed)
        .generate()
        .expect("valid generator parameters");
    Workload {
        name: "MNIST-like",
        data: normalize_paper(&ds.points).0,
    }
}

/// Builds the NeurIPS word-count workload (synthetic stand-in).
pub fn neurips_workload(scale: Scale, seed: u64) -> Workload {
    let (n, d) = scale.neurips_shape();
    let ds = NeurIpsLike::new(n, d)
        .with_seed(seed)
        .generate()
        .expect("valid generator parameters");
    Workload {
        name: "NeurIPS-like",
        data: normalize_paper(&ds.points).0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workloads_have_expected_shapes() {
        let m = mnist_workload(Scale::Small, 1);
        if m.name == "MNIST-like" {
            assert_eq!(m.data.shape(), (2_000, 196));
        }
        let w = neurips_workload(Scale::Small, 1);
        assert_eq!(w.data.shape(), (1_500, 500));
        // Normalized.
        assert!(w.data.mean_row().iter().all(|v| v.abs() < 1e-9));
    }
}
