//! Property-based tests for the rounding quantizer and the §6.3 optimizer.

use ekm_quant::config::QtOptimizer;
use ekm_quant::rounding::{RoundingQuantizer, STORED_SIGNIFICAND_BITS};
use proptest::prelude::*;

fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![-1.0e12f64..1.0e12, -1.0f64..1.0, -1.0e-12f64..1.0e-12,]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Paper eq. (14) per element: |x − Γ(x)| ≤ |x|·2^{-s}.
    #[test]
    fn relative_error_bound(x in finite_f64(), s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let y = q.quantize(x);
        prop_assert!((x - y).abs() <= x.abs() * 2f64.powi(-(s as i32)) * (1.0 + 1e-12));
    }

    /// Γ is idempotent: Γ(Γ(x)) = Γ(x).
    #[test]
    fn idempotent(x in finite_f64(), s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let y = q.quantize(x);
        prop_assert_eq!(q.quantize(y).to_bits(), y.to_bits());
    }

    /// Γ preserves sign and zero.
    #[test]
    fn sign_preserving(x in finite_f64(), s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let y = q.quantize(x);
        if x > 0.0 {
            prop_assert!(y >= 0.0);
        } else if x < 0.0 {
            prop_assert!(y <= 0.0);
        } else {
            prop_assert_eq!(y, 0.0);
        }
    }

    /// Γ is monotone: x ≤ y ⇒ Γ(x) ≤ Γ(y).
    #[test]
    fn monotone(a in finite_f64(), b in finite_f64(), s in 1u32..=52) {
        let q = RoundingQuantizer::new(s).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// The result always fits the advertised bit budget: the dropped
    /// significand bits are zero.
    #[test]
    fn fits_bit_budget(x in finite_f64(), s in 1u32..=51) {
        let q = RoundingQuantizer::new(s).unwrap();
        let y = q.quantize(x);
        if y != 0.0 && y.is_finite() {
            let drop = STORED_SIGNIFICAND_BITS - s;
            prop_assert_eq!(y.to_bits() & ((1u64 << drop) - 1), 0);
        }
    }

    /// Quantization error shrinks (weakly) as s grows.
    #[test]
    fn error_monotone_in_s(x in finite_f64()) {
        let mut last = f64::INFINITY;
        for s in [1u32, 2, 4, 8, 16, 32, 52] {
            let q = RoundingQuantizer::new(s).unwrap();
            let err = (x - q.quantize(x)).abs();
            prop_assert!(err <= last * (1.0 + 1e-12) + f64::MIN_POSITIVE);
            last = err;
        }
    }

    /// The error-bound function Y(ε, ε_QT) of (21b) is monotone in both
    /// arguments and exceeds 1.
    #[test]
    fn error_bound_monotone(e1 in 0.0f64..0.8, e2 in 0.0f64..0.8, q in 0.0f64..2.0) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(QtOptimizer::error_bound(lo, q) <= QtOptimizer::error_bound(hi, q) + 1e-12);
        prop_assert!(QtOptimizer::error_bound(lo, q) >= 1.0);
        prop_assert!(
            QtOptimizer::error_bound(lo, q) <= QtOptimizer::error_bound(lo, q + 0.1) + 1e-12
        );
    }

    /// Feasible ε from bisection is on the boundary: Y(ε*) ≤ Y0 but
    /// Y(ε* + δ) > Y0 (when ε* is interior).
    #[test]
    fn bisection_is_tight(y0 in 1.05f64..10.0, eqt in 0.0f64..0.5) {
        let opt = QtOptimizer {
            n: 1000, d: 100, k: 2,
            y0,
            delta0: 0.1,
            lower_bound_e: 1.0,
            diameter: 10.0,
            max_norm: 5.0,
        };
        if let Some(eps) = opt.max_feasible_epsilon(eqt) {
            prop_assert!(QtOptimizer::error_bound(eps, eqt) <= y0 * (1.0 + 1e-9));
            if eps < 0.999 {
                prop_assert!(QtOptimizer::error_bound(eps + 1e-4, eqt) > y0 * (1.0 - 1e-9));
            }
        } else {
            // Infeasible means even ε = 0 violates the bound.
            prop_assert!(QtOptimizer::error_bound(0.0, eqt) > y0);
        }
    }
}
