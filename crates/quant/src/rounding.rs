//! The rounding-based quantizer Γ of paper eq. (13).
//!
//! IEEE-754 `f64` stores `sign(1) | exponent(11) | significand(52)`. The
//! quantizer keeps the leading `s` stored significand bits (the implicit
//! leading 1 is `a(0)` in the paper's notation) and rounds the remaining
//! `52 − s` bits to nearest (ties away from zero), operating directly on
//! the bit representation so the result is exactly representable in
//! `1 + 11 + s` bits.

use crate::{QuantError, Result};
use ekm_linalg::Matrix;

/// Number of exponent bits in an IEEE-754 double (`m_e` in the paper).
pub const EXPONENT_BITS: u32 = 11;

/// Number of *stored* significand bits in an IEEE-754 double.
pub const STORED_SIGNIFICAND_BITS: u32 = 52;

/// Total bits of an unquantized double (the paper's `b₀ = 64`).
pub const FULL_SCALAR_BITS: u32 = 64;

/// The rounding-based quantizer Γ with `s` significant bits.
///
/// # Example
///
/// ```
/// use ekm_quant::RoundingQuantizer;
///
/// let q = RoundingQuantizer::new(8).unwrap();
/// let x = 0.123456789;
/// let y = q.quantize(x);
/// // Relative error bounded by 2^-8 (paper eq. (14)).
/// assert!((x - y).abs() <= x.abs() * 2f64.powi(-8));
/// // The quantized value costs 1 + 11 + 8 = 20 bits on the wire.
/// assert_eq!(q.bits_per_scalar(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RoundingQuantizer {
    s: u32,
}

impl RoundingQuantizer {
    /// Creates a quantizer keeping `s` stored significand bits.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidBits`] unless `1 ≤ s ≤ 52` (`s = 52` is
    /// the identity on normal doubles; the paper's "s = 53" no-quantization
    /// configuration is represented by not using a quantizer at all).
    pub fn new(s: u32) -> Result<Self> {
        if s == 0 || s > STORED_SIGNIFICAND_BITS {
            return Err(QuantError::InvalidBits { s });
        }
        Ok(RoundingQuantizer { s })
    }

    /// Number of significand bits retained.
    pub fn significant_bits(&self) -> u32 {
        self.s
    }

    /// Wire width of one quantized scalar: `1 + 11 + s` bits (sign,
    /// exponent, stored significand).
    pub fn bits_per_scalar(&self) -> u32 {
        1 + EXPONENT_BITS + self.s
    }

    /// Quantizes one scalar.
    ///
    /// Zero, infinities, and NaN pass through unchanged; subnormals are
    /// rounded in their storage format (which only shrinks their
    /// magnitude error). Rounding is to nearest, ties away from zero; a
    /// carry out of the significand correctly bumps the exponent
    /// (e.g. `1.111…·2^e → 1.0·2^{e+1}`).
    pub fn quantize(&self, x: f64) -> f64 {
        if self.s == STORED_SIGNIFICAND_BITS || x == 0.0 || !x.is_finite() {
            return x;
        }
        let bits = x.to_bits();
        let sign = bits & (1u64 << 63);
        let magnitude = bits & !(1u64 << 63);
        let drop = STORED_SIGNIFICAND_BITS - self.s;
        // Round-half-away-from-zero on the magnitude: the IEEE encoding of
        // the magnitude is monotone in its bit pattern, so integer
        // arithmetic implements rounding, including exponent carries.
        let half = 1u64 << (drop - 1);
        let rounded = magnitude.saturating_add(half) & !((1u64 << drop) - 1);
        // A carry into/through the exponent field is valid rounding unless
        // it overflows to infinity; saturate at the largest representable
        // quantized value in that case.
        let clamped = if f64::from_bits(rounded).is_infinite() {
            let max_exp_bits = (0x7FEu64) << STORED_SIGNIFICAND_BITS;
            max_exp_bits | (((1u64 << self.s) - 1) << drop)
        } else {
            rounded
        };
        f64::from_bits(sign | clamped)
    }

    /// Quantizes every element of a slice into a new vector.
    pub fn quantize_slice(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Quantizes every entry of a matrix.
    pub fn quantize_matrix(&self, m: &Matrix) -> Matrix {
        m.map(|x| self.quantize(x))
    }

    /// The paper's worst-case quantization error bound (14):
    /// `Δ_QT ≤ 2^{-s} · max_norm` where `max_norm = max_{p∈P} ‖p‖`.
    pub fn max_error_bound(&self, max_norm: f64) -> f64 {
        2f64.powi(-(self.s as i32)) * max_norm
    }

    /// Measures the actual maximum point-wise ℓ2 quantization error over
    /// the rows of `m` (`max_p ‖p − Γ(p)‖`).
    pub fn measured_max_error(&self, m: &Matrix) -> f64 {
        let mut worst = 0.0f64;
        for row in m.iter_rows() {
            let mut acc = 0.0;
            for &v in row {
                let d = v - self.quantize(v);
                acc += d * d;
            }
            worst = worst.max(acc);
        }
        worst.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_bit_counts_rejected() {
        assert!(matches!(
            RoundingQuantizer::new(0),
            Err(QuantError::InvalidBits { s: 0 })
        ));
        assert!(RoundingQuantizer::new(53).is_err());
        assert!(RoundingQuantizer::new(1).is_ok());
        assert!(RoundingQuantizer::new(52).is_ok());
    }

    #[test]
    fn s52_is_identity() {
        let q = RoundingQuantizer::new(52).unwrap();
        for &x in &[0.1, -3.7, 1e300, -1e-300, std::f64::consts::PI] {
            assert_eq!(q.quantize(x), x);
        }
    }

    #[test]
    fn special_values_pass_through() {
        let q = RoundingQuantizer::new(4).unwrap();
        assert_eq!(q.quantize(0.0), 0.0);
        assert_eq!(q.quantize(-0.0), -0.0);
        assert_eq!(q.quantize(f64::INFINITY), f64::INFINITY);
        assert_eq!(q.quantize(f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert!(q.quantize(f64::NAN).is_nan());
    }

    #[test]
    fn relative_error_bound_holds() {
        // |x − Γ(x)| ≤ |x|·2^{-s} (paper's per-element bound).
        for s in [1u32, 2, 4, 8, 16, 24, 32, 48] {
            let q = RoundingQuantizer::new(s).unwrap();
            let mut rng = ekm_linalg::random::rng_from_seed(s as u64);
            use rand::Rng;
            for _ in 0..2000 {
                let x: f64 = (rng.gen::<f64>() - 0.5) * 10f64.powi(rng.gen_range(-20..20));
                let y = q.quantize(x);
                let bound = x.abs() * 2f64.powi(-(s as i32));
                assert!(
                    (x - y).abs() <= bound * (1.0 + 1e-12),
                    "s={s} x={x} y={y} err={} bound={bound}",
                    (x - y).abs()
                );
            }
        }
    }

    #[test]
    fn rounding_is_to_nearest() {
        let q = RoundingQuantizer::new(1).unwrap();
        // With 1 stored bit, representable significands are 1.0 and 1.5.
        // 1.2 → 1.0 (nearer), 1.3 → 1.25? no: 1.3 is between 1.25? With
        // s=1 the grid in [1,2) is {1.0, 1.5}: 1.2 → 1.0, 1.3 → 1.5.
        assert_eq!(q.quantize(1.2), 1.0);
        assert_eq!(q.quantize(1.3), 1.5);
        assert_eq!(q.quantize(-1.2), -1.0);
        assert_eq!(q.quantize(-1.3), -1.5);
        // Tie 1.25 rounds away from zero → 1.5.
        assert_eq!(q.quantize(1.25), 1.5);
    }

    #[test]
    fn carry_into_exponent() {
        let q = RoundingQuantizer::new(2).unwrap();
        // 1.9375 = 1.1111₂; with 2 stored bits the grid is
        // {1.0, 1.25, 1.5, 1.75, 2.0(carry)}; nearest is 2.0.
        assert_eq!(q.quantize(1.9375), 2.0);
    }

    #[test]
    fn overflow_saturates_not_infinite() {
        let q = RoundingQuantizer::new(2).unwrap();
        let near_max = f64::MAX; // 1.111…·2^1023 rounds up → would overflow
        let y = q.quantize(near_max);
        assert!(y.is_finite(), "quantizer produced {y}");
        assert!(y > 0.0);
    }

    #[test]
    fn result_fits_in_s_bits() {
        // After quantization the low 52−s significand bits must be zero.
        for s in [1u32, 3, 7, 13, 29] {
            let q = RoundingQuantizer::new(s).unwrap();
            let drop = STORED_SIGNIFICAND_BITS - s;
            let mask = (1u64 << drop) - 1;
            let mut rng = ekm_linalg::random::rng_from_seed(100 + s as u64);
            use rand::Rng;
            for _ in 0..500 {
                let x: f64 = rng.gen::<f64>() * 2000.0 - 1000.0;
                let y = q.quantize(x);
                assert_eq!(y.to_bits() & mask, 0, "s={s} x={x} y={y}");
            }
        }
    }

    #[test]
    fn idempotent() {
        let q = RoundingQuantizer::new(6).unwrap();
        let mut rng = ekm_linalg::random::rng_from_seed(7);
        use rand::Rng;
        for _ in 0..500 {
            let x: f64 = rng.gen::<f64>() * 100.0 - 50.0;
            let y = q.quantize(x);
            assert_eq!(q.quantize(y), y, "not idempotent at {x}");
        }
    }

    #[test]
    fn more_bits_never_less_accurate() {
        let mut rng = ekm_linalg::random::rng_from_seed(8);
        use rand::Rng;
        for _ in 0..200 {
            let x: f64 = rng.gen::<f64>() * 10.0 - 5.0;
            let mut last = f64::INFINITY;
            for s in [2u32, 8, 20, 40] {
                let err = (x - RoundingQuantizer::new(s).unwrap().quantize(x)).abs();
                assert!(err <= last + f64::EPSILON, "error grew at s={s}");
                last = err;
            }
        }
    }

    #[test]
    fn bits_per_scalar_formula() {
        assert_eq!(RoundingQuantizer::new(1).unwrap().bits_per_scalar(), 13);
        assert_eq!(RoundingQuantizer::new(52).unwrap().bits_per_scalar(), 64);
        assert_eq!(RoundingQuantizer::new(20).unwrap().significant_bits(), 20);
    }

    #[test]
    fn matrix_error_bound_eq14() {
        // Δ_QT = max_p ‖p − Γ(p)‖ ≤ 2^{-s}·max_p ‖p‖.
        let m = Matrix::from_fn(50, 10, |i, j| ((i * 13 + j * 7) as f64).sin() * 3.0);
        for s in [2u32, 5, 9, 17] {
            let q = RoundingQuantizer::new(s).unwrap();
            let measured = q.measured_max_error(&m);
            let bound = q.max_error_bound(m.max_row_norm());
            assert!(
                measured <= bound * (1.0 + 1e-12),
                "s={s}: measured {measured} > bound {bound}"
            );
        }
    }

    #[test]
    fn quantize_slice_and_matrix_consistent() {
        let q = RoundingQuantizer::new(5).unwrap();
        let m = Matrix::from_fn(3, 4, |i, j| (i as f64 + 0.37) * (j as f64 - 1.21));
        let qm = q.quantize_matrix(&m);
        for i in 0..3 {
            assert_eq!(q.quantize_slice(m.row(i)), qm.row(i).to_vec());
        }
    }

    #[test]
    fn subnormals_handled() {
        let q = RoundingQuantizer::new(4).unwrap();
        let tiny = f64::MIN_POSITIVE / 8.0; // subnormal
        let y = q.quantize(tiny);
        assert!(y.is_finite());
        assert!((y - tiny).abs() <= tiny); // error no larger than the value
    }
}
