use std::error::Error;
use std::fmt;

/// Errors produced by quantization routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantError {
    /// Requested significant-bit count outside `1..=52`.
    InvalidBits {
        /// The requested count.
        s: u32,
    },
    /// A configuration parameter is out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation.
        reason: &'static str,
    },
    /// No quantizer configuration can satisfy the requested error bound.
    Infeasible {
        /// The requested bound on the approximation ratio.
        target: f64,
        /// The smallest achievable approximation ratio over all `s`.
        best_achievable: f64,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::InvalidBits { s } => {
                write!(f, "significant bits s={s} outside the valid range 1..=52")
            }
            QuantError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            QuantError::Infeasible {
                target,
                best_achievable,
            } => write!(
                f,
                "no configuration achieves approximation bound {target} (best achievable {best_achievable})"
            ),
        }
    }
}

impl Error for QuantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QuantError::InvalidBits { s: 60 }.to_string().contains("60"));
        assert!(QuantError::InvalidParameter {
            name: "epsilon",
            reason: "must be positive"
        }
        .to_string()
        .contains("epsilon"));
        let e = QuantError::Infeasible {
            target: 1.1,
            best_achievable: 1.5,
        };
        assert!(e.to_string().contains("1.1"));
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<QuantError>();
    }
}
