//! Quantization (QT) for the `edge-kmeans` workspace — paper Section 6.
//!
//! * [`rounding`] — the rounding-based quantizer Γ of eq. (13): keep `s`
//!   significant bits of the IEEE-754 double representation, round the
//!   rest. Implemented bit-exactly on the `f64` encoding, with the error
//!   bound of eq. (14) (`Δ_QT ≤ 2^{-s}·max‖p‖`).
//! * [`config`] — the §6.3 joint DR/CR/QT configuration optimizer: choose
//!   the number of significant bits `s` (and the matching ε) minimizing the
//!   modeled communication cost (24) subject to the approximation-error
//!   constraint (21b), using the paper's explicit constants
//!   `C1 = 54912(1+log₂3)(1+log₂(26/3))/225`, `C2 = 24`, `C3 = 2`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
mod error;
pub mod rounding;

pub use config::{QtConfigReport, QtOptimizer};
pub use error::QuantError;
pub use rounding::RoundingQuantizer;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, QuantError>;
