//! Joint DR/CR/QT configuration (paper §6.3).
//!
//! Given a bound `Y₀` on the approximation ratio and a confidence `1 − δ₀`,
//! the optimizer enumerates every significant-bit count `s`, computes the
//! largest ε (with `ε₁⁽¹⁾ = ε₂ = ε₁⁽²⁾ = ε`, the paper's simplification)
//! satisfying the error constraint (21b), evaluates the communication-cost
//! model (24), and returns the configuration minimizing it.
//!
//! Constants from §6.3.2 (for `k ≥ 2`):
//! `C1 = 54912·(1+log₂3)·(1+log₂(26/3))/225`, `C2 = 24`, `C3 = 2`.

use crate::rounding::{RoundingQuantizer, STORED_SIGNIFICAND_BITS};
use crate::{QuantError, Result};

/// The paper's explicit constant `C1` (coreset-cardinality constant of FSS
/// instantiated with the sampling bounds of \[23\], \[37\], \[38\]).
pub fn c1_constant() -> f64 {
    54912.0 * (1.0 + 3f64.log2()) * (1.0 + (26.0 / 3.0f64).log2()) / 225.0
}

/// The paper's explicit constant `C2` (JL dimension constant).
pub const C2_CONSTANT: f64 = 24.0;

/// The paper's explicit constant `C3` (precision constant).
pub const C3_CONSTANT: f64 = 2.0;

/// Problem instance for the §6.3 optimizer.
#[derive(Debug, Clone)]
pub struct QtOptimizer {
    /// Dataset cardinality `n`.
    pub n: usize,
    /// Dataset dimensionality `d`.
    pub d: usize,
    /// Number of clusters `k`.
    pub k: usize,
    /// Desired bound `Y₀ > 1` on `cost(P,X)/cost(P,X*)`.
    pub y0: f64,
    /// Desired overall failure probability `δ₀ ∈ (0,1)`.
    pub delta0: f64,
    /// Lower bound `E ≤ cost(P, X*)` (§6.3.1; see
    /// `ekm_clustering::lower_bound`).
    pub lower_bound_e: f64,
    /// Diameter `Δ_D` of the input space.
    pub diameter: f64,
    /// Maximum point norm `max_{p∈P} ‖p‖` (drives eq. (14)).
    pub max_norm: f64,
}

/// One row of the optimizer's per-`s` evaluation.
#[derive(Debug, Clone, Copy)]
pub struct QtCandidate {
    /// Significant bits retained by the quantizer.
    pub s: u32,
    /// Quantization error bound `Δ_QT = 2^{-s}·max‖p‖` (eq. (14)).
    pub delta_qt: f64,
    /// Multiplicative error contribution `ε_QT = 4nΔ_DΔ_QT/E` (§6.3.1).
    pub epsilon_qt: f64,
    /// Largest feasible ε under constraint (21b), if any.
    pub epsilon: Option<f64>,
    /// Modeled communication cost (24), if feasible.
    pub comm_cost: Option<f64>,
}

/// Result of the §6.3 configuration search.
#[derive(Debug, Clone)]
pub struct QtConfigReport {
    /// All evaluated candidates, `s = 1..=52` in order.
    pub candidates: Vec<QtCandidate>,
    /// Index into `candidates` of the cost-minimizing feasible choice.
    pub best_index: usize,
    /// The per-stage failure probability `δ = 1 − (1 − δ₀)^{1/3}`.
    pub delta: f64,
}

impl QtConfigReport {
    /// The winning candidate.
    pub fn best(&self) -> &QtCandidate {
        &self.candidates[self.best_index]
    }

    /// Builds the quantizer for the winning candidate.
    pub fn best_quantizer(&self) -> RoundingQuantizer {
        RoundingQuantizer::new(self.best().s).expect("winning s is valid")
    }
}

impl QtOptimizer {
    /// Validates the instance.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for out-of-range fields.
    pub fn validate(&self) -> Result<()> {
        if self.n == 0 || self.d == 0 || self.k == 0 {
            return Err(QuantError::InvalidParameter {
                name: "n/d/k",
                reason: "must be positive",
            });
        }
        if self.y0.is_nan() || self.y0 <= 1.0 {
            return Err(QuantError::InvalidParameter {
                name: "y0",
                reason: "approximation bound must exceed 1",
            });
        }
        if self.delta0.is_nan() || self.delta0 <= 0.0 || self.delta0 >= 1.0 {
            return Err(QuantError::InvalidParameter {
                name: "delta0",
                reason: "must lie in (0,1)",
            });
        }
        if self.lower_bound_e.is_nan() || self.lower_bound_e <= 0.0 {
            return Err(QuantError::InvalidParameter {
                name: "lower_bound_e",
                reason: "must be positive",
            });
        }
        if !(self.diameter > 0.0 && self.max_norm > 0.0) {
            return Err(QuantError::InvalidParameter {
                name: "diameter/max_norm",
                reason: "must be positive",
            });
        }
        Ok(())
    }

    /// Left side of constraint (21b) with all ε's equal:
    /// `Y(ε, ε_QT) = ((1+ε)⁴/(1−ε)) · ((1+ε)⁵ + ε_QT)`.
    pub fn error_bound(epsilon: f64, epsilon_qt: f64) -> f64 {
        let one_plus = 1.0 + epsilon;
        (one_plus.powi(4) / (1.0 - epsilon)) * (one_plus.powi(5) + epsilon_qt)
    }

    /// Largest ε in `(0, 1)` with `Y(ε, ε_QT) ≤ y0`, by bisection;
    /// `None` when even ε → 0 violates the bound.
    pub fn max_feasible_epsilon(&self, epsilon_qt: f64) -> Option<f64> {
        if Self::error_bound(0.0, epsilon_qt) > self.y0 {
            return None;
        }
        let mut lo = 0.0f64;
        let mut hi = 0.999_999f64;
        if Self::error_bound(hi, epsilon_qt) <= self.y0 {
            return Some(hi);
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if Self::error_bound(mid, epsilon_qt) <= self.y0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo > 0.0).then_some(lo)
    }

    /// The communication-cost model of eq. (22)–(24):
    /// `X ≈ n'(ε) · d'(ε, n') · b'(ε_QT)` with the §6.3.2 constants.
    pub fn comm_cost_model(&self, epsilon: f64, epsilon_qt: f64, delta: f64) -> f64 {
        let k = self.k as f64;
        let e2 = epsilon;
        // n' = C1·k³·log₂²(k)·log(1/δ)/ε₂⁴ — the paper assumes k ≥ 2; for
        // k < 2 the log factor is clamped to 1 so the model stays usable.
        let logk = k.log2().max(1.0);
        let n_prime = c1_constant() * k.powi(3) * logk * logk * (1.0 / delta).ln() / e2.powi(4);
        // d' = C2·log(n'k/δ)/ε² (Lemma 4.2 with the §6.3.2 constant).
        let d_prime = C2_CONSTANT * (n_prime * k / delta).ln() / (epsilon * epsilon);
        // b' = C3·log(n·√d / ε_QT).
        let b_prime = C3_CONSTANT
            * ((self.n as f64) * (self.d as f64).sqrt() / epsilon_qt)
                .ln()
                .max(1.0);
        n_prime * d_prime * b_prime
    }

    /// Runs the full §6.3 search over `s = 1..=52`.
    ///
    /// # Errors
    ///
    /// * [`QuantError::InvalidParameter`] for a malformed instance.
    /// * [`QuantError::Infeasible`] when no `s` admits a feasible ε.
    pub fn optimize(&self) -> Result<QtConfigReport> {
        self.validate()?;
        let delta = 1.0 - (1.0 - self.delta0).powf(1.0 / 3.0);
        let mut candidates = Vec::with_capacity(STORED_SIGNIFICAND_BITS as usize);
        let mut best: Option<(usize, f64)> = None;
        let mut min_y = f64::INFINITY;
        for s in 1..=STORED_SIGNIFICAND_BITS {
            let q = RoundingQuantizer::new(s).expect("s in range");
            let delta_qt = q.max_error_bound(self.max_norm);
            let epsilon_qt = 4.0 * (self.n as f64) * self.diameter * delta_qt / self.lower_bound_e;
            min_y = min_y.min(Self::error_bound(0.0, epsilon_qt));
            let epsilon = self.max_feasible_epsilon(epsilon_qt);
            let comm_cost = epsilon.map(|e| self.comm_cost_model(e, epsilon_qt, delta));
            if let Some(x) = comm_cost {
                let better = best.map(|(_, bx)| x < bx).unwrap_or(true);
                if better {
                    best = Some((candidates.len(), x));
                }
            }
            candidates.push(QtCandidate {
                s,
                delta_qt,
                epsilon_qt,
                epsilon,
                comm_cost,
            });
        }
        match best {
            Some((best_index, _)) => Ok(QtConfigReport {
                candidates,
                best_index,
                delta,
            }),
            None => Err(QuantError::Infeasible {
                target: self.y0,
                best_achievable: min_y,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> QtOptimizer {
        QtOptimizer {
            n: 60_000,
            d: 784,
            k: 2,
            y0: 2.0,
            delta0: 0.1,
            lower_bound_e: 1_000.0,
            diameter: 2.0 * 28.0, // [-1,1]^784 ball-ish
            max_norm: 28.0,
        }
    }

    #[test]
    fn constants_match_paper() {
        // C1 = 54912(1+log₂3)(1+log₂(26/3))/225
        let c1 = c1_constant();
        let expect = 54912.0 * (1.0 + 1.584962500721156) * (1.0 + 3.115477217419936) / 225.0;
        assert!((c1 - expect).abs() < 1e-6);
        assert_eq!(C2_CONSTANT, 24.0);
        assert_eq!(C3_CONSTANT, 2.0);
    }

    #[test]
    fn error_bound_reduces_without_quantization() {
        // ε_QT = 0: Y(ε) = (1+ε)⁹/(1−ε), the Theorem 4.4 ratio.
        let y = QtOptimizer::error_bound(0.1, 0.0);
        let expect = 1.1f64.powi(9) / 0.9;
        assert!((y - expect).abs() < 1e-12);
    }

    #[test]
    fn error_bound_monotone_in_epsilon_and_qt() {
        let y1 = QtOptimizer::error_bound(0.1, 0.01);
        let y2 = QtOptimizer::error_bound(0.2, 0.01);
        let y3 = QtOptimizer::error_bound(0.1, 0.05);
        assert!(y2 > y1);
        assert!(y3 > y1);
    }

    #[test]
    fn max_feasible_epsilon_bisection() {
        let opt = instance();
        let e = opt.max_feasible_epsilon(0.0).expect("feasible");
        // Y(e) == y0 at the boundary.
        let y = QtOptimizer::error_bound(e, 0.0);
        assert!((y - opt.y0).abs() < 1e-6, "Y(e*) = {y}");
        // Infeasible when ε_QT alone exceeds the budget: Y(0, εqt) = 1+εqt.
        assert!(opt.max_feasible_epsilon(1.5).is_none());
    }

    #[test]
    fn optimize_returns_interior_s() {
        let opt = instance();
        let report = opt.optimize().unwrap();
        assert_eq!(report.candidates.len(), 52);
        let best = report.best();
        // The optimum is neither the minimum nor the maximum s: very small
        // s forces tiny ε (huge coreset), very large s wastes bits.
        assert!(best.s > 1, "best s = {}", best.s);
        assert!(best.s < 52, "best s = {}", best.s);
        assert!(best.comm_cost.is_some());
        // δ = 1 − (1−δ₀)^{1/3}
        let expect_delta = 1.0 - 0.9f64.powf(1.0 / 3.0);
        assert!((report.delta - expect_delta).abs() < 1e-12);
    }

    #[test]
    fn cost_model_decreases_with_looser_epsilon() {
        let opt = instance();
        let x_tight = opt.comm_cost_model(0.05, 1e-6, 0.03);
        let x_loose = opt.comm_cost_model(0.2, 1e-6, 0.03);
        assert!(x_loose < x_tight);
    }

    #[test]
    fn small_s_infeasible_large_s_feasible() {
        let opt = instance();
        let report = opt.optimize().unwrap();
        // s = 1: ε_QT = 4nΔ_D·(max_norm/2)/E — astronomically over budget.
        assert!(report.candidates[0].epsilon.is_none());
        // s = 52 is essentially unquantized → feasible.
        assert!(report.candidates[51].epsilon.is_some());
    }

    #[test]
    fn infeasible_target_errors() {
        let mut opt = instance();
        opt.y0 = 1.0 + 1e-12;
        // Even ε = 0 with the smallest ε_QT cannot get below ~1 + ε_QT.
        opt.lower_bound_e = 1e-9;
        assert!(matches!(opt.optimize(), Err(QuantError::Infeasible { .. })));
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut opt = instance();
        opt.y0 = 0.5;
        assert!(opt.validate().is_err());
        let mut opt = instance();
        opt.k = 0;
        assert!(opt.validate().is_err());
        let mut opt = instance();
        opt.delta0 = 1.0;
        assert!(opt.validate().is_err());
        let mut opt = instance();
        opt.lower_bound_e = 0.0;
        assert!(opt.validate().is_err());
        let mut opt = instance();
        opt.max_norm = -1.0;
        assert!(opt.validate().is_err());
    }

    #[test]
    fn best_quantizer_constructible() {
        let report = instance().optimize().unwrap();
        let q = report.best_quantizer();
        assert_eq!(q.significant_bits(), report.best().s);
    }

    #[test]
    fn tighter_y0_needs_more_bits() {
        let loose = QtOptimizer {
            y0: 3.0,
            ..instance()
        }
        .optimize()
        .unwrap();
        let tight = QtOptimizer {
            y0: 1.2,
            ..instance()
        }
        .optimize()
        .unwrap();
        // The smallest feasible s grows as the error budget shrinks.
        let first_feasible = |r: &QtConfigReport| {
            r.candidates
                .iter()
                .find(|c| c.epsilon.is_some())
                .map(|c| c.s)
                .unwrap()
        };
        assert!(first_feasible(&tight) >= first_feasible(&loose));
    }
}
