//! Cardinality-reduction (CR) methods: ε-coresets for k-means.
//!
//! Implements the paper's CR building blocks (§3.3):
//!
//! * [`types::Coreset`] — the `(S, Δ, w)` triple of Definition 3.2 with its
//!   shifted cost `cost(S, X) = Σ_q w(q)·min_x ‖q − x‖² + Δ` (eq. (4));
//! * [`sensitivity`] — sensitivity sampling in the Langberg–Schulman /
//!   Feldman–Langberg framework (references \[23\], \[24\]), including the
//!   deterministic-total-weight variant of \[4\] that disSS relies on
//!   (`Σ w = n` exactly, footnote 8 of the paper);
//! * [`fss`] — the FSS construction of Theorem 3.2 / \[11\]: PCA to the
//!   intrinsic dimension, sensitivity sampling in the subspace, and the
//!   PCA residual as the additive Δ;
//! * [`size`] — coreset-cardinality formulas from the theorems, with the
//!   paper's explicit constants, plus the practical sizes used by the
//!   experiment harness;
//! * [`streaming`] — merge-and-reduce maintenance of a coreset over a
//!   point stream (the \[25\]-style extension), so an edge device can
//!   summarize while collecting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod fss;
pub mod sensitivity;
pub mod size;
pub mod streaming;
pub mod types;

pub use error::CoresetError;
pub use fss::{FssBuilder, FssCoreset};
pub use sensitivity::SensitivitySampler;
pub use streaming::StreamingCoreset;
pub use types::Coreset;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, CoresetError>;
