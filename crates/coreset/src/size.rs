//! Coreset-cardinality formulas from the paper's theorems.
//!
//! These are the *theory* sizes (with the explicit constants of §6.3.2).
//! They are enormous for practical ε — the paper's own experiments tune
//! sizes instead (§7.2.1) — so [`practical_fss_sample_size`] provides the
//! tuned counterpart used by the experiment harness.

/// Theorem 3.2 / §6.3.2 FSS coreset cardinality:
/// `n' = C1 · k³ · log₂²(k) · ln(1/δ) / ε⁴` with
/// `C1 = 54912(1+log₂3)(1+log₂(26/3))/225` (assumes `k ≥ 2`).
///
/// # Panics
///
/// Panics unless `k ≥ 2`, `ε ∈ (0,1)`, `δ ∈ (0,1)`.
pub fn theorem32_fss_size(k: usize, epsilon: f64, delta: f64) -> f64 {
    assert!(k >= 2, "the explicit constant assumes k >= 2");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
    let kf = k as f64;
    let logk = kf.log2();
    ekm_c1() * kf.powi(3) * logk * logk * (1.0 / delta).ln() / epsilon.powi(4)
}

/// The explicit FSS constant `C1` of §6.3.2.
pub fn ekm_c1() -> f64 {
    54912.0 * (1.0 + 3f64.log2()) * (1.0 + (26.0 / 3.0f64).log2()) / 225.0
}

/// Theorem 5.2 disSS sample size:
/// `|S| = O(ε⁻⁴·(k·d + ln(1/δ)) + m·k·ln(mk/δ))` (unit constants).
///
/// # Panics
///
/// Panics unless `ε, δ ∈ (0,1)` and `m, k, d ≥ 1`.
pub fn theorem52_disss_size(m: usize, k: usize, d: usize, epsilon: f64, delta: f64) -> f64 {
    assert!(m >= 1 && k >= 1 && d >= 1, "m, k, d must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
    let (mf, kf, df) = (m as f64, k as f64, d as f64);
    (kf * df + (1.0 / delta).ln()) / epsilon.powi(4) + mf * kf * (mf * kf / delta).ln()
}

/// BKLW's global sample size (§5.1):
/// `s = O(ε⁻⁴·(k²/ε² + ln(1/δ)) + m·k·ln(mk/δ))` (unit constants) — the
/// disSS size after disPCA has reduced the dimension to `O(k/ε²)`.
///
/// # Panics
///
/// Panics unless `ε, δ ∈ (0,1)` and `m, k ≥ 1`.
pub fn bklw_sample_size(m: usize, k: usize, epsilon: f64, delta: f64) -> f64 {
    assert!(m >= 1 && k >= 1, "m, k must be positive");
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
    assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
    let (mf, kf) = (m as f64, k as f64);
    (kf * kf / (epsilon * epsilon) + (1.0 / delta).ln()) / epsilon.powi(4)
        + mf * kf * (mf * kf / delta).ln()
}

/// Practical FSS/disSS sample size used by the experiment harness:
/// `⌈c · k · ln(n)⌉`, clamped to `[4k, n]`.
///
/// With `c ≈ 25` this lands in the "few thousand points" regime the
/// paper's Table 3 communication footprints imply for MNIST-scale data.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0` or `c <= 0`.
pub fn practical_fss_sample_size(n: usize, k: usize, c: f64) -> usize {
    assert!(n > 0 && k > 0, "n and k must be positive");
    assert!(c > 0.0, "c must be positive");
    let raw = (c * k as f64 * (n as f64).ln()).ceil() as usize;
    raw.clamp((4 * k).min(n), n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem32_scales_as_inverse_eps4() {
        let a = theorem32_fss_size(2, 0.4, 0.1);
        let b = theorem32_fss_size(2, 0.2, 0.1);
        let ratio = b / a;
        assert!((ratio - 16.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn theorem32_scales_as_k_cubed_polylog() {
        let a = theorem32_fss_size(2, 0.5, 0.1);
        let b = theorem32_fss_size(4, 0.5, 0.1);
        // k³·log₂²k: (4³·2²)/(2³·1²) = 32.
        assert!((b / a - 32.0).abs() < 1e-9);
    }

    #[test]
    fn theory_sizes_are_huge() {
        // The point of §7.2.1: theory sizes are impractical, hence tuning.
        let s = theorem32_fss_size(2, 0.1, 0.1);
        assert!(s > 1e8, "size {s}");
    }

    #[test]
    fn theorem52_combines_terms() {
        let v = theorem52_disss_size(10, 2, 50, 0.5, 0.1);
        let expect = (100.0 + 10.0f64.ln()) / 0.0625 + 20.0 * (200.0f64).ln();
        assert!((v - expect).abs() < 1e-9);
    }

    #[test]
    fn bklw_independent_of_d() {
        let a = bklw_sample_size(10, 2, 0.5, 0.1);
        // Same formula regardless of original dimension — that is the
        // benefit of the disPCA step.
        let expect = (4.0 / 0.25 + 10.0f64.ln()) / 0.0625 + 20.0 * (200.0f64).ln();
        assert!((a - expect).abs() < 1e-9);
    }

    #[test]
    fn practical_size_reasonable() {
        let s = practical_fss_sample_size(60_000, 2, 25.0);
        assert!((500..=1000).contains(&s), "practical size {s}");
        // Clamped below by 4k and above by n.
        assert_eq!(practical_fss_sample_size(10, 2, 0.001), 8);
        assert_eq!(practical_fss_sample_size(5, 2, 1e9), 5);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn theorem32_requires_k_ge_2() {
        let _ = theorem32_fss_size(1, 0.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_panics() {
        let _ = theorem52_disss_size(1, 1, 1, 1.5, 0.1);
    }
}
