//! Streaming coreset maintenance by merge-and-reduce.
//!
//! The paper's CR methods are batch constructions; its related work
//! (reference \[25\], Braverman–Feldman–Lang) extends coresets to streams
//! with the classic merge-and-reduce tree: buffer incoming points into
//! leaves, build a coreset per leaf, and whenever two coresets occupy the
//! same level of a binary counter, *merge* them (union of weighted
//! points) and *reduce* the union back to the target size with weighted
//! sensitivity sampling. An edge device can therefore maintain a
//! bounded-size summary while collecting data, and ship it on demand —
//! the natural streaming companion to the paper's one-round protocols.
//!
//! Memory: `O(levels · sample_size)` where `levels = O(log(n/leaf))`.
//! Each point participates in `O(log n)` reduces, so the construction
//! stays near-linear overall.

use crate::sensitivity::{SensitivitySampler, WeightMode};
use crate::types::Coreset;
use crate::{CoresetError, Result};
use ekm_linalg::distance::Compute;
use ekm_linalg::random::derive_seed;
use ekm_linalg::Matrix;

/// A streaming k-means coreset built by merge-and-reduce.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_coreset::streaming::StreamingCoreset;
///
/// let mut stream = StreamingCoreset::new(2, 64, 32).with_seed(7);
/// for batch in 0..8 {
///     let points = Matrix::from_fn(50, 3, |i, j| {
///         ((batch * 50 + i) % 10) as f64 + (j as f64) * 0.1
///     });
///     stream.push_batch(&points).unwrap();
/// }
/// let coreset = stream.finalize().unwrap();
/// assert!((coreset.total_weight() - 400.0).abs() < 1e-6);
/// assert!(coreset.len() < 400);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCoreset {
    k: usize,
    leaf_size: usize,
    sample_size: usize,
    seed: u64,
    compute: Compute,
    dim: Option<usize>,
    buffer: Vec<f64>,
    buffered_rows: usize,
    levels: Vec<Option<Coreset>>,
    points_seen: usize,
    reduces: u64,
}

impl StreamingCoreset {
    /// Creates a streaming builder for `k`-means with the given leaf
    /// buffer size and per-coreset sample size.
    ///
    /// # Panics
    ///
    /// Panics if `k`, `leaf_size`, or `sample_size` is zero.
    pub fn new(k: usize, leaf_size: usize, sample_size: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(leaf_size > 0, "leaf_size must be positive");
        assert!(sample_size > 0, "sample_size must be positive");
        StreamingCoreset {
            k,
            leaf_size,
            sample_size,
            seed: 0,
            compute: Compute::F64,
            dim: None,
            buffer: Vec::new(),
            buffered_rows: 0,
            levels: Vec::new(),
            points_seen: 0,
            reduces: 0,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the compute precision of every reduce's sensitivity sampler
    /// ([`Compute::F64`] by default).
    pub fn with_compute(mut self, compute: Compute) -> Self {
        self.compute = compute;
        self
    }

    /// Total points pushed so far.
    pub fn points_seen(&self) -> usize {
        self.points_seen
    }

    /// Number of reduce operations performed (diagnostic).
    pub fn reduces(&self) -> u64 {
        self.reduces
    }

    /// Current summary footprint in stored points (levels + buffer).
    pub fn stored_points(&self) -> usize {
        self.buffered_rows
            + self
                .levels
                .iter()
                .flatten()
                .map(Coreset::len)
                .sum::<usize>()
    }

    /// Feeds a batch of points (rows) into the stream.
    ///
    /// # Errors
    ///
    /// * [`CoresetError::Malformed`] if the batch dimensionality differs
    ///   from earlier batches.
    /// * Propagates sampling failures.
    pub fn push_batch(&mut self, points: &Matrix) -> Result<()> {
        if points.rows() == 0 {
            return Ok(());
        }
        match self.dim {
            None => self.dim = Some(points.cols()),
            Some(d) if d == points.cols() => {}
            Some(_) => {
                return Err(CoresetError::Malformed {
                    reason: "batch dimensionality changed mid-stream",
                })
            }
        }
        for row in points.iter_rows() {
            self.buffer.extend_from_slice(row);
            self.buffered_rows += 1;
            self.points_seen += 1;
            if self.buffered_rows == self.leaf_size {
                self.flush_leaf()?;
            }
        }
        Ok(())
    }

    /// Builds the final coreset: merge of all levels plus the residual
    /// buffer (buffer points keep weight 1).
    ///
    /// # Errors
    ///
    /// * [`CoresetError::Malformed`] if nothing was pushed.
    /// * Propagates merge failures.
    pub fn finalize(&self) -> Result<Coreset> {
        let mut parts: Vec<Coreset> = self.levels.iter().flatten().cloned().collect();
        if self.buffered_rows > 0 {
            let d = self.dim.expect("dim known once points buffered");
            let m = Matrix::from_vec(self.buffered_rows, d, self.buffer.clone());
            parts.push(Coreset::new(m, vec![1.0; self.buffered_rows], 0.0)?);
        }
        if parts.is_empty() {
            return Err(CoresetError::Malformed {
                reason: "finalize on an empty stream",
            });
        }
        Coreset::merge(parts.iter())
    }

    /// Like [`StreamingCoreset::finalize`], but with one final weighted
    /// reduce when the merged summary exceeds `sample_size` — the form a
    /// pipeline stage ships, so the transmitted summary is bounded by the
    /// sample budget no matter how the stream length compares to the
    /// leaf size.
    ///
    /// # Errors
    ///
    /// See [`StreamingCoreset::finalize`].
    pub fn finalize_reduced(&self) -> Result<Coreset> {
        let merged = self.finalize()?;
        if merged.len() <= self.sample_size {
            return Ok(merged);
        }
        let delta = merged.delta();
        let reduced = SensitivitySampler::new(self.k, self.sample_size)
            .with_seed(derive_seed(self.seed, 0xF17A7))
            .with_weight_mode(WeightMode::DeterministicTotal)
            .with_compute(self.compute)
            .sample(merged.points(), Some(merged.weights()))?;
        if delta > 0.0 {
            reduced.with_delta(reduced.delta() + delta)
        } else {
            Ok(reduced)
        }
    }

    fn flush_leaf(&mut self) -> Result<()> {
        let d = self.dim.expect("dim known");
        let m = Matrix::from_vec(self.buffered_rows, d, std::mem::take(&mut self.buffer));
        self.buffered_rows = 0;
        let leaf = self.reduce(&m, None)?;
        self.carry(leaf, 0)
    }

    /// Reduces a (possibly weighted) point set to `sample_size` points.
    fn reduce(&mut self, points: &Matrix, weights: Option<&[f64]>) -> Result<Coreset> {
        self.reduces += 1;
        if points.rows() <= self.sample_size {
            let w = match weights {
                Some(w) => w.to_vec(),
                None => vec![1.0; points.rows()],
            };
            return Coreset::new(points.clone(), w, 0.0);
        }
        SensitivitySampler::new(self.k, self.sample_size)
            .with_seed(derive_seed(self.seed, 0x100 + self.reduces))
            .with_weight_mode(WeightMode::DeterministicTotal)
            .with_compute(self.compute)
            .sample(points, weights)
    }

    /// Binary-counter carry: insert at `level`, merging upward while the
    /// slot is occupied.
    fn carry(&mut self, mut coreset: Coreset, mut level: usize) -> Result<()> {
        loop {
            if self.levels.len() <= level {
                self.levels.resize(level + 1, None);
            }
            match self.levels[level].take() {
                None => {
                    self.levels[level] = Some(coreset);
                    return Ok(());
                }
                Some(existing) => {
                    let merged = Coreset::merge([&existing, &coreset])?;
                    coreset = self.reduce(merged.points(), Some(merged.weights()))?;
                    // Δ's add under merge; our reduces carry Δ = 0, so the
                    // merged Δ stays 0 — assert the invariant in debug.
                    debug_assert_eq!(merged.delta(), 0.0);
                    level += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::kmeans::KMeans;
    use ekm_linalg::random::gaussian_matrix;

    fn blobs(n_per: usize, seed: u64) -> Matrix {
        let mut m = gaussian_matrix(seed, 2 * n_per, 4, 0.4);
        for i in 0..n_per {
            m.row_mut(i)[0] += 10.0;
        }
        m
    }

    #[test]
    fn weight_conservation_over_stream() {
        let mut stream = StreamingCoreset::new(2, 50, 30).with_seed(1);
        let data = blobs(300, 2);
        // Push in uneven batches.
        let sizes = [100, 37, 263, 200];
        let mut start = 0;
        for &sz in &sizes {
            let idx: Vec<usize> = (start..start + sz).collect();
            stream.push_batch(&data.select_rows(&idx)).unwrap();
            start += sz;
        }
        assert_eq!(stream.points_seen(), 600);
        let coreset = stream.finalize().unwrap();
        assert!(
            (coreset.total_weight() - 600.0).abs() < 1e-6,
            "Σw = {}",
            coreset.total_weight()
        );
    }

    #[test]
    fn footprint_stays_bounded() {
        let mut stream = StreamingCoreset::new(2, 64, 32).with_seed(3);
        let data = blobs(2000, 4);
        stream.push_batch(&data).unwrap();
        // levels ≈ log2(4000/64) ≈ 6; each ≤ sample + bicriteria extras.
        assert!(
            stream.stored_points() < 12 * 100,
            "footprint {} too large",
            stream.stored_points()
        );
        assert!(stream.reduces() > 10);
    }

    #[test]
    fn streaming_coreset_supports_good_clustering() {
        let data = blobs(800, 5);
        let mut stream = StreamingCoreset::new(2, 100, 60).with_seed(6);
        stream.push_batch(&data).unwrap();
        let coreset = stream.finalize().unwrap();
        let model = KMeans::new(2)
            .with_seed(1)
            .fit_weighted(coreset.points(), coreset.weights())
            .unwrap();
        let via_stream = ekm_clustering::cost::cost(&data, &model.centers).unwrap();
        let direct = KMeans::new(2).with_seed(1).fit(&data).unwrap().inertia;
        assert!(
            via_stream <= 1.3 * direct,
            "stream-derived cost {via_stream} vs direct {direct}"
        );
    }

    #[test]
    fn short_stream_kept_exactly() {
        let mut stream = StreamingCoreset::new(2, 100, 50).with_seed(7);
        let data = blobs(20, 8); // 40 points < leaf
        stream.push_batch(&data).unwrap();
        let coreset = stream.finalize().unwrap();
        assert_eq!(coreset.len(), 40);
        assert!(coreset.weights().iter().all(|&w| w == 1.0));
    }

    #[test]
    fn empty_stream_errors_and_empty_batch_ok() {
        let mut stream = StreamingCoreset::new(2, 10, 5);
        assert!(stream.finalize().is_err());
        stream.push_batch(&Matrix::zeros(0, 3)).unwrap();
        assert!(stream.finalize().is_err());
    }

    #[test]
    fn dimension_change_rejected() {
        let mut stream = StreamingCoreset::new(2, 10, 5);
        stream.push_batch(&gaussian_matrix(1, 5, 3, 1.0)).unwrap();
        assert!(matches!(
            stream.push_batch(&gaussian_matrix(2, 5, 4, 1.0)),
            Err(CoresetError::Malformed { .. })
        ));
    }

    #[test]
    fn finalize_reduced_bounds_the_summary() {
        // Stream shorter than one leaf: plain finalize keeps every point,
        // the reduced form enforces the sample budget and conserves the
        // total weight.
        let data = blobs(200, 13); // 400 points
        let mut stream = StreamingCoreset::new(2, 1024, 48).with_seed(5);
        stream.push_batch(&data).unwrap();
        assert_eq!(stream.finalize().unwrap().len(), 400);
        let reduced = stream.finalize_reduced().unwrap();
        assert!(reduced.len() < 400, "len {}", reduced.len());
        assert!((reduced.total_weight() - 400.0).abs() < 1e-6);
        // Already-small summaries pass through untouched.
        let small = StreamingCoreset::new(2, 1024, 1024);
        let mut small = small.with_seed(5);
        small.push_batch(&data).unwrap();
        assert_eq!(small.finalize_reduced().unwrap(), small.finalize().unwrap());
        // Deterministic.
        assert_eq!(
            stream.finalize_reduced().unwrap(),
            stream.finalize_reduced().unwrap()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(400, 9);
        let build = || {
            let mut s = StreamingCoreset::new(2, 64, 32).with_seed(11);
            s.push_batch(&data).unwrap();
            s.finalize().unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn cost_tracks_batch_coreset_quality() {
        // The streamed coreset's cost estimate should be in the same
        // ballpark as a single-shot coreset of comparable size.
        let data = blobs(600, 10);
        let mut stream = StreamingCoreset::new(2, 128, 64).with_seed(12);
        stream.push_batch(&data).unwrap();
        let streamed = stream.finalize().unwrap();
        let single = SensitivitySampler::new(2, 64)
            .with_seed(12)
            .sample(&data, None)
            .unwrap();
        for trial in 0..3 {
            let x = gaussian_matrix(50 + trial, 2, 4, 4.0);
            let truth = ekm_clustering::cost::cost(&data, &x).unwrap();
            let via_stream = streamed.cost(&x).unwrap() / truth;
            let via_single = single.cost(&x).unwrap() / truth;
            assert!(
                (via_stream - 1.0).abs() < (via_single - 1.0).abs() + 0.35,
                "stream distortion {via_stream} vs single {via_single}"
            );
        }
    }
}
