//! The `(S, Δ, w)` coreset triple of paper Definition 3.2.

use crate::{CoresetError, Result};
use ekm_clustering::cost::assign;
use ekm_linalg::Matrix;

/// A weighted, shifted coreset `(S, Δ, w)` for k-means.
///
/// Its cost against a center set `X` is the paper's eq. (4):
/// `cost(S, X) = Σ_{q∈S} w(q) · min_{x∈X} ‖q − x‖² + Δ`.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_coreset::Coreset;
///
/// let s = Coreset::new(
///     Matrix::from_rows(&[vec![0.0], vec![4.0]]),
///     vec![2.0, 2.0],
///     1.0,
/// ).unwrap();
/// let x = Matrix::from_rows(&[vec![0.0]]);
/// // 2·0 + 2·16 + Δ = 33
/// assert_eq!(s.cost(&x).unwrap(), 33.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coreset {
    points: Matrix,
    weights: Vec<f64>,
    delta: f64,
}

impl Coreset {
    /// Creates a coreset, validating shapes and weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoresetError::Malformed`] if the weight count differs from
    /// the point count, any weight is negative or non-finite, or `delta`
    /// is negative or non-finite.
    pub fn new(points: Matrix, weights: Vec<f64>, delta: f64) -> Result<Self> {
        if weights.len() != points.rows() {
            return Err(CoresetError::Malformed {
                reason: "weight count differs from point count",
            });
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(CoresetError::Malformed {
                reason: "weights must be finite and nonnegative",
            });
        }
        if !delta.is_finite() || delta < 0.0 {
            return Err(CoresetError::Malformed {
                reason: "delta must be finite and nonnegative",
            });
        }
        Ok(Coreset {
            points,
            weights,
            delta,
        })
    }

    /// The coreset points `S` (rows).
    pub fn points(&self) -> &Matrix {
        &self.points
    }

    /// The weight function `w` (parallel to the rows of `points`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The additive constant Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of coreset points `|S|`.
    pub fn len(&self) -> usize {
        self.points.rows()
    }

    /// `true` when the coreset holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.rows() == 0
    }

    /// Ambient dimensionality of the coreset points.
    pub fn dim(&self) -> usize {
        self.points.cols()
    }

    /// Total weight `Σ_q w(q)` (equals `n` for the \[4\]-style samplers).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// The shifted k-means cost of eq. (4).
    ///
    /// # Errors
    ///
    /// Propagates assignment failures (empty centers, dimension mismatch).
    pub fn cost(&self, centers: &Matrix) -> Result<f64> {
        let a = assign(&self.points, centers)?;
        Ok(a.weighted_cost(&self.weights) + self.delta)
    }

    /// Returns a coreset with `f` applied to the point matrix (weights and
    /// Δ unchanged) — used to push a coreset through a projection or a
    /// quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`CoresetError::Malformed`] if `f` changes the number of
    /// rows.
    pub fn map_points<F>(&self, f: F) -> Result<Coreset>
    where
        F: FnOnce(&Matrix) -> Matrix,
    {
        let mapped = f(&self.points);
        if mapped.rows() != self.points.rows() {
            return Err(CoresetError::Malformed {
                reason: "map_points changed the number of points",
            });
        }
        Ok(Coreset {
            points: mapped,
            weights: self.weights.clone(),
            delta: self.delta,
        })
    }

    /// Returns a copy with a different Δ.
    pub fn with_delta(&self, delta: f64) -> Result<Coreset> {
        Coreset::new(self.points.clone(), self.weights.clone(), delta)
    }

    /// Decomposes the coreset into its `(S, w, Δ)` parts without copying
    /// — how a pipeline stage hands a finalized streaming summary to the
    /// transmission machinery.
    pub fn into_parts(self) -> (Matrix, Vec<f64>, f64) {
        (self.points, self.weights, self.delta)
    }

    /// Merges several coresets into one (union of points, sum of Δ's) —
    /// how the server combines per-source coresets in the distributed
    /// setting.
    ///
    /// # Errors
    ///
    /// * [`CoresetError::Malformed`] if no parts are given or dimensions
    ///   disagree.
    pub fn merge<'a, I: IntoIterator<Item = &'a Coreset>>(parts: I) -> Result<Coreset> {
        let parts: Vec<&Coreset> = parts.into_iter().collect();
        if parts.is_empty() {
            return Err(CoresetError::Malformed {
                reason: "merge of zero coresets",
            });
        }
        let points = Matrix::vstack_all(parts.iter().map(|c| &c.points))?;
        let mut weights = Vec::with_capacity(points.rows());
        let mut delta = 0.0;
        for part in &parts {
            weights.extend_from_slice(&part.weights);
            delta += part.delta;
        }
        Coreset::new(points, weights, delta)
    }

    /// Expands the coreset into an unweighted dataset by repeating each
    /// point `round(w)` times (the footnote-5 strategy; only sensible for
    /// small integral-ish weights — used in tests).
    pub fn to_unweighted_rounded(&self) -> Matrix {
        let mut indices = Vec::new();
        for (i, &w) in self.weights.iter().enumerate() {
            let copies = w.round().max(0.0) as usize;
            for _ in 0..copies {
                indices.push(i);
            }
        }
        self.points.select_rows(&indices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Coreset {
        Coreset::new(
            Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 0.0], vec![0.0, 3.0]]),
            vec![1.0, 2.0, 3.0],
            0.5,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let c = sample();
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.dim(), 2);
        assert_eq!(c.total_weight(), 6.0);
        assert_eq!(c.delta(), 0.5);
        assert_eq!(c.weights(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn cost_includes_delta_and_weights() {
        let c = sample();
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]);
        // 1·0 + 2·4 + 3·9 + 0.5 = 35.5
        assert_eq!(c.cost(&x).unwrap(), 35.5);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        let p = Matrix::from_rows(&[vec![0.0]]);
        assert!(Coreset::new(p.clone(), vec![], 0.0).is_err());
        assert!(Coreset::new(p.clone(), vec![-1.0], 0.0).is_err());
        assert!(Coreset::new(p.clone(), vec![f64::NAN], 0.0).is_err());
        assert!(Coreset::new(p.clone(), vec![1.0], -1.0).is_err());
        assert!(Coreset::new(p.clone(), vec![1.0], f64::INFINITY).is_err());
        assert!(Coreset::new(p, vec![1.0], 0.0).is_ok());
    }

    #[test]
    fn map_points_preserves_weights_delta() {
        let c = sample();
        let scaled = c.map_points(|m| m.scaled(2.0)).unwrap();
        assert_eq!(scaled.weights(), c.weights());
        assert_eq!(scaled.delta(), c.delta());
        assert_eq!(scaled.points()[(1, 0)], 4.0);
        // Changing row count is rejected.
        assert!(c.map_points(|_| Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn merge_unions_points_sums_delta() {
        let a = sample();
        let b = Coreset::new(Matrix::from_rows(&[vec![9.0, 9.0]]), vec![4.0], 1.5).unwrap();
        let m = Coreset::merge([&a, &b]).unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(m.delta(), 2.0);
        assert_eq!(m.total_weight(), 10.0);
        assert_eq!(m.points().row(3), &[9.0, 9.0]);
        assert!(Coreset::merge([]).is_err());
    }

    #[test]
    fn merge_dimension_mismatch_errors() {
        let a = sample();
        let b = Coreset::new(Matrix::from_rows(&[vec![1.0]]), vec![1.0], 0.0).unwrap();
        assert!(Coreset::merge([&a, &b]).is_err());
    }

    #[test]
    fn with_delta_replaces() {
        let c = sample().with_delta(9.0).unwrap();
        assert_eq!(c.delta(), 9.0);
        assert!(sample().with_delta(-1.0).is_err());
    }

    #[test]
    fn unweighted_expansion_rounds_weights() {
        let c = Coreset::new(
            Matrix::from_rows(&[vec![1.0], vec![2.0]]),
            vec![2.0, 0.4],
            0.0,
        )
        .unwrap();
        let u = c.to_unweighted_rounded();
        assert_eq!(u.rows(), 2); // 2 copies of the first, 0 of the second
        assert_eq!(u.row(0), &[1.0]);
        assert_eq!(u.row(1), &[1.0]);
    }

    #[test]
    fn coreset_cost_matches_duplicated_dataset() {
        let c = Coreset::new(
            Matrix::from_rows(&[vec![0.0], vec![5.0]]),
            vec![3.0, 2.0],
            0.0,
        )
        .unwrap();
        let x = Matrix::from_rows(&[vec![1.0]]);
        let dup = c.to_unweighted_rounded();
        let dup_cost = ekm_clustering::cost::cost(&dup, &x).unwrap();
        assert!((c.cost(&x).unwrap() - dup_cost).abs() < 1e-12);
    }
}
