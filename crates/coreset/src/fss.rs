//! FSS: the Feldman–Schmidt–Sohler coreset construction (paper
//! Theorem 3.2, reference \[11\]).
//!
//! FSS first reduces the *intrinsic* dimension by projecting the dataset
//! onto its top `t` principal components, then runs sensitivity sampling in
//! the subspace. The projection residual `Δ = ‖A − A·V_t·V_tᵀ‖²_F` becomes
//! the additive constant of the coreset (Definition 3.2), which is exactly
//! why that definition carries a Δ at all.
//!
//! The output keeps the *factored* representation — subspace coordinates
//! plus basis — because that is what a data source transmits: `|S|·t + d·t`
//! scalars (Theorem 4.1's `O(kd/ε²)` communication cost comes from the
//! `d·t` basis term; replacing PCA with a JL projection removes it).

use crate::sensitivity::{SensitivitySampler, WeightMode};
use crate::types::Coreset;
use crate::{CoresetError, Result};
use ekm_clustering::bicriteria::BicriteriaConfig;
use ekm_linalg::distance::Compute;
use ekm_linalg::{ops, Matrix};
use ekm_sketch::Pca;

/// An FSS coreset in factored form: coordinates in the PCA basis, the
/// basis itself, weights, and the PCA residual Δ.
#[derive(Debug, Clone)]
pub struct FssCoreset {
    coordinates: Matrix,
    basis: Matrix,
    weights: Vec<f64>,
    delta: f64,
}

impl FssCoreset {
    /// Coordinates of the coreset points in the basis (`|S| × t`).
    pub fn coordinates(&self) -> &Matrix {
        &self.coordinates
    }

    /// The orthonormal basis `V_t` (`d × t`).
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// Coreset weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The additive PCA-residual constant Δ.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Number of coreset points `|S|`.
    pub fn len(&self) -> usize {
        self.coordinates.rows()
    }

    /// `true` when the coreset holds no points.
    pub fn is_empty(&self) -> bool {
        self.coordinates.rows() == 0
    }

    /// Scalars a data source must transmit for this coreset:
    /// `|S|·t` (coordinates) `+ d·t` (basis) `+ |S|` (weights) `+ 1` (Δ).
    ///
    /// This is the communication-cost bookkeeping behind Theorem 4.1.
    pub fn transmitted_scalars(&self) -> usize {
        self.coordinates.rows() * self.coordinates.cols()
            + self.basis.rows() * self.basis.cols()
            + self.weights.len()
            + 1
    }

    /// Expands the factored form into an ambient-space [`Coreset`]
    /// (`S = coords · V_tᵀ`).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn to_coreset(&self) -> Result<Coreset> {
        let points = ops::matmul_transb(&self.coordinates, &self.basis)?;
        Coreset::new(points, self.weights.clone(), self.delta)
    }

    /// The coreset restricted to coordinate space (points = coordinates,
    /// same weights/Δ). Useful when the consumer keeps working in the
    /// subspace.
    ///
    /// # Errors
    ///
    /// Propagates validation errors.
    pub fn coordinate_coreset(&self) -> Result<Coreset> {
        Coreset::new(self.coordinates.clone(), self.weights.clone(), self.delta)
    }
}

/// Builder for the FSS construction.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_coreset::FssBuilder;
///
/// let data = Matrix::from_fn(300, 10, |i, j| {
///     if i < 150 { (j as f64) * 0.1 } else { 5.0 - (j as f64) * 0.1 }
/// });
/// let fss = FssBuilder::new(2).with_pca_dim(4).with_sample_size(60)
///     .with_seed(3).build(&data).unwrap();
/// assert!(fss.len() <= 60 + 60); // samples + bicriteria centers
/// assert!(fss.delta() >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct FssBuilder {
    k: usize,
    pca_dim: usize,
    sample_size: usize,
    seed: u64,
    weight_mode: WeightMode,
    bicriteria: Option<BicriteriaConfig>,
    compute: Compute,
}

impl FssBuilder {
    /// Creates an FSS builder for `k`-means with the practical defaults
    /// `pca_dim = 2k + 2` and `sample_size = 50·k` (override both for
    /// theory-faithful sizes via [`crate::size`]).
    pub fn new(k: usize) -> Self {
        FssBuilder {
            k,
            pca_dim: 2 * k + 2,
            sample_size: 50 * k,
            seed: 0,
            weight_mode: WeightMode::DeterministicTotal,
            bicriteria: None,
            compute: Compute::F64,
        }
    }

    /// Sets the intrinsic dimension `t` of the PCA step.
    pub fn with_pca_dim(mut self, t: usize) -> Self {
        self.pca_dim = t.max(1);
        self
    }

    /// Sets the number of sensitivity samples.
    pub fn with_sample_size(mut self, m: usize) -> Self {
        self.sample_size = m;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the weighting mode of the sensitivity sampler.
    pub fn with_weight_mode(mut self, mode: WeightMode) -> Self {
        self.weight_mode = mode;
        self
    }

    /// Overrides the bicriteria configuration of the sampler.
    pub fn with_bicriteria(mut self, config: BicriteriaConfig) -> Self {
        self.bicriteria = Some(config);
        self
    }

    /// Sets the compute precision of the sensitivity-sampling step
    /// ([`Compute::F64`] by default). An explicit bicriteria override
    /// keeps its own compute for the bicriteria solve.
    pub fn with_compute(mut self, compute: Compute) -> Self {
        self.compute = compute;
        self
    }

    /// The configured intrinsic dimension.
    pub fn pca_dim(&self) -> usize {
        self.pca_dim
    }

    /// The configured sample size.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Runs FSS on `data` (rows are points).
    ///
    /// # Errors
    ///
    /// * [`CoresetError::Linalg`] for empty input or SVD failure.
    /// * Propagates sensitivity-sampling failures.
    pub fn build(&self, data: &Matrix) -> Result<FssCoreset> {
        if data.is_empty() {
            return Err(CoresetError::Linalg(ekm_linalg::LinalgError::EmptyMatrix {
                op: "fss build",
            }));
        }
        // 1. PCA to the intrinsic dimension.
        let pca = Pca::fit(data, self.pca_dim)?;
        let coords = pca.coordinates(data)?; // n × t
        let delta = pca.residual_sq();

        // 2. Sensitivity sampling in the subspace. Distances between
        //    subspace points are identical in coordinate and ambient
        //    representations, so sampling in coordinates is exact.
        let mut sampler = SensitivitySampler::new(self.k, self.sample_size)
            .with_seed(self.seed)
            .with_weight_mode(self.weight_mode)
            .with_compute(self.compute);
        if let Some(b) = &self.bicriteria {
            sampler = sampler.with_bicriteria(b.clone());
        }
        let sampled = sampler.sample(&coords, None)?;

        Ok(FssCoreset {
            coordinates: sampled.points().clone(),
            basis: pca.components().clone(),
            weights: sampled.weights().to_vec(),
            delta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::kmeans::KMeans;
    use ekm_linalg::random::gaussian_matrix;

    /// Clustered data with most energy in a low-dimensional subspace plus
    /// full-dimensional noise.
    fn structured(n_per: usize, d: usize, seed: u64) -> Matrix {
        let mut m = gaussian_matrix(seed, 3 * n_per, d, 0.1);
        for i in 0..n_per {
            m.row_mut(i)[0] += 10.0;
            m.row_mut(n_per + i)[1] += 10.0;
            m.row_mut(2 * n_per + i)[0] -= 10.0;
        }
        m
    }

    #[test]
    fn delta_is_pca_residual() {
        let data = structured(100, 20, 1);
        let fss = FssBuilder::new(3)
            .with_pca_dim(5)
            .with_sample_size(50)
            .build(&data)
            .unwrap();
        let pca = Pca::fit(&data, 5).unwrap();
        assert!((fss.delta() - pca.residual_sq()).abs() < 1e-9 * (1.0 + pca.residual_sq()));
    }

    #[test]
    fn coreset_cost_tracks_true_cost() {
        let data = structured(200, 16, 2);
        let fss = FssBuilder::new(3)
            .with_pca_dim(6)
            .with_sample_size(150)
            .with_seed(5)
            .build(&data)
            .unwrap();
        let coreset = fss.to_coreset().unwrap();
        for trial in 0..4 {
            let x = gaussian_matrix(50 + trial, 3, 16, 5.0);
            let true_cost = ekm_clustering::cost::cost(&data, &x).unwrap();
            let approx = coreset.cost(&x).unwrap();
            let ratio = approx / true_cost;
            assert!(
                (0.6..=1.4).contains(&ratio),
                "FSS distortion {ratio} at trial {trial}"
            );
        }
    }

    #[test]
    fn kmeans_via_fss_close_to_direct() {
        let data = structured(200, 12, 3);
        let fss = FssBuilder::new(3)
            .with_pca_dim(6)
            .with_sample_size(120)
            .with_seed(7)
            .build(&data)
            .unwrap();
        let coreset = fss.to_coreset().unwrap();
        let model = KMeans::new(3)
            .with_seed(1)
            .fit_weighted(coreset.points(), coreset.weights())
            .unwrap();
        let via_fss = ekm_clustering::cost::cost(&data, &model.centers).unwrap();
        let direct = KMeans::new(3).with_seed(1).fit(&data).unwrap().inertia;
        assert!(
            via_fss <= 1.4 * direct,
            "FSS-derived cost {via_fss} vs direct {direct}"
        );
    }

    #[test]
    fn transmitted_scalars_formula() {
        let data = structured(100, 30, 4);
        let fss = FssBuilder::new(2)
            .with_pca_dim(4)
            .with_sample_size(40)
            .build(&data)
            .unwrap();
        let m = fss.len();
        assert_eq!(fss.transmitted_scalars(), m * 4 + 30 * 4 + m + 1);
    }

    #[test]
    fn factored_and_ambient_costs_agree() {
        // For centers inside the subspace the coordinate and ambient costs
        // agree up to Δ bookkeeping.
        let data = structured(150, 10, 5);
        let fss = FssBuilder::new(2)
            .with_pca_dim(5)
            .with_sample_size(60)
            .with_seed(2)
            .build(&data)
            .unwrap();
        let ambient = fss.to_coreset().unwrap();
        let coords = fss.coordinate_coreset().unwrap();
        // Random coordinate-space centers, lifted to ambient space.
        let xc = gaussian_matrix(77, 2, 5, 3.0);
        let xa = ops::matmul_transb(&xc, fss.basis()).unwrap();
        let ca = ambient.cost(&xa).unwrap();
        let cc = coords.cost(&xc).unwrap();
        assert!(
            (ca - cc).abs() < 1e-6 * (1.0 + ca),
            "ambient {ca} vs coord {cc}"
        );
    }

    #[test]
    fn pca_dim_clamped_to_rank() {
        let data = gaussian_matrix(6, 20, 4, 1.0);
        let fss = FssBuilder::new(2)
            .with_pca_dim(100)
            .with_sample_size(10)
            .build(&data)
            .unwrap();
        assert_eq!(fss.basis().cols(), 4);
        // Full rank ⇒ Δ ≈ 0.
        assert!(fss.delta() < 1e-6);
    }

    #[test]
    fn empty_input_errors() {
        assert!(FssBuilder::new(2).build(&Matrix::zeros(0, 4)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = structured(80, 8, 7);
        let a = FssBuilder::new(2).with_seed(9).build(&data).unwrap();
        let b = FssBuilder::new(2).with_seed(9).build(&data).unwrap();
        assert!(a.coordinates().approx_eq(b.coordinates(), 0.0));
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn builder_accessors() {
        let b = FssBuilder::new(3).with_pca_dim(7).with_sample_size(99);
        assert_eq!(b.pca_dim(), 7);
        assert_eq!(b.sample_size(), 99);
    }

    #[test]
    fn total_weight_is_n_in_deterministic_mode() {
        let data = structured(100, 8, 8);
        let fss = FssBuilder::new(2)
            .with_sample_size(30)
            .with_seed(3)
            .build(&data)
            .unwrap();
        let total: f64 = fss.weights().iter().sum();
        assert!((total - 300.0).abs() < 1e-6, "Σw = {total}");
    }
}
