use ekm_clustering::ClusteringError;
use ekm_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors produced by coreset construction.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoresetError {
    /// The requested coreset is larger than sensible or zero-sized.
    InvalidSampleSize {
        /// The requested size.
        requested: usize,
    },
    /// Weights/points disagree in length or are otherwise malformed.
    Malformed {
        /// Explanation.
        reason: &'static str,
    },
    /// A clustering primitive failed.
    Clustering(ClusteringError),
    /// A linear-algebra primitive failed.
    Linalg(LinalgError),
}

impl fmt::Display for CoresetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoresetError::InvalidSampleSize { requested } => {
                write!(f, "invalid coreset sample size {requested}")
            }
            CoresetError::Malformed { reason } => write!(f, "malformed coreset input: {reason}"),
            CoresetError::Clustering(e) => write!(f, "clustering failure: {e}"),
            CoresetError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl Error for CoresetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoresetError::Clustering(e) => Some(e),
            CoresetError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusteringError> for CoresetError {
    fn from(e: ClusteringError) -> Self {
        CoresetError::Clustering(e)
    }
}

impl From<LinalgError> for CoresetError {
    fn from(e: LinalgError) -> Self {
        CoresetError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoresetError::InvalidSampleSize { requested: 0 };
        assert!(e.to_string().contains('0'));
        let e: CoresetError = ClusteringError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
        let e: CoresetError = LinalgError::EmptyMatrix { op: "svd" }.into();
        assert!(e.to_string().contains("svd"));
        assert!(CoresetError::Malformed { reason: "x" }
            .to_string()
            .contains('x'));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<CoresetError>();
    }
}
