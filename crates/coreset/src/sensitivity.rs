//! Sensitivity sampling for k-means coresets.
//!
//! Framework of Langberg–Schulman \[23\] / Feldman–Langberg \[24\] as used by
//! FSS and disSS: given a bicriteria solution `B`, upper-bound each point's
//! *sensitivity* (worst-case share of the k-means cost) by
//!
//! ```text
//! σ(p) ∝ w(p)·d²(p, B) / cost(P, B)  +  w(p) / W(cluster(p))
//! ```
//!
//! sample `m` points i.i.d. with probability `q(p) = σ(p)/Σσ`, and weight
//! each sampled copy `w(p)/(m·q(p))` so the estimator is unbiased.
//!
//! Two weight modes are provided:
//!
//! * **Plain** — exactly the above (expected total weight `n`);
//! * **Deterministic-total** (the \[4\] variant used by disSS, paper
//!   footnote 8) — the bicriteria centers join the coreset and absorb the
//!   leftover weight of their clusters so `Σ w = n` holds *exactly*.

use crate::types::Coreset;
use crate::{CoresetError, Result};
use ekm_clustering::bicriteria::{bicriteria, BicriteriaConfig, BicriteriaSolution};
use ekm_clustering::cost::{assign_with, validate_weights};
use ekm_linalg::distance::Compute;
use ekm_linalg::random::{derive_seed, rng_from_seed, sample_weighted_indices};
use ekm_linalg::Matrix;

/// Weighting mode for the sampled coreset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightMode {
    /// Unbiased weights `w(p)/(m·q(p))`; `E[Σw] = n`.
    Plain,
    /// The \[4\] variant: include the bicriteria centers with cluster-count
    /// matching weights so `Σw = n` deterministically.
    DeterministicTotal,
}

/// Sensitivity-sampling coreset builder.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_coreset::SensitivitySampler;
///
/// let points = Matrix::from_fn(200, 2, |i, _| if i < 100 { 0.0 } else { 10.0 });
/// let coreset = SensitivitySampler::new(2, 40)
///     .with_seed(7)
///     .sample(&points, None)
///     .unwrap();
/// assert!(coreset.len() <= 40 + coreset.points().rows());
/// // Deterministic-total mode keeps Σw = n exactly.
/// assert!((coreset.total_weight() - 200.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SensitivitySampler {
    k: usize,
    sample_size: usize,
    seed: u64,
    weight_mode: WeightMode,
    bicriteria: BicriteriaConfig,
    compute: Compute,
}

impl SensitivitySampler {
    /// Creates a sampler for `k`-means with `sample_size` drawn points,
    /// defaulting to [`WeightMode::DeterministicTotal`] (the mode both FSS
    /// footnote 8 and disSS use).
    pub fn new(k: usize, sample_size: usize) -> Self {
        SensitivitySampler {
            k,
            sample_size,
            seed: 0,
            weight_mode: WeightMode::DeterministicTotal,
            bicriteria: BicriteriaConfig::default(),
            compute: Compute::F64,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.bicriteria.seed = derive_seed(seed, 0xB1C);
        self
    }

    /// Sets the weighting mode.
    pub fn with_weight_mode(mut self, mode: WeightMode) -> Self {
        self.weight_mode = mode;
        self
    }

    /// Overrides the bicriteria configuration. The override carries its
    /// own [`Compute`] for the bicriteria stage; the sampler's assignment
    /// still follows [`SensitivitySampler::with_compute`].
    pub fn with_bicriteria(mut self, config: BicriteriaConfig) -> Self {
        self.bicriteria = config;
        self
    }

    /// Sets the compute precision of both the bicriteria solve and the
    /// sensitivity assignment ([`Compute::F64`] by default).
    pub fn with_compute(mut self, compute: Compute) -> Self {
        self.compute = compute;
        self.bicriteria.compute = compute;
        self
    }

    /// Number of points the sampler draws.
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// Builds a coreset of `points` (with optional input weights, e.g. when
    /// the input is itself a coreset). The returned Δ is 0.
    ///
    /// # Errors
    ///
    /// * [`CoresetError::InvalidSampleSize`] if `sample_size == 0`.
    /// * Propagates clustering failures (empty input, bad weights).
    pub fn sample(&self, points: &Matrix, weights: Option<&[f64]>) -> Result<Coreset> {
        if self.sample_size == 0 {
            return Err(CoresetError::InvalidSampleSize { requested: 0 });
        }
        let n = points.rows();
        let owned_weights: Vec<f64>;
        let w: &[f64] = match weights {
            Some(w) => {
                validate_weights(w, n).map_err(CoresetError::Clustering)?;
                w
            }
            None => {
                owned_weights = vec![1.0; n];
                &owned_weights
            }
        };

        // Tiny datasets: the whole input is the best coreset.
        if n <= self.sample_size {
            return Coreset::new(points.clone(), w.to_vec(), 0.0);
        }

        let bic = bicriteria(points, w, self.k, &self.bicriteria)?;
        self.sample_with_bicriteria(points, w, &bic)
    }

    /// Builds a coreset re-using an already-computed bicriteria solution
    /// (disSS computes it separately to report `cost(P_i, X_i)` first).
    ///
    /// # Errors
    ///
    /// See [`SensitivitySampler::sample`].
    pub fn sample_with_bicriteria(
        &self,
        points: &Matrix,
        weights: &[f64],
        bic: &BicriteriaSolution,
    ) -> Result<Coreset> {
        if self.sample_size == 0 {
            return Err(CoresetError::InvalidSampleSize { requested: 0 });
        }
        let n = points.rows();
        validate_weights(weights, n).map_err(CoresetError::Clustering)?;

        // One blocked-kernel assignment serves the cluster weights, the
        // total cost, and the per-point sensitivity terms below.
        let a = assign_with(points, &bic.centers, self.compute)?;
        let n_clusters = bic.centers.rows();
        let cluster_w = a.cluster_weights(n_clusters, weights);
        let total_cost = a.weighted_cost(weights);

        // Sensitivity upper bounds.
        let sens: Vec<f64> = (0..n)
            .map(|i| {
                let cost_term = if total_cost > 0.0 {
                    weights[i] * a.distances_sq[i] / total_cost
                } else {
                    0.0
                };
                let cluster_term = if cluster_w[a.labels[i]] > 0.0 {
                    weights[i] / cluster_w[a.labels[i]]
                } else {
                    0.0
                };
                cost_term + cluster_term
            })
            .collect();
        let sens_total: f64 = sens.iter().sum();

        let m = self.sample_size;
        let mut rng = rng_from_seed(derive_seed(self.seed, 0x5A17));
        let drawn = sample_weighted_indices(&mut rng, &sens, m);

        // Unbiased weights per drawn copy: w(p)·Σσ/(m·σ(p)).
        let mut samp_points = points.select_rows(&drawn);
        let mut samp_weights: Vec<f64> = drawn
            .iter()
            .map(|&i| weights[i] * sens_total / (m as f64 * sens[i]))
            .collect();

        if self.weight_mode == WeightMode::DeterministicTotal {
            // Per-cluster weight matching (the [4] scheme): within each
            // bicriteria cluster b, the samples plus the cluster's center
            // must carry exactly W_b. If the raw unbiased sample weights
            // overshoot W_b they are scaled down to W_b and the center gets
            // zero; otherwise the center absorbs the exact remainder. This
            // keeps every weight nonnegative and Σw = Σ_b W_b = n exactly.
            let mut absorbed = vec![0.0f64; n_clusters];
            for (pos, &i) in drawn.iter().enumerate() {
                absorbed[a.labels[i]] += samp_weights[pos];
            }
            let mut center_weights = vec![0.0f64; n_clusters];
            let mut scale = vec![1.0f64; n_clusters];
            for c in 0..n_clusters {
                if absorbed[c] > cluster_w[c] {
                    scale[c] = cluster_w[c] / absorbed[c];
                } else {
                    center_weights[c] = cluster_w[c] - absorbed[c];
                }
            }
            for (pos, &i) in drawn.iter().enumerate() {
                samp_weights[pos] *= scale[a.labels[i]];
            }
            samp_points = samp_points.vstack(&bic.centers)?;
            samp_weights.extend(center_weights);
        }

        Coreset::new(samp_points, samp_weights, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::kmeans::KMeans;
    use ekm_linalg::random::gaussian_matrix;

    fn blobs(n_per: usize, seed: u64) -> Matrix {
        let noise = gaussian_matrix(seed, n_per * 3, 4, 0.2);
        let mut m = noise;
        for i in 0..n_per {
            m.row_mut(n_per + i)[0] += 20.0;
            m.row_mut(2 * n_per + i)[1] += 20.0;
        }
        m
    }

    #[test]
    fn deterministic_total_weight_equals_n() {
        let p = blobs(300, 1);
        for seed in 0..5 {
            let c = SensitivitySampler::new(3, 50)
                .with_seed(seed)
                .sample(&p, None)
                .unwrap();
            assert!(
                (c.total_weight() - 900.0).abs() < 1e-6,
                "Σw = {}",
                c.total_weight()
            );
        }
    }

    #[test]
    fn plain_mode_total_weight_near_n_on_average() {
        let p = blobs(200, 2);
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let c = SensitivitySampler::new(3, 60)
                .with_seed(seed)
                .with_weight_mode(WeightMode::Plain)
                .sample(&p, None)
                .unwrap();
            total += c.total_weight();
        }
        let mean = total / runs as f64;
        assert!(
            (mean - 600.0).abs() < 60.0,
            "mean total weight {mean} (expected ≈ 600)"
        );
    }

    #[test]
    fn coreset_cost_approximates_dataset_cost() {
        let p = blobs(400, 3);
        let c = SensitivitySampler::new(3, 150)
            .with_seed(9)
            .sample(&p, None)
            .unwrap();
        // Check the ε-coreset property on a few center sets.
        for cs in 0..4 {
            let centers = gaussian_matrix(100 + cs, 3, 4, 8.0);
            let true_cost = ekm_clustering::cost::cost(&p, &centers).unwrap();
            let approx = c.cost(&centers).unwrap();
            let ratio = approx / true_cost;
            assert!(
                (0.6..=1.4).contains(&ratio),
                "coreset distortion {ratio} at trial {cs}"
            );
        }
    }

    #[test]
    fn kmeans_on_coreset_close_to_kmeans_on_data() {
        let p = blobs(400, 4);
        let c = SensitivitySampler::new(3, 120)
            .with_seed(11)
            .sample(&p, None)
            .unwrap();
        let full = KMeans::new(3).with_seed(5).fit(&p).unwrap();
        let model = KMeans::new(3)
            .with_seed(5)
            .fit_weighted(c.points(), c.weights())
            .unwrap();
        let coreset_centers_cost = ekm_clustering::cost::cost(&p, &model.centers).unwrap();
        assert!(
            coreset_centers_cost <= 1.5 * full.inertia,
            "coreset-derived centers cost {coreset_centers_cost} vs full {}",
            full.inertia
        );
    }

    #[test]
    fn small_input_returned_whole() {
        let p = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let c = SensitivitySampler::new(2, 10).sample(&p, None).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.weights(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn respects_input_weights() {
        // Input weights 2.0 everywhere ≈ dataset duplicated: Σw = 2n.
        let p = blobs(100, 5);
        let w = vec![2.0; p.rows()];
        let c = SensitivitySampler::new(3, 40)
            .with_seed(3)
            .sample(&p, Some(&w))
            .unwrap();
        assert!((c.total_weight() - 600.0).abs() < 1e-6);
    }

    #[test]
    fn zero_sample_size_errors() {
        let p = Matrix::from_rows(&[vec![0.0]]);
        assert!(matches!(
            SensitivitySampler::new(1, 0).sample(&p, None),
            Err(CoresetError::InvalidSampleSize { .. })
        ));
    }

    #[test]
    fn invalid_weights_propagate() {
        let p = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        assert!(SensitivitySampler::new(1, 1)
            .sample(&p, Some(&[1.0]))
            .is_err());
        assert!(SensitivitySampler::new(1, 1)
            .sample(&p, Some(&[-1.0, 1.0]))
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = blobs(100, 6);
        let a = SensitivitySampler::new(2, 30)
            .with_seed(42)
            .sample(&p, None)
            .unwrap();
        let b = SensitivitySampler::new(2, 30)
            .with_seed(42)
            .sample(&p, None)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_cost_dataset_uses_cluster_term() {
        // All points identical: cost term vanishes, cluster term drives
        // uniform sampling; weights must still sum to n.
        let p = Matrix::from_fn(50, 2, |_, _| 3.0);
        let c = SensitivitySampler::new(2, 10)
            .with_seed(1)
            .sample(&p, None)
            .unwrap();
        assert!((c.total_weight() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn larger_samples_reduce_distortion() {
        let p = blobs(400, 7);
        let centers = gaussian_matrix(55, 3, 4, 8.0);
        let true_cost = ekm_clustering::cost::cost(&p, &centers).unwrap();
        let distortion = |size: usize| {
            let mut worst: f64 = 0.0;
            for seed in 0..8 {
                let c = SensitivitySampler::new(3, size)
                    .with_seed(seed)
                    .sample(&p, None)
                    .unwrap();
                let ratio = c.cost(&centers).unwrap() / true_cost;
                worst = worst.max((ratio - 1.0).abs());
            }
            worst
        };
        let small = distortion(10);
        let large = distortion(300);
        assert!(
            large <= small + 0.05,
            "distortion did not shrink: small-sample {small}, large-sample {large}"
        );
    }
}
