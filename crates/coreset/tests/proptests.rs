//! Property-based tests for coreset construction.

use ekm_coreset::sensitivity::WeightMode;
use ekm_coreset::{Coreset, FssBuilder, SensitivitySampler};
use ekm_linalg::random::gaussian_matrix;
use ekm_linalg::Matrix;
use proptest::prelude::*;

fn clustered(seed: u64, n_per: usize, d: usize) -> Matrix {
    let mut m = gaussian_matrix(seed, 2 * n_per, d, 0.5);
    for i in 0..n_per {
        m.row_mut(i)[0] += 8.0;
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deterministic-total mode: Σw = n for any dataset, seed, and size.
    #[test]
    fn weight_conservation(seed in 0u64..500, n_per in 20usize..120, size in 5usize..60) {
        let data = clustered(seed, n_per, 4);
        let c = SensitivitySampler::new(2, size)
            .with_seed(seed)
            .sample(&data, None)
            .unwrap();
        prop_assert!((c.total_weight() - (2 * n_per) as f64).abs() < 1e-6);
        // All weights nonnegative.
        prop_assert!(c.weights().iter().all(|&w| w >= 0.0));
    }

    /// Plain mode never produces negative weights either.
    #[test]
    fn plain_weights_nonnegative(seed in 0u64..200) {
        let data = clustered(seed, 50, 3);
        let c = SensitivitySampler::new(2, 30)
            .with_seed(seed)
            .with_weight_mode(WeightMode::Plain)
            .sample(&data, None)
            .unwrap();
        prop_assert!(c.weights().iter().all(|&w| w >= 0.0));
    }

    /// Coreset cost is an unbiased-ish estimator: its expectation tracks
    /// the true cost (checked loosely by averaging over seeds).
    #[test]
    fn cost_estimator_centers(seed in 0u64..20) {
        let data = clustered(1000 + seed, 100, 4);
        let x = gaussian_matrix(seed + 3, 2, 4, 4.0);
        let truth = ekm_clustering::cost::cost(&data, &x).unwrap();
        let mut total = 0.0;
        let reps = 8;
        for r in 0..reps {
            let c = SensitivitySampler::new(2, 60)
                .with_seed(seed * 100 + r)
                .sample(&data, None)
                .unwrap();
            total += c.cost(&x).unwrap();
        }
        let mean = total / reps as f64;
        prop_assert!((mean / truth - 1.0).abs() < 0.35, "mean ratio {}", mean / truth);
    }

    /// FSS's Δ equals the dataset energy not captured by the basis, and
    /// the factored representation is consistent: lifting coordinates
    /// through the basis reproduces the ambient coreset.
    #[test]
    fn fss_factored_consistency(seed in 0u64..200) {
        let data = clustered(seed, 60, 6);
        let fss = FssBuilder::new(2)
            .with_pca_dim(3)
            .with_sample_size(25)
            .with_seed(seed)
            .build(&data)
            .unwrap();
        prop_assert!(fss.delta() >= 0.0);
        let ambient = fss.to_coreset().unwrap();
        let lifted = ekm_linalg::ops::matmul_transb(fss.coordinates(), fss.basis()).unwrap();
        prop_assert!(lifted.approx_eq(ambient.points(), 1e-9));
        prop_assert_eq!(ambient.weights(), fss.weights());
        prop_assert_eq!(ambient.delta(), fss.delta());
    }

    /// Merging coresets preserves total weight and Δ additivity.
    #[test]
    fn merge_additivity(seed in 0u64..200, parts in 2usize..5) {
        let coresets: Vec<Coreset> = (0..parts)
            .map(|i| {
                let data = clustered(seed + i as u64, 30, 3);
                SensitivitySampler::new(2, 15)
                    .with_seed(seed + i as u64)
                    .sample(&data, None)
                    .unwrap()
            })
            .collect();
        let merged = Coreset::merge(coresets.iter()).unwrap();
        let total: f64 = coresets.iter().map(|c| c.total_weight()).sum();
        prop_assert!((merged.total_weight() - total).abs() < 1e-9);
        let len: usize = coresets.iter().map(|c| c.len()).sum();
        prop_assert_eq!(merged.len(), len);
    }

    /// The coreset cost function is monotone in Δ.
    #[test]
    fn cost_monotone_in_delta(seed in 0u64..100, d1 in 0.0f64..10.0, d2 in 0.0f64..10.0) {
        let data = clustered(seed, 20, 3);
        let base = SensitivitySampler::new(2, 10)
            .with_seed(seed)
            .sample(&data, None)
            .unwrap();
        let x = gaussian_matrix(seed, 2, 3, 3.0);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let c_lo = base.with_delta(lo).unwrap().cost(&x).unwrap();
        let c_hi = base.with_delta(hi).unwrap().cost(&x).unwrap();
        prop_assert!(c_lo <= c_hi + 1e-12);
        prop_assert!((c_hi - c_lo - (hi - lo)).abs() < 1e-9);
    }
}
