//! Property-based tests for JL projections and PCA.

use ekm_linalg::{ops, Matrix};
use ekm_sketch::{dims, JlKind, JlProjection, Pca};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// JL projection is linear: π(aX + bY) = a·π(X) + b·π(Y).
    #[test]
    fn jl_is_linear(seed in 0u64..200, a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let pi = JlProjection::generate(JlKind::Gaussian, 24, 8, seed);
        let x = ekm_linalg::random::gaussian_matrix(seed + 1, 4, 24, 1.0);
        let y = ekm_linalg::random::gaussian_matrix(seed + 2, 4, 24, 1.0);
        let combo = x.scaled(a).add(&y.scaled(b)).unwrap();
        let left = pi.project(&combo).unwrap();
        let right = pi.project(&x).unwrap().scaled(a)
            .add(&pi.project(&y).unwrap().scaled(b)).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    /// Norm preservation in expectation: averaging ‖π(x)‖²/‖x‖² over many
    /// independent projections concentrates near 1.
    #[test]
    fn jl_unbiased_norms(seed in 0u64..50) {
        let x = ekm_linalg::random::gaussian_matrix(seed, 1, 64, 1.0);
        let nx = ops::dot(x.row(0), x.row(0));
        let mut total = 0.0;
        let reps = 60;
        for r in 0..reps {
            let pi = JlProjection::generate(JlKind::Gaussian, 64, 16, seed * 1000 + r);
            let y = pi.project(&x).unwrap();
            total += ops::dot(y.row(0), y.row(0)) / nx;
        }
        let mean = total / reps as f64;
        prop_assert!((mean - 1.0).abs() < 0.25, "mean distortion {mean}");
    }

    /// Achlioptas projections have the same unbiasedness.
    #[test]
    fn achlioptas_unbiased_norms(seed in 0u64..50) {
        let x = ekm_linalg::random::gaussian_matrix(seed + 500, 1, 64, 1.0);
        let nx = ops::dot(x.row(0), x.row(0));
        let mut total = 0.0;
        let reps = 60;
        for r in 0..reps {
            let pi = JlProjection::generate(JlKind::Achlioptas, 64, 16, seed * 997 + r);
            let y = pi.project(&x).unwrap();
            total += ops::dot(y.row(0), y.row(0)) / nx;
        }
        let mean = total / reps as f64;
        prop_assert!((mean - 1.0).abs() < 0.25, "mean distortion {mean}");
    }

    /// Lift∘project is the identity on the projected space for every seed
    /// and shape.
    #[test]
    fn lift_right_inverse(seed in 0u64..300, d in 6usize..40) {
        let dp = 2 + (seed as usize % (d - 3));
        let pi = JlProjection::generate(JlKind::Gaussian, d, dp.min(d - 1), seed);
        let x = ekm_linalg::random::gaussian_matrix(seed + 7, 2, pi.target_dim(), 1.0);
        let back = pi.project(&pi.lift(&x).unwrap()).unwrap();
        prop_assert!(back.approx_eq(&x, 1e-6));
    }

    /// PCA coordinates plus residual conserve energy for every input.
    #[test]
    fn pca_energy_conservation(seed in 0u64..200, t in 1usize..6) {
        let data = ekm_linalg::random::gaussian_matrix(seed, 30, 8, 1.0);
        let pca = Pca::fit(&data, t).unwrap();
        let coords = pca.coordinates(&data).unwrap();
        let total = coords.frobenius_norm_sq() + pca.residual_sq();
        prop_assert!((total - data.frobenius_norm_sq()).abs() < 1e-7 * data.frobenius_norm_sq());
    }

    /// PCA projection is idempotent: projecting the projection changes
    /// nothing.
    #[test]
    fn pca_projection_idempotent(seed in 0u64..200) {
        let data = ekm_linalg::random::gaussian_matrix(seed, 20, 10, 1.0);
        let pca = Pca::fit(&data, 3).unwrap();
        let once = pca.project_into_subspace(&data).unwrap();
        let twice = pca.project_into_subspace(&once).unwrap();
        prop_assert!(twice.approx_eq(&once, 1e-8));
    }

    /// Lemma 4.1 dimension is monotone: more points, more clusters, or a
    /// smaller δ never shrink d'.
    #[test]
    fn lemma41_monotone(n in 10usize..10_000, k in 1usize..10) {
        let base = dims::lemma41_jl_dim(n, k, 0.5, 0.1);
        prop_assert!(dims::lemma41_jl_dim(n * 2, k, 0.5, 0.1) >= base);
        prop_assert!(dims::lemma41_jl_dim(n, k + 1, 0.5, 0.1) >= base);
        prop_assert!(dims::lemma41_jl_dim(n, k, 0.5, 0.05) >= base);
    }

    /// Matrices regenerate identically from the same seed across calls.
    #[test]
    fn seeded_regeneration(seed in 0u64..1000) {
        let a = JlProjection::generate(JlKind::Achlioptas, 16, 4, seed);
        let b = JlProjection::generate(JlKind::Achlioptas, 16, 4, seed);
        prop_assert!(a.matrix().approx_eq(b.matrix(), 0.0));
        let m = Matrix::from_fn(3, 16, |i, j| (i * 16 + j) as f64 * 0.01);
        prop_assert!(a.project(&m).unwrap().approx_eq(&b.project(&m).unwrap(), 0.0));
    }
}
