//! PCA-based dimensionality reduction.
//!
//! FSS (paper Theorem 3.2 / \[11\]) first projects the dataset onto its top
//! `t` principal components to reduce the *intrinsic* dimension, keeping
//! the residual energy `Δ = ‖A − A·V_t·V_tᵀ‖²_F` as an additive constant in
//! the coreset cost. This module provides exactly that primitive. PCA here
//! follows the k-means DR literature in operating on the raw (uncentered)
//! data matrix — i.e. it is a truncated SVD.

use ekm_linalg::{ops, svd, LinalgError, Matrix};

/// A fitted PCA projection (top-`t` right singular vectors).
#[derive(Debug, Clone)]
pub struct Pca {
    components: Matrix,
    singular_values: Vec<f64>,
    residual_sq: f64,
}

impl Pca {
    /// Fits PCA with `t` components to the rows of `data` (uncentered, per
    /// the k-means DR convention).
    ///
    /// `t` is clamped to `min(n, d)`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::EmptyMatrix`] for empty input.
    /// * [`LinalgError::RankOutOfRange`] if `t == 0`.
    /// * Propagates SVD failures.
    ///
    /// # Example
    ///
    /// ```
    /// use ekm_linalg::Matrix;
    /// use ekm_sketch::Pca;
    ///
    /// // Rank-1 data: one component captures everything.
    /// let data = Matrix::from_fn(20, 6, |i, j| ((i + 1) * (j + 1)) as f64);
    /// let pca = Pca::fit(&data, 1).unwrap();
    /// assert!(pca.residual_sq() < 1e-6 * data.frobenius_norm_sq());
    /// ```
    pub fn fit(data: &Matrix, t: usize) -> Result<Pca, LinalgError> {
        if data.is_empty() {
            return Err(LinalgError::EmptyMatrix { op: "pca fit" });
        }
        if t == 0 {
            return Err(LinalgError::RankOutOfRange {
                requested: 0,
                available: data.rows().min(data.cols()),
            });
        }
        let t = t.min(data.rows()).min(data.cols());
        let s = svd::thin_svd(data)?;
        let trunc = s.truncate(t)?;
        let captured: f64 = trunc.singular_values.iter().map(|v| v * v).sum();
        let residual_sq = (data.frobenius_norm_sq() - captured).max(0.0);
        Ok(Pca {
            components: trunc.v,
            singular_values: trunc.singular_values,
            residual_sq,
        })
    }

    /// Number of components `t`.
    pub fn n_components(&self) -> usize {
        self.components.cols()
    }

    /// The component basis `V_t` (`d × t`, orthonormal columns).
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Singular values associated with the kept components, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Residual energy `Δ = ‖A − A·V_t·V_tᵀ‖²_F` of the training data.
    ///
    /// This is the additive constant FSS carries in its coreset (paper
    /// Definition 3.2's Δ).
    pub fn residual_sq(&self) -> f64 {
        self.residual_sq
    }

    /// Coordinates of `data` in the component basis: `A·V_t` (`n × t`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on column mismatch.
    pub fn coordinates(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        ops::matmul(data, &self.components)
    }

    /// Projection of `data` onto the component subspace, expressed in the
    /// original space: `A·V_t·V_tᵀ` (`n × d`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on column mismatch.
    pub fn project_into_subspace(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        let coords = self.coordinates(data)?;
        ops::matmul_transb(&coords, &self.components)
    }

    /// Maps coordinate-space points (`m × t`) back to the original space
    /// (`m × d`): `Y ↦ Y·V_tᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on column mismatch.
    pub fn lift_coordinates(&self, coords: &Matrix) -> Result<Matrix, LinalgError> {
        ops::matmul_transb(coords, &self.components)
    }

    /// Residual energy of an arbitrary dataset against this basis:
    /// `‖B − B·V_t·V_tᵀ‖²_F` computed stably as `‖B‖² − ‖B·V_t‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on column mismatch.
    pub fn residual_sq_of(&self, data: &Matrix) -> Result<f64, LinalgError> {
        let coords = self.coordinates(data)?;
        Ok((data.frobenius_norm_sq() - coords.frobenius_norm_sq()).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_linalg::random::gaussian_matrix;

    fn low_rank(seed: u64, n: usize, d: usize, r: usize) -> Matrix {
        let u = gaussian_matrix(seed, n, r, 1.0);
        let v = gaussian_matrix(seed + 100, r, d, 1.0);
        ops::matmul(&u, &v).unwrap()
    }

    #[test]
    fn captures_low_rank_data_exactly() {
        let a = low_rank(1, 30, 12, 3);
        let pca = Pca::fit(&a, 3).unwrap();
        assert!(pca.residual_sq() < 1e-6 * a.frobenius_norm_sq());
        let back = pca.project_into_subspace(&a).unwrap();
        assert!(back.approx_eq(&a, 1e-6 * (1.0 + a.frobenius_norm())));
    }

    #[test]
    fn residual_decreases_with_components() {
        let a = gaussian_matrix(2, 40, 10, 1.0);
        let mut last = f64::INFINITY;
        for t in 1..=10 {
            let pca = Pca::fit(&a, t).unwrap();
            assert!(pca.residual_sq() <= last + 1e-9, "t={t}");
            last = pca.residual_sq();
        }
        assert!(last < 1e-6, "full-rank residual {last}");
    }

    #[test]
    fn energy_conservation() {
        // ‖A‖² = ‖A·V_t‖² + Δ.
        let a = gaussian_matrix(3, 25, 8, 1.0);
        let pca = Pca::fit(&a, 4).unwrap();
        let coords = pca.coordinates(&a).unwrap();
        let total = coords.frobenius_norm_sq() + pca.residual_sq();
        assert!((total - a.frobenius_norm_sq()).abs() < 1e-8 * a.frobenius_norm_sq());
    }

    #[test]
    fn components_are_orthonormal() {
        let a = gaussian_matrix(4, 30, 9, 1.0);
        let pca = Pca::fit(&a, 5).unwrap();
        let g = ops::gram(pca.components());
        assert!(g.approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn coordinates_roundtrip_through_lift() {
        let a = low_rank(5, 20, 10, 2);
        let pca = Pca::fit(&a, 2).unwrap();
        let coords = pca.coordinates(&a).unwrap();
        let lifted = pca.lift_coordinates(&coords).unwrap();
        // For data in the subspace, lifting coordinates reconstructs it.
        assert!(lifted.approx_eq(&a, 1e-6 * (1.0 + a.frobenius_norm())));
    }

    #[test]
    fn residual_sq_of_other_data() {
        let train = low_rank(6, 20, 8, 2);
        let pca = Pca::fit(&train, 2).unwrap();
        // Same subspace → near-zero residual.
        assert!(pca.residual_sq_of(&train).unwrap() < 1e-6);
        // Orthogonal-ish random data → sizable residual.
        let other = gaussian_matrix(7, 5, 8, 1.0);
        let r = pca.residual_sq_of(&other).unwrap();
        assert!(r > 0.1, "residual {r}");
        assert!(r <= other.frobenius_norm_sq() + 1e-9);
    }

    #[test]
    fn t_clamped_to_rank() {
        let a = gaussian_matrix(8, 5, 12, 1.0); // min(n,d)=5
        let pca = Pca::fit(&a, 100).unwrap();
        assert_eq!(pca.n_components(), 5);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(Pca::fit(&Matrix::zeros(0, 3), 1).is_err());
        let a = gaussian_matrix(9, 4, 4, 1.0);
        assert!(Pca::fit(&a, 0).is_err());
        let pca = Pca::fit(&a, 2).unwrap();
        assert!(pca.coordinates(&Matrix::zeros(2, 5)).is_err());
    }

    #[test]
    fn singular_values_descending() {
        let a = gaussian_matrix(10, 30, 6, 1.0);
        let pca = Pca::fit(&a, 6).unwrap();
        for w in pca.singular_values().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}
