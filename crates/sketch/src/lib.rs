//! Dimensionality-reduction (DR) methods for the `edge-kmeans` workspace.
//!
//! Two DR families from the paper (§3.2):
//!
//! * [`jl`] — Johnson–Lindenstrauss random projections (Gaussian and
//!   Achlioptas sparse-sign), the *data-oblivious* maps at the heart of
//!   Algorithms 1–4. Because the projection matrix is generated from a seed
//!   shared between data sources and server, applying DR costs **zero
//!   communication** — the key observation behind the paper's improvements
//!   over FSS/BKLW.
//! * [`pca`] — PCA / truncated-SVD projection, the data-*dependent* DR used
//!   inside FSS and disPCA (which is why those must transmit a basis,
//!   paying `O(d)` per basis vector).
//!
//! [`dims`] computes the target dimensions prescribed by Lemma 4.1 and
//! Lemma 4.2 (with the explicit constant `d' = ⌈8·ln(4nk/δ)/ε²⌉` the paper
//! uses in §6.3.2), plus the practical variants used by the experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dims;
pub mod jl;
pub mod pca;

pub use jl::{JlKind, JlProjection};
pub use pca::Pca;
