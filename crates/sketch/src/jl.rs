//! Johnson–Lindenstrauss random projections.
//!
//! A JL projection here is a linear map `π(p) = p·Π` with `Π ∈ R^{d×d'}`
//! drawn from a sub-Gaussian family satisfying the JL Lemma (paper
//! Lemma 3.1 / Theorem 3.1). Both supported families preserve squared
//! norms in expectation:
//!
//! * [`JlKind::Gaussian`] — i.i.d. `N(0, 1/d')` entries;
//! * [`JlKind::Achlioptas`] — sparse `{±√(3/d'), 0}` entries with
//!   probabilities `(1/6, 1/6, 2/3)` (reference \[33\]).
//!
//! The matrix is a pure function of `(kind, d, d', seed)`, so two parties
//! sharing the seed regenerate the identical map — transmitting it costs
//! nothing (§3.2 Remark).

use ekm_linalg::random::{achlioptas_matrix, gaussian_matrix};
use ekm_linalg::{ops, pinv, LinalgError, Matrix};
use std::fmt;

/// The random family a [`JlProjection`] is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JlKind {
    /// Dense i.i.d. Gaussian entries, `N(0, 1/d')`.
    Gaussian,
    /// Sparse Achlioptas entries `{±√(3/d'), 0}` w.p. `(1/6, 1/6, 2/3)`.
    Achlioptas,
}

impl fmt::Display for JlKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JlKind::Gaussian => write!(f, "gaussian"),
            JlKind::Achlioptas => write!(f, "achlioptas"),
        }
    }
}

/// A seeded Johnson–Lindenstrauss projection `R^d → R^{d'}`.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_sketch::{JlKind, JlProjection};
///
/// let pi = JlProjection::generate(JlKind::Gaussian, 100, 20, 42);
/// let data = Matrix::from_fn(5, 100, |i, j| ((i + j) % 3) as f64);
/// let reduced = pi.project(&data).unwrap();
/// assert_eq!(reduced.shape(), (5, 20));
/// // Same seed on another node: identical map, zero communication.
/// let pi2 = JlProjection::generate(JlKind::Gaussian, 100, 20, 42);
/// assert!(pi2.project(&data).unwrap().approx_eq(&reduced, 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct JlProjection {
    kind: JlKind,
    seed: u64,
    matrix: Matrix,
}

impl JlProjection {
    /// Generates the projection matrix for `(kind, source_dim, target_dim,
    /// seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `source_dim == 0` or `target_dim == 0`.
    pub fn generate(kind: JlKind, source_dim: usize, target_dim: usize, seed: u64) -> Self {
        assert!(source_dim > 0, "JL projection needs source_dim > 0");
        assert!(target_dim > 0, "JL projection needs target_dim > 0");
        let sigma = 1.0 / (target_dim as f64).sqrt();
        let matrix = match kind {
            JlKind::Gaussian => gaussian_matrix(seed, source_dim, target_dim, sigma),
            JlKind::Achlioptas => achlioptas_matrix(seed, source_dim, target_dim, sigma),
        };
        JlProjection { kind, seed, matrix }
    }

    /// The family this projection was drawn from.
    pub fn kind(&self) -> JlKind {
        self.kind
    }

    /// The seed the matrix is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Input dimensionality `d`.
    pub fn source_dim(&self) -> usize {
        self.matrix.rows()
    }

    /// Output dimensionality `d'`.
    pub fn target_dim(&self) -> usize {
        self.matrix.cols()
    }

    /// Borrows the projection matrix `Π ∈ R^{d×d'}`.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Projects a dataset: `π(P) = A_P · Π` (`n×d → n×d'`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.cols()` differs
    /// from [`source_dim`](Self::source_dim).
    pub fn project(&self, data: &Matrix) -> Result<Matrix, LinalgError> {
        ops::matmul(data, &self.matrix)
    }

    /// Projects a single point.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn project_point(&self, point: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if point.len() != self.source_dim() {
            return Err(LinalgError::DimensionMismatch {
                op: "jl project_point",
                lhs: (1, point.len()),
                rhs: self.matrix.shape(),
            });
        }
        let mut out = vec![0.0; self.target_dim()];
        for (i, &v) in point.iter().enumerate() {
            if v == 0.0 {
                continue;
            }
            for (o, &m) in out.iter_mut().zip(self.matrix.row(i)) {
                *o += v * m;
            }
        }
        Ok(out)
    }

    /// Computes the Moore–Penrose pseudo-inverse `Π⁺ ∈ R^{d'×d}` used to map
    /// centers found in the projected space back to `R^d`
    /// (`π⁻¹(X') = A_{X'}·Π⁺`, paper §3.1).
    ///
    /// # Errors
    ///
    /// Propagates pseudo-inverse failures.
    pub fn pseudo_inverse(&self) -> Result<Matrix, LinalgError> {
        pinv::pinv(&self.matrix)
    }

    /// Maps centers `X' ⊂ R^{d'}` back to the original space via `Π⁺`.
    ///
    /// # Errors
    ///
    /// Propagates shape and pseudo-inverse failures.
    pub fn lift(&self, centers: &Matrix) -> Result<Matrix, LinalgError> {
        let p = self.pseudo_inverse()?;
        ops::matmul(centers, &p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_linalg::random::rng_from_seed;
    use rand::Rng;

    #[test]
    fn deterministic_from_seed() {
        let a = JlProjection::generate(JlKind::Gaussian, 50, 10, 7);
        let b = JlProjection::generate(JlKind::Gaussian, 50, 10, 7);
        assert!(a.matrix().approx_eq(b.matrix(), 0.0));
        let c = JlProjection::generate(JlKind::Gaussian, 50, 10, 8);
        assert!(!a.matrix().approx_eq(c.matrix(), 1e-9));
    }

    #[test]
    fn shapes_and_accessors() {
        let p = JlProjection::generate(JlKind::Achlioptas, 30, 5, 1);
        assert_eq!(p.source_dim(), 30);
        assert_eq!(p.target_dim(), 5);
        assert_eq!(p.kind(), JlKind::Achlioptas);
        assert_eq!(p.seed(), 1);
        assert_eq!(format!("{}", JlKind::Gaussian), "gaussian");
        assert_eq!(format!("{}", JlKind::Achlioptas), "achlioptas");
    }

    #[test]
    fn norm_preservation_in_expectation_gaussian() {
        // E‖π(x)‖² = ‖x‖²; averaged over many unit vectors and a decent d',
        // the mean distortion should be close to 1.
        let d = 200;
        let dp = 64;
        let pi = JlProjection::generate(JlKind::Gaussian, d, dp, 3);
        let mut rng = rng_from_seed(4);
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() - 0.5).collect();
            let nx = ops::dot(&x, &x);
            let y = pi.project_point(&x).unwrap();
            let ny = ops::dot(&y, &y);
            total += ny / nx;
        }
        let mean = total / trials as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean distortion {mean}");
    }

    #[test]
    fn norm_preservation_in_expectation_achlioptas() {
        let d = 200;
        let dp = 64;
        let pi = JlProjection::generate(JlKind::Achlioptas, d, dp, 5);
        let mut rng = rng_from_seed(6);
        let mut total = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let x: Vec<f64> = (0..d).map(|_| rng.gen::<f64>() - 0.5).collect();
            let y = pi.project_point(&x).unwrap();
            total += ops::dot(&y, &y) / ops::dot(&x, &x);
        }
        let mean = total / trials as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean distortion {mean}");
    }

    #[test]
    fn project_matches_project_point() {
        let pi = JlProjection::generate(JlKind::Gaussian, 20, 6, 9);
        let data = Matrix::from_fn(4, 20, |i, j| ((i * j) % 5) as f64 - 2.0);
        let m = pi.project(&data).unwrap();
        for i in 0..4 {
            let p = pi.project_point(data.row(i)).unwrap();
            for j in 0..6 {
                assert!((m[(i, j)] - p[j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lift_then_project_is_identity_on_projected_space() {
        // π(π⁻¹(X')) = X' because Π⁺ is a right inverse of projection
        // composition when d' < d (Π has full column rank a.s.).
        let pi = JlProjection::generate(JlKind::Gaussian, 40, 8, 11);
        let x_prime = Matrix::from_fn(3, 8, |i, j| (i + j) as f64 * 0.3);
        let lifted = pi.lift(&x_prime).unwrap();
        assert_eq!(lifted.shape(), (3, 40));
        let reprojected = pi.project(&lifted).unwrap();
        assert!(reprojected.approx_eq(&x_prime, 1e-8), "π(π⁻¹(X')) != X'");
    }

    #[test]
    fn dimension_mismatch_errors() {
        let pi = JlProjection::generate(JlKind::Gaussian, 10, 4, 2);
        assert!(pi.project(&Matrix::zeros(3, 9)).is_err());
        assert!(pi.project_point(&[0.0; 9]).is_err());
    }

    #[test]
    #[should_panic(expected = "target_dim")]
    fn zero_target_dim_panics() {
        let _ = JlProjection::generate(JlKind::Gaussian, 10, 0, 1);
    }

    #[test]
    fn pairwise_distance_distortion_bounded() {
        // JL with d' = 64 on a handful of points: empirical distortion of
        // pairwise distances stays within ±50% with overwhelming
        // probability (loose sanity bound — the lemma promises much more
        // for this d').
        let d = 300;
        let pi = JlProjection::generate(JlKind::Gaussian, d, 64, 13);
        let mut rng = rng_from_seed(14);
        let pts = Matrix::from_fn(10, d, |_, _| rng.gen::<f64>() - 0.5);
        let proj = pi.project(&pts).unwrap();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let orig = ops::sq_dist(pts.row(i), pts.row(j));
                let red = ops::sq_dist(proj.row(i), proj.row(j));
                let ratio = red / orig;
                assert!(
                    (0.5..=1.5).contains(&ratio),
                    "distortion {ratio} outside [0.5, 1.5]"
                );
            }
        }
    }
}
