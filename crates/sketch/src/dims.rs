//! Target-dimension calculators for JL projections and PCA.
//!
//! The paper prescribes:
//!
//! * Lemma 4.1: projecting an `n`-point dataset for k-means needs
//!   `d' = O(ε⁻²·log(nk/δ))`; §6.3.2 instantiates the constant as
//!   `d' ≤ ⌈8·ln(4nk/δ)/ε²⌉` (from which it derives `C2 = 24`).
//! * Lemma 4.2: same formula with the *coreset* cardinality `n'` in place
//!   of `n`.
//! * Theorem 5.1 (disPCA) and FSS's intrinsic-dimension step use
//!   `t = k + ⌈4k/ε²⌉ − 1` principal components.
//!
//! The theory constants are intentionally conservative; the experiment
//! harness also uses [`practical_jl_dim`] with a tunable constant, matching
//! how the paper's own evaluation "tuned the parameters … to make all the
//! algorithms achieve a similar empirical approximation error" (§7.2.1).

/// JL target dimension from Lemma 4.1 with the §6.3.2 constant:
/// `⌈8·ln(4·n·k/δ)/ε²⌉`, clamped to at least 1.
///
/// # Panics
///
/// Panics if `epsilon` or `delta` are not in `(0, 1)`, or `n`/`k` are 0.
///
/// # Example
///
/// ```
/// let d1 = ekm_sketch::dims::lemma41_jl_dim(60_000, 2, 0.5, 0.1);
/// let d2 = ekm_sketch::dims::lemma41_jl_dim(60_000, 2, 0.25, 0.1);
/// assert!(d2 > d1); // smaller ε needs more dimensions
/// ```
pub fn lemma41_jl_dim(n: usize, k: usize, epsilon: f64, delta: f64) -> usize {
    validate(n, k, epsilon, delta);
    let arg = 4.0 * (n as f64) * (k as f64) / delta;
    let d = (8.0 * arg.ln() / (epsilon * epsilon)).ceil();
    (d as usize).max(1)
}

/// JL target dimension from Lemma 4.2 — identical formula with the coreset
/// cardinality `n'` in place of `n`.
///
/// # Panics
///
/// See [`lemma41_jl_dim`].
pub fn lemma42_jl_dim(coreset_size: usize, k: usize, epsilon: f64, delta: f64) -> usize {
    lemma41_jl_dim(coreset_size, k, epsilon, delta)
}

/// The PCA / disPCA intrinsic dimension `t₁ = t₂ = k + ⌈4k/ε²⌉ − 1`
/// (Theorem 5.1).
///
/// # Panics
///
/// Panics if `epsilon ∉ (0, 1)` or `k == 0`.
pub fn theorem51_pca_dim(k: usize, epsilon: f64) -> usize {
    assert!(k > 0, "k must be positive");
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    k + ((4.0 * k as f64) / (epsilon * epsilon)).ceil() as usize - 1
}

/// Practical JL dimension used by the experiment harness:
/// `⌈c·ln(n·k)/ε²⌉`, clamped to `[2, d]`.
///
/// The paper's experiments tune parameters rather than using worst-case
/// constants; `c = 1` reproduces communication footprints of the same
/// order as Table 3.
///
/// # Panics
///
/// Panics if `epsilon <= 0` or inputs are zero.
pub fn practical_jl_dim(n: usize, k: usize, epsilon: f64, c: f64, original_dim: usize) -> usize {
    assert!(
        n > 0 && k > 0 && original_dim > 0,
        "inputs must be positive"
    );
    assert!(epsilon > 0.0, "epsilon must be positive");
    let d = (c * ((n * k) as f64).ln() / (epsilon * epsilon)).ceil() as usize;
    d.clamp(2, original_dim)
}

fn validate(n: usize, k: usize, epsilon: f64, delta: f64) {
    assert!(n > 0, "n must be positive");
    assert!(k > 0, "k must be positive");
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma41_matches_formula() {
        // d' = ⌈8·ln(4nk/δ)/ε²⌉
        let d = lemma41_jl_dim(1000, 2, 0.5, 0.1);
        let expect = (8.0 * (4.0 * 1000.0 * 2.0 / 0.1f64).ln() / 0.25).ceil() as usize;
        assert_eq!(d, expect);
    }

    #[test]
    fn lemma41_grows_logarithmically_in_n() {
        let d1 = lemma41_jl_dim(1_000, 2, 0.5, 0.1);
        let d2 = lemma41_jl_dim(1_000_000, 2, 0.5, 0.1);
        // 1000× more points only adds ~8·ln(1000)/ε² ≈ 221 dims.
        assert!(d2 > d1);
        assert!(d2 - d1 < 8 * 28 + 10);
    }

    #[test]
    fn lemma41_scales_inverse_eps_squared() {
        let d1 = lemma41_jl_dim(1000, 2, 0.4, 0.1);
        let d2 = lemma41_jl_dim(1000, 2, 0.2, 0.1);
        let ratio = d2 as f64 / d1 as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn lemma42_uses_coreset_size() {
        assert_eq!(
            lemma42_jl_dim(500, 2, 0.3, 0.1),
            lemma41_jl_dim(500, 2, 0.3, 0.1)
        );
        // Coresets are small, so Lemma 4.2 dims are below Lemma 4.1 dims.
        assert!(lemma42_jl_dim(500, 2, 0.3, 0.1) < lemma41_jl_dim(60_000, 2, 0.3, 0.1));
    }

    #[test]
    fn theorem51_formula() {
        // k + ⌈4k/ε²⌉ − 1
        assert_eq!(theorem51_pca_dim(2, 0.5), 2 + 32 - 1);
        assert_eq!(
            theorem51_pca_dim(3, 0.99),
            3 + (12.0f64 / 0.9801).ceil() as usize - 1
        );
    }

    #[test]
    fn practical_dim_clamps_to_original() {
        assert_eq!(practical_jl_dim(60_000, 2, 0.5, 1.0, 20), 20);
        let d = practical_jl_dim(60_000, 2, 0.5, 1.0, 10_000);
        let expect = ((60_000.0f64 * 2.0).ln() / 0.25).ceil() as usize;
        assert_eq!(d, expect);
        assert_eq!(practical_jl_dim(2, 1, 10.0, 1.0, 100), 2); // lower clamp
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        let _ = lemma41_jl_dim(10, 2, 1.5, 0.1);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        let _ = lemma41_jl_dim(10, 2, 0.5, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = theorem51_pca_dim(0, 0.5);
    }
}
