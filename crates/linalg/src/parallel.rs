//! Minimal scoped-thread helpers for data-parallel loops.
//!
//! The workspace deliberately avoids external thread-pool crates; plain
//! `std::thread::scope` over row chunks is enough for the dense kernels and
//! the k-means assignment loops.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide worker-count override (0 = follow the hardware).
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Returns the number of worker threads to use for parallel sections:
/// the override installed by [`set_worker_count`] when present, else the
/// hardware parallelism.
pub fn worker_count() -> usize {
    match WORKER_OVERRIDE.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n,
    }
}

/// Caps every parallel section in the process at `n` worker threads
/// (the CLI's `--threads` knob); `0` restores the hardware default.
/// Results are bit-identical at any setting — only scheduling changes.
pub fn set_worker_count(n: usize) {
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Splits the row-major buffer `data` (rows of width `row_width`) into
/// near-equal chunks of whole rows and runs `f(first_row_index, chunk)` on
/// each, in parallel when `parallel` is true and it is worth it.
///
/// `f` must be safe to run concurrently on disjoint chunks.
///
/// # Panics
///
/// Panics if `row_width == 0` while `data` is non-empty.
pub fn for_each_row_chunk<F>(data: &mut [f64], row_width: usize, parallel: bool, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_width > 0, "for_each_row_chunk: zero row width");
    let n_rows = data.len() / row_width;
    let workers = if parallel {
        worker_count().min(n_rows)
    } else {
        1
    };
    if workers <= 1 {
        f(0, data);
        return;
    }
    let rows_per = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row_start = 0;
        while !rest.is_empty() {
            let take_rows = rows_per.min(rest.len() / row_width);
            let (chunk, tail) = rest.split_at_mut(take_rows * row_width);
            let fref = &f;
            let start = row_start;
            scope.spawn(move || fref(start, chunk));
            row_start += take_rows;
            rest = tail;
        }
    });
}

/// Splits the row-major buffer `data` (rows of width `row_width`, any
/// element type) into `workers` near-equal chunks of whole rows and runs
/// `f(first_row_index, chunk)` on each via scoped threads. Per-row
/// results must be independent, so any split is bit-identical; the
/// blocked distance kernels route every precision through this one
/// splitter.
///
/// # Panics
///
/// Panics if `row_width == 0` while `data` is non-empty.
pub fn for_each_row_chunk_in<T, F>(data: &mut [T], row_width: usize, workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_width > 0, "for_each_row_chunk_in: zero row width");
    let n_rows = data.len() / row_width;
    let workers = workers.clamp(1, n_rows);
    if workers == 1 {
        f(0, data);
        return;
    }
    let rows_per = n_rows.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = data;
        let mut row_start = 0;
        while !rest.is_empty() {
            let take_rows = rows_per.min(rest.len() / row_width);
            let (chunk, tail) = rest.split_at_mut(take_rows * row_width);
            let fref = &f;
            let start = row_start;
            scope.spawn(move || fref(start, chunk));
            row_start += take_rows;
            rest = tail;
        }
    });
}

/// Splits two equal-length buffers at the same row boundaries and runs
/// `f(first_index, a_chunk, b_chunk)` on each pair via scoped threads —
/// the splitter behind fused assignment (labels + distances written by
/// the same worker for the same points).
///
/// # Panics
///
/// Panics if the buffers disagree on length.
pub fn for_each_pair_chunk_in<A, B, F>(a: &mut [A], b: &mut [B], workers: usize, f: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "for_each_pair_chunk_in: length mismatch");
    let n = a.len();
    if n == 0 {
        return;
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        f(0, a, b);
        return;
    }
    let per = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut arest = a;
        let mut brest = b;
        let mut start = 0;
        while !arest.is_empty() {
            let take = per.min(arest.len());
            let (achunk, atail) = arest.split_at_mut(take);
            let (bchunk, btail) = brest.split_at_mut(take);
            arest = atail;
            brest = btail;
            let fref = &f;
            let first = start;
            scope.spawn(move || fref(first, achunk, bchunk));
            start += take;
        }
    });
}

/// Maps `f` over `0..n` in parallel, writing results into a `Vec`.
///
/// Used for embarrassingly parallel per-point computations (e.g. assignment
/// distances). Falls back to a sequential loop for small `n`.
pub fn par_map_indices<T, F>(n: usize, min_parallel: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let workers = if n >= min_parallel { worker_count() } else { 1 };
    par_map_indices_in(n, workers, f)
}

/// [`par_map_indices`] with an explicit worker count (the sharded-solve
/// path passes its shard knob here). Results are identical at any count —
/// each index's computation is independent and lands in its own slot.
pub fn par_map_indices_in<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + Default + Clone,
    F: Fn(usize) -> T + Sync,
{
    let mut out = vec![T::default(); n];
    if n == 0 {
        return out;
    }
    let workers = workers.min(n).max(1);
    if workers <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return out;
    }
    let per = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest: &mut [T] = &mut out;
        let mut start = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len());
            let (chunk, tail) = rest.split_at_mut(take);
            let fref = &f;
            scope.spawn(move || {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    *slot = fref(start + off);
                }
            });
            start += take;
            rest = tail;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_count_at_least_one() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn for_each_row_chunk_sequential_matches_parallel() {
        let width = 3;
        let rows = 100;
        let mut seq = vec![0.0f64; rows * width];
        let mut par = vec![0.0f64; rows * width];
        let fill = |start: usize, chunk: &mut [f64]| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                let i = start + local;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * width + j) as f64;
                }
            }
        };
        for_each_row_chunk(&mut seq, width, false, fill);
        for_each_row_chunk(&mut par, width, true, fill);
        assert_eq!(seq, par);
        assert_eq!(seq[5 * width + 2], (5 * width + 2) as f64);
    }

    #[test]
    fn for_each_row_chunk_empty_ok() {
        let mut empty: Vec<f64> = vec![];
        for_each_row_chunk(&mut empty, 4, true, |_, _| panic!("must not run"));
    }

    #[test]
    fn par_map_indices_matches_sequential() {
        let seq = par_map_indices(1000, usize::MAX, |i| i * i);
        let par = par_map_indices(1000, 1, |i| i * i);
        assert_eq!(seq, par);
        assert_eq!(seq[31], 961);
    }

    #[test]
    fn par_map_indices_in_identical_at_every_worker_count() {
        let reference = par_map_indices_in(257, 1, |i| i * 3 + 1);
        for workers in [2, 4, 8, 300] {
            assert_eq!(par_map_indices_in(257, workers, |i| i * 3 + 1), reference);
        }
    }

    #[test]
    fn for_each_row_chunk_in_identical_at_every_worker_count() {
        let width = 5;
        let rows = 97;
        let fill = |start: usize, chunk: &mut [f32]| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = ((start + local) * width + j) as f32;
                }
            }
        };
        let mut reference = vec![0.0f32; rows * width];
        for_each_row_chunk_in(&mut reference, width, 1, fill);
        for workers in [2, 3, 8, 200] {
            let mut out = vec![0.0f32; rows * width];
            for_each_row_chunk_in(&mut out, width, workers, fill);
            assert_eq!(out, reference, "{workers} workers");
        }
    }

    #[test]
    fn for_each_pair_chunk_in_splits_pairs_consistently() {
        let n = 61;
        let fill = |start: usize, a: &mut [usize], b: &mut [f64]| {
            for (off, (x, y)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
                *x = start + off;
                *y = (start + off) as f64 * 0.5;
            }
        };
        let mut ra = vec![0usize; n];
        let mut rb = vec![0.0f64; n];
        for_each_pair_chunk_in(&mut ra, &mut rb, 1, fill);
        for workers in [2, 4, 100] {
            let mut a = vec![0usize; n];
            let mut b = vec![0.0f64; n];
            for_each_pair_chunk_in(&mut a, &mut b, workers, fill);
            assert_eq!(a, ra, "{workers} workers");
            assert_eq!(b, rb, "{workers} workers");
        }
    }

    #[test]
    fn par_map_indices_empty() {
        let v: Vec<usize> = par_map_indices(0, 1, |i| i);
        assert!(v.is_empty());
    }
}
