//! Dense linear-algebra substrate for the `edge-kmeans` workspace.
//!
//! This crate provides everything the paper's algorithms need from linear
//! algebra, implemented from scratch on a row-major dense [`Matrix`]:
//!
//! * basic operations: products, Gram matrices, transposes ([`ops`]),
//! * blocked pairwise-distance / nearest-center kernels ([`distance`]),
//! * Householder QR ([`qr`]),
//! * a cyclic Jacobi eigensolver for symmetric matrices ([`eig`]),
//! * thin and randomized truncated SVD ([`svd`]),
//! * Cholesky factorization and SPD solves ([`cholesky`]),
//! * Moore–Penrose pseudo-inverse ([`pinv`]) used to invert JL projections,
//! * seeded Gaussian / Rademacher sampling ([`random`]) used to build
//!   data-oblivious JL projection matrices from a shared seed.
//!
//! Datasets throughout the workspace are represented as a [`Matrix`] whose
//! rows are data points (`n × d`, matching the paper's `A_P` notation).
//!
//! # Example
//!
//! ```
//! use ekm_linalg::{Matrix, ops, svd};
//!
//! let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
//! let s = svd::thin_svd(&a).expect("svd");
//! assert!((s.singular_values[0] - 3.0).abs() < 1e-10);
//! let ata = ops::gram(&a);
//! assert_eq!(ata.rows(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cholesky;
pub mod distance;
pub mod eig;
mod error;
pub mod matrix;
pub mod ops;
pub mod parallel;
pub mod pinv;
pub mod qr;
pub mod random;
pub mod svd;

pub use error::LinalgError;
pub use matrix::{Matrix, MatrixF32};

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
