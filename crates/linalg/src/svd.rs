//! Thin and randomized truncated singular value decompositions.
//!
//! FSS and disPCA need the top-`t` right singular vectors of a dataset
//! matrix `A ∈ R^{n×d}` (rows are points). Two routes are provided:
//!
//! * [`thin_svd`] — exact (to Jacobi precision) via the eigendecomposition
//!   of the smaller Gram matrix (`AᵀA` or `AAᵀ`), complexity
//!   `O(nd·min(n,d))`, exactly the complexity the paper charges FSS/BKLW
//!   with (Theorems 4.3 / 5.3);
//! * [`truncated_svd`] — randomized subspace iteration computing only the
//!   top-`t` triple, used where speed matters more than the last digits.

use crate::random::gaussian_matrix;
use crate::{eig, ops, qr, LinalgError, Matrix, Result};

/// A (possibly truncated) singular value decomposition `A ≈ U · diag(σ) · Vᵀ`.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors as columns (`n × t`).
    pub u: Matrix,
    /// Singular values, descending (`t` of them).
    pub singular_values: Vec<f64>,
    /// Right singular vectors as columns (`d × t`).
    pub v: Matrix,
}

impl Svd {
    /// Number of singular triples retained.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstructs `U · diag(σ) · Vᵀ`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying products.
    pub fn reconstruct(&self) -> Result<Matrix> {
        let us = scale_cols(&self.u, &self.singular_values);
        ops::matmul_transb(&us, &self.v)
    }

    /// Returns the truncation keeping only the first `t` triples.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RankOutOfRange`] if `t > self.rank()`.
    pub fn truncate(&self, t: usize) -> Result<Svd> {
        if t > self.rank() {
            return Err(LinalgError::RankOutOfRange {
                requested: t,
                available: self.rank(),
            });
        }
        Ok(Svd {
            u: self.u.first_cols(t)?,
            singular_values: self.singular_values[..t].to_vec(),
            v: self.v.first_cols(t)?,
        })
    }
}

/// Multiplies column `j` of `m` by `s[j]`.
fn scale_cols(m: &Matrix, s: &[f64]) -> Matrix {
    let mut out = m.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for (v, &sj) in row.iter_mut().zip(s) {
            *v *= sj;
        }
    }
    out
}

/// Relative threshold under which a singular value is treated as zero.
const SV_RELATIVE_TOL: f64 = 1e-12;

/// Computes the thin SVD of `a` via the eigendecomposition of the smaller
/// Gram matrix.
///
/// Returns `min(n, d)` triples (numerically zero singular values keep their
/// slots with zeroed `U`/`V` columns replaced by an orthonormal completion
/// where possible).
///
/// # Errors
///
/// * [`LinalgError::EmptyMatrix`] for an empty input.
/// * Propagates Jacobi convergence failures.
pub fn thin_svd(a: &Matrix) -> Result<Svd> {
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "thin_svd" });
    }
    let (n, d) = a.shape();
    if d <= n {
        // Eigen of AᵀA (d×d): A = U Σ Vᵀ with AᵀA = V Σ² Vᵀ.
        let e = eig::symmetric_eigen(&ops::gram(a))?;
        let sigmas: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = e.vectors; // d × d
        let u = left_vectors_from_right(a, &v, &sigmas)?;
        Ok(Svd {
            u,
            singular_values: sigmas,
            v,
        })
    } else {
        // Eigen of AAᵀ (n×n): U from eigenvectors, V = Aᵀ U Σ⁻¹.
        let e = eig::symmetric_eigen(&ops::outer_gram(a))?;
        let sigmas: Vec<f64> = e.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = e.vectors; // n × n
        let v = left_vectors_from_right(&a.transpose(), &u, &sigmas)?;
        Ok(Svd {
            u,
            singular_values: sigmas,
            v,
        })
    }
}

/// Given `A` (n×d), right singular vectors `V` (d×t) and singular values,
/// computes `U = A·V·Σ⁻¹`, zeroing columns whose σ is numerically zero.
fn left_vectors_from_right(a: &Matrix, v: &Matrix, sigmas: &[f64]) -> Result<Matrix> {
    let av = ops::matmul(a, v)?;
    let smax = sigmas.first().copied().unwrap_or(0.0);
    let tol = smax * SV_RELATIVE_TOL;
    let inv: Vec<f64> = sigmas
        .iter()
        .map(|&s| if s > tol { 1.0 / s } else { 0.0 })
        .collect();
    Ok(scale_cols(&av, &inv))
}

/// Options for [`truncated_svd`].
#[derive(Debug, Clone)]
pub struct TruncatedSvdOptions {
    /// Oversampling columns added to the sketch (default 8).
    pub oversample: usize,
    /// Power/subspace iterations (default 2); more improves accuracy when
    /// the spectrum decays slowly.
    pub power_iterations: usize,
    /// Seed for the random test matrix.
    pub seed: u64,
}

impl Default for TruncatedSvdOptions {
    fn default() -> Self {
        TruncatedSvdOptions {
            oversample: 8,
            power_iterations: 2,
            seed: 0x5eed_5eed,
        }
    }
}

/// Computes an approximate top-`t` SVD of `a` by randomized subspace
/// iteration (Halko–Martinsson–Tropp style).
///
/// # Errors
///
/// * [`LinalgError::EmptyMatrix`] for an empty input.
/// * [`LinalgError::RankOutOfRange`] if `t == 0` or `t > min(n, d)`.
///
/// # Example
///
/// ```
/// use ekm_linalg::{Matrix, svd};
/// let a = Matrix::from_fn(40, 10, |i, j| ((i + 1) * (j + 1)) as f64); // rank 1
/// let s = svd::truncated_svd(&a, 1, &svd::TruncatedSvdOptions::default()).unwrap();
/// let back = s.reconstruct().unwrap();
/// assert!(back.approx_eq(&a, 1e-6 * a.frobenius_norm()));
/// ```
pub fn truncated_svd(a: &Matrix, t: usize, opts: &TruncatedSvdOptions) -> Result<Svd> {
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "truncated_svd",
        });
    }
    let (n, d) = a.shape();
    let max_rank = n.min(d);
    if t == 0 || t > max_rank {
        return Err(LinalgError::RankOutOfRange {
            requested: t,
            available: max_rank,
        });
    }
    let sketch = (t + opts.oversample).min(max_rank);

    // Range finder: Y = A·G, orthonormalize, then power iterations.
    let g = gaussian_matrix(opts.seed, d, sketch, 1.0);
    let mut q = qr::orthonormalize(&ops::matmul(a, &g)?)?;
    for _ in 0..opts.power_iterations {
        let z = qr::orthonormalize(&ops::matmul_transa(a, &q)?)?; // d × s
        q = qr::orthonormalize(&ops::matmul(a, &z)?)?; // n × s
    }

    // Project: B = Qᵀ A  (s × d) and take its thin SVD.
    let b = ops::matmul_transa(&q, a)?;
    let sb = thin_svd(&b)?;
    let u = ops::matmul(&q, &sb.u)?;
    let full = Svd {
        u,
        singular_values: sb.singular_values,
        v: sb.v,
    };
    full.truncate(t)
}

/// Returns the top-`t` right singular vectors of `a` as a `d × t` matrix,
/// choosing the exact Gram route (small `min(n,d)`) or the randomized route.
///
/// This is the primitive FSS and disPCA are built on.
///
/// # Errors
///
/// Propagates errors from the chosen SVD routine.
pub fn top_right_singular_vectors(a: &Matrix, t: usize) -> Result<Matrix> {
    let max_rank = a.rows().min(a.cols());
    let t = t.min(max_rank);
    if t == 0 {
        return Err(LinalgError::RankOutOfRange {
            requested: 0,
            available: max_rank,
        });
    }
    // Exact route when the Gram side is small or t is a large fraction.
    let small_side = a.cols().min(a.rows());
    if small_side <= 400 || t * 4 >= small_side {
        let s = thin_svd(a)?;
        s.truncate(t).map(|s| s.v)
    } else {
        let s = truncated_svd(a, t, &TruncatedSvdOptions::default())?;
        Ok(s.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;

    fn low_rank(seed: u64, n: usize, d: usize, r: usize) -> Matrix {
        let u = gaussian_matrix(seed, n, r, 1.0);
        let v = gaussian_matrix(seed + 1, r, d, 1.0);
        ops::matmul(&u, &v).unwrap()
    }

    #[test]
    fn thin_svd_reconstructs_tall() {
        let a = gaussian_matrix(41, 12, 5, 1.0);
        let s = thin_svd(&a).unwrap();
        assert_eq!(s.rank(), 5);
        assert!(s.reconstruct().unwrap().approx_eq(&a, 1e-8));
    }

    #[test]
    fn thin_svd_reconstructs_wide() {
        let a = gaussian_matrix(42, 5, 12, 1.0);
        let s = thin_svd(&a).unwrap();
        assert_eq!(s.rank(), 5);
        assert!(s.reconstruct().unwrap().approx_eq(&a, 1e-8));
    }

    #[test]
    fn singular_values_descending_nonnegative() {
        let a = gaussian_matrix(43, 15, 8, 1.0);
        let s = thin_svd(&a).unwrap();
        for w in s.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(s.singular_values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn frobenius_identity() {
        // ‖A‖_F² = Σ σ_i².
        let a = gaussian_matrix(44, 10, 7, 1.0);
        let s = thin_svd(&a).unwrap();
        let sum_sq: f64 = s.singular_values.iter().map(|v| v * v).sum();
        assert!((sum_sq - a.frobenius_norm_sq()).abs() < 1e-8 * a.frobenius_norm_sq());
    }

    #[test]
    fn diag_matrix_known_svd() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]);
        let s = thin_svd(&a).unwrap();
        assert!((s.singular_values[0] - 4.0).abs() < 1e-10);
        assert!((s.singular_values[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn u_and_v_orthonormal_on_full_rank() {
        let a = gaussian_matrix(45, 20, 6, 1.0);
        let s = thin_svd(&a).unwrap();
        assert!(ops::gram(&s.u).approx_eq(&Matrix::identity(6), 1e-8));
        assert!(ops::gram(&s.v).approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn rank_deficient_svd() {
        let a = low_rank(46, 20, 10, 3);
        let s = thin_svd(&a).unwrap();
        for &sv in &s.singular_values[3..] {
            assert!(sv < 1e-6 * s.singular_values[0], "trailing σ = {sv}");
        }
        assert!(s
            .reconstruct()
            .unwrap()
            .approx_eq(&a, 1e-7 * a.frobenius_norm()));
    }

    #[test]
    fn truncate_keeps_top() {
        let a = gaussian_matrix(47, 9, 9, 1.0);
        let s = thin_svd(&a).unwrap();
        let t = s.truncate(3).unwrap();
        assert_eq!(t.rank(), 3);
        assert_eq!(t.singular_values, s.singular_values[..3].to_vec());
        assert!(s.truncate(10).is_err());
    }

    #[test]
    fn truncated_svd_matches_thin_on_low_rank() {
        let a = low_rank(48, 50, 30, 4);
        let tr = truncated_svd(&a, 4, &TruncatedSvdOptions::default()).unwrap();
        let back = tr.reconstruct().unwrap();
        assert!(
            back.approx_eq(&a, 1e-6 * a.frobenius_norm().max(1.0)),
            "randomized reconstruction off"
        );
    }

    #[test]
    fn truncated_svd_top_value_close() {
        let a = gaussian_matrix(49, 60, 40, 1.0);
        let exact = thin_svd(&a).unwrap();
        let approx = truncated_svd(&a, 5, &TruncatedSvdOptions::default()).unwrap();
        for i in 0..5 {
            let rel = (approx.singular_values[i] - exact.singular_values[i]).abs()
                / exact.singular_values[i];
            assert!(rel < 0.05, "σ_{i} rel err {rel}");
        }
    }

    #[test]
    fn truncated_svd_bad_rank_errors() {
        let a = gaussian_matrix(50, 5, 5, 1.0);
        assert!(truncated_svd(&a, 0, &TruncatedSvdOptions::default()).is_err());
        assert!(truncated_svd(&a, 6, &TruncatedSvdOptions::default()).is_err());
    }

    #[test]
    fn top_right_singular_vectors_projection_captures_energy() {
        let a = low_rank(51, 40, 12, 2);
        let v = top_right_singular_vectors(&a, 2).unwrap();
        assert_eq!(v.shape(), (12, 2));
        // Projecting onto V should preserve nearly all Frobenius energy.
        let av = ops::matmul(&a, &v).unwrap();
        let energy = av.frobenius_norm_sq();
        assert!((energy - a.frobenius_norm_sq()).abs() < 1e-6 * a.frobenius_norm_sq());
    }

    #[test]
    fn empty_inputs_error() {
        assert!(thin_svd(&Matrix::zeros(0, 3)).is_err());
        assert!(truncated_svd(&Matrix::zeros(0, 3), 1, &TruncatedSvdOptions::default()).is_err());
    }

    #[test]
    fn svd_of_zero_matrix() {
        let a = Matrix::zeros(4, 3);
        let s = thin_svd(&a).unwrap();
        assert!(s.singular_values.iter().all(|&v| v == 0.0));
        assert!(s.reconstruct().unwrap().approx_eq(&a, 1e-12));
    }
}
