//! Moore–Penrose pseudo-inverse.
//!
//! The paper maps k-means centers computed in a projected space back to the
//! original space via *any* inverse of the (non-invertible) projection; the
//! canonical choice is the Moore–Penrose inverse `Π⁺` (§3.1). For
//! full-column-rank matrices a fast normal-equation route is used; the
//! general case falls back to the SVD.

use crate::cholesky::Cholesky;
use crate::{ops, svd, LinalgError, Matrix, Result};

/// Computes the Moore–Penrose pseudo-inverse `A⁺` of `a`.
///
/// For a full-column-rank `d × t` matrix (`t ≤ d`) this uses
/// `A⁺ = (AᵀA)⁻¹Aᵀ` via Cholesky; otherwise (or when the Gram matrix is
/// numerically singular) it falls back to the SVD route
/// `A⁺ = V·Σ⁺·Uᵀ`.
///
/// # Errors
///
/// * [`LinalgError::EmptyMatrix`] for an empty input.
/// * Propagates SVD convergence failures.
///
/// # Example
///
/// ```
/// use ekm_linalg::{Matrix, pinv, ops};
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0], vec![0.0, 0.0]]);
/// let p = pinv::pinv(&a).unwrap();
/// // A⁺·A = I for full column rank.
/// let ident = ops::matmul(&p, &a).unwrap();
/// assert!(ident.approx_eq(&Matrix::identity(2), 1e-10));
/// ```
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "pinv" });
    }
    if a.cols() <= a.rows() {
        // Try the fast normal-equation route first, but only trust it when
        // the Cholesky pivots show the Gram matrix is far from singular
        // (rank-deficient inputs can factor with tiny spurious pivots).
        let gram = ops::gram(a);
        if let Ok(ch) = Cholesky::factor(&gram) {
            let l = ch.l();
            let mut dmin = f64::INFINITY;
            let mut dmax: f64 = 0.0;
            for i in 0..l.rows() {
                dmin = dmin.min(l[(i, i)]);
                dmax = dmax.max(l[(i, i)]);
            }
            if dmax > 0.0 && dmin / dmax > 1e-7 {
                // (AᵀA)⁻¹ Aᵀ: solve for each column of Aᵀ.
                let at = a.transpose();
                return ch.solve_matrix(&at);
            }
        }
    }
    pinv_svd(a)
}

/// Pseudo-inverse via the SVD: `A⁺ = V·Σ⁺·Uᵀ` with small singular values
/// dropped at a relative tolerance of `1e-6·σ_max`.
///
/// The tolerance accounts for the Gram-route SVD: eigenvalues carry an
/// absolute error of about `1e-14·σ_max²`, so spurious singular values can
/// reach `1e-7·σ_max` and must be treated as zero.
///
/// # Errors
///
/// Propagates SVD errors.
pub fn pinv_svd(a: &Matrix) -> Result<Matrix> {
    let s = svd::thin_svd(a)?;
    let smax = s.singular_values.first().copied().unwrap_or(0.0);
    let tol = smax * 1e-6;
    // V · Σ⁺ (scale columns of V) then · Uᵀ.
    let mut v_scaled = s.v.clone();
    for i in 0..v_scaled.rows() {
        let row = v_scaled.row_mut(i);
        for (x, &sv) in row.iter_mut().zip(&s.singular_values) {
            *x = if sv > tol { *x / sv } else { 0.0 };
        }
    }
    ops::matmul_transb(&v_scaled, &s.u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::gaussian_matrix;

    fn check_penrose(a: &Matrix, p: &Matrix, tol: f64) {
        // 1. A·A⁺·A = A
        let apa = ops::matmul(&ops::matmul(a, p).unwrap(), a).unwrap();
        assert!(apa.approx_eq(a, tol), "A·A⁺·A != A");
        // 2. A⁺·A·A⁺ = A⁺
        let pap = ops::matmul(&ops::matmul(p, a).unwrap(), p).unwrap();
        assert!(pap.approx_eq(p, tol), "A⁺·A·A⁺ != A⁺");
        // 3. (A·A⁺)ᵀ = A·A⁺
        let ap = ops::matmul(a, p).unwrap();
        assert!(ap.approx_eq(&ap.transpose(), tol), "A·A⁺ not symmetric");
        // 4. (A⁺·A)ᵀ = A⁺·A
        let pa = ops::matmul(p, a).unwrap();
        assert!(pa.approx_eq(&pa.transpose(), tol), "A⁺·A not symmetric");
    }

    #[test]
    fn tall_full_rank_penrose_conditions() {
        let a = gaussian_matrix(61, 12, 4, 1.0);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (4, 12));
        check_penrose(&a, &p, 1e-8);
    }

    #[test]
    fn wide_full_rank_penrose_conditions() {
        let a = gaussian_matrix(62, 4, 12, 1.0);
        let p = pinv(&a).unwrap();
        assert_eq!(p.shape(), (12, 4));
        check_penrose(&a, &p, 1e-8);
    }

    #[test]
    fn rank_deficient_penrose_conditions() {
        // Rank-2 matrix in 6×5.
        let u = gaussian_matrix(63, 6, 2, 1.0);
        let v = gaussian_matrix(64, 2, 5, 1.0);
        let a = ops::matmul(&u, &v).unwrap();
        let p = pinv(&a).unwrap();
        check_penrose(&a, &p, 1e-7);
    }

    #[test]
    fn pinv_of_square_invertible_is_inverse() {
        let mut a = gaussian_matrix(65, 5, 5, 1.0);
        for i in 0..5 {
            a[(i, i)] += 3.0; // ensure well-conditioned
        }
        let p = pinv(&a).unwrap();
        let ident = ops::matmul(&a, &p).unwrap();
        assert!(ident.approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn left_inverse_for_full_column_rank() {
        let a = gaussian_matrix(66, 30, 6, 1.0);
        let p = pinv(&a).unwrap();
        let pa = ops::matmul(&p, &a).unwrap();
        assert!(pa.approx_eq(&Matrix::identity(6), 1e-8));
    }

    #[test]
    fn pinv_svd_matches_pinv_on_full_rank() {
        let a = gaussian_matrix(67, 10, 4, 1.0);
        let p1 = pinv(&a).unwrap();
        let p2 = pinv_svd(&a).unwrap();
        assert!(p1.approx_eq(&p2, 1e-7));
    }

    #[test]
    fn zero_matrix_pinv_is_zero() {
        let a = Matrix::zeros(3, 2);
        let p = pinv(&a).unwrap();
        assert!(p.approx_eq(&Matrix::zeros(2, 3), 1e-12));
    }

    #[test]
    fn empty_errors() {
        assert!(pinv(&Matrix::zeros(0, 0)).is_err());
    }
}
