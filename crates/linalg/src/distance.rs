//! Blocked pairwise squared-distance kernels.
//!
//! Every assignment loop in the workspace — Lloyd iterations, k-means++
//! D² seeding, sensitivity sampling, streaming reduces — bottoms out in
//! "squared distance from each point to each center". The scalar
//! per-pair loop (`ops::sq_dist`) carries a serial dependency chain the
//! compiler cannot vectorize under strict IEEE semantics; this module
//! replaces it with a blocked kernel built on the norm-expansion form
//!
//! ```text
//! ‖x − c‖² = ‖x‖² + ‖c‖² − 2·⟨x, c⟩
//! ```
//!
//! with row norms precomputed once and cache-blocked tiles over
//! (points × centers). The inner loop runs in `i-k-j` order against a
//! transposed center tile, so every center in the tile owns an
//! independent accumulator — there is no per-pair reduction chain, and
//! the compiler vectorizes the `j` loop exactly like the dense
//! [`ops::matmul`] kernel.
//!
//! # Determinism
//!
//! Results are **bit-identical at every worker count** (the same
//! invariance discipline as the sharded Lloyd fold): each point's result
//! is computed by an identical sequence of floating-point operations —
//! the center-tile walk is fixed by the center count alone, and the
//! parallel split only partitions *which thread* computes which point,
//! never the per-point operation order. `*_in` variants take an explicit
//! worker count so tests can assert the invariance without touching the
//! process-wide override.
//!
//! # Accuracy domain
//!
//! The expansion form rounds differently from the subtract-square form:
//! its absolute error scales with `ulp(‖x‖² + ‖c‖²)`, not with the gap
//! itself, so the *relative* error of a distance grows as
//! `(‖x‖² + ‖c‖²) / ‖x − c‖²` — catastrophic cancellation when the data
//! sit far from the origin relative to their spread (e.g. two points
//! near 1e8 separated by 1, where the expansion returns 0). This is the
//! standard trade-off of norm-expansion distance kernels; every
//! pipeline in this workspace operates on `normalize_paper`-scaled data
//! (unit max norm), where the forms agree to a relative `1e-12`
//! tolerance (proptested). Callers with un-centered, large-offset data
//! should translate it toward the origin first (k-means distances are
//! translation invariant) or use the scalar `ops::sq_dist` path.
//!
//! Exact self-distance is preserved at any magnitude
//! (`‖x‖² + ‖x‖² − 2⟨x,x⟩ = 0` exactly because norms and inner products
//! share one accumulation order — see [`serial_dot`]), and tiny negative
//! rounding residues are clamped to zero so D² sampling weights stay
//! valid.

use crate::parallel;
use crate::{LinalgError, Matrix, Result};

/// Center rows per cache tile: the tile (`CENTER_TILE × d` doubles) stays
/// resident in L1/L2 while a block of points streams against it.
const CENTER_TILE: usize = 32;

/// Point rows per inner block (bounds the working set of point rows that
/// revisit a center tile; has no effect on results).
const POINT_BLOCK: usize = 256;

/// Minimum number of point×center pairs before the kernels spawn threads.
const PAR_PAIRS: usize = 1 << 13;

/// Plain left-to-right dot product — the exact accumulation order of
/// [`tile_dots`]'s per-center accumulators, so norms computed here are
/// bitwise consistent with the kernel's inner products (which is what
/// makes `‖x − x‖²` collapse to exactly zero after expansion).
#[inline]
fn serial_dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "serial_dot: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `‖row‖²` for every row, in the kernel's accumulation order (see
/// [`serial_dot`]).
pub fn row_norms_sq(m: &Matrix) -> Vec<f64> {
    m.iter_rows().map(|r| serial_dot(r, r)).collect()
}

/// Validates that `points` and `centers` are non-empty and agree on
/// dimensionality.
fn check_shapes(op: &'static str, points: &Matrix, centers: &Matrix) -> Result<()> {
    if points.cols() != centers.cols() {
        return Err(LinalgError::DimensionMismatch {
            op,
            lhs: points.shape(),
            rhs: centers.shape(),
        });
    }
    Ok(())
}

/// Worker count the auto-parallel entry points use for an `n × k` pair
/// grid: the process default above the pair threshold, else 1.
fn auto_workers(n: usize, k: usize) -> usize {
    if n.saturating_mul(k) >= PAR_PAIRS {
        parallel::worker_count()
    } else {
        1
    }
}

/// The full `n × k` matrix of squared distances from every row of
/// `points` to every row of `centers`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless the operands agree
/// on dimensionality.
pub fn sq_dists_block(points: &Matrix, centers: &Matrix) -> Result<Matrix> {
    sq_dists_block_in(points, centers, auto_workers(points.rows(), centers.rows()))
}

/// [`sq_dists_block`] with an explicit worker count (results are
/// bit-identical at every count).
///
/// # Errors
///
/// See [`sq_dists_block`].
pub fn sq_dists_block_in(points: &Matrix, centers: &Matrix, workers: usize) -> Result<Matrix> {
    check_shapes("sq_dists_block", points, centers)?;
    let (n, k) = (points.rows(), centers.rows());
    let mut out = Matrix::zeros(n, k);
    if n == 0 || k == 0 {
        return Ok(out);
    }
    let layout = CenterLayout::new(centers);
    run_point_ranges(n, workers, out.as_mut_slice(), k, |row_start, rows| {
        dists_range(points, &layout, row_start, rows);
    });
    Ok(out)
}

/// Nearest-center assignment of every row of `points`: `(labels,
/// squared distances)`, ties broken toward the lower center index.
///
/// This is the fused form of [`sq_dists_block`] — the `n × k` distance
/// matrix is never materialized; each point's row of distances is
/// reduced to its argmin on the fly.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] unless the operands agree on
///   dimensionality.
/// * [`LinalgError::EmptyMatrix`] if `centers` has no rows (there is no
///   nearest center to assign).
pub fn assign_blocked(points: &Matrix, centers: &Matrix) -> Result<(Vec<usize>, Vec<f64>)> {
    assign_blocked_in(points, centers, auto_workers(points.rows(), centers.rows()))
}

/// [`assign_blocked`] with an explicit worker count (results are
/// bit-identical at every count).
///
/// # Errors
///
/// See [`assign_blocked`].
pub fn assign_blocked_in(
    points: &Matrix,
    centers: &Matrix,
    workers: usize,
) -> Result<(Vec<usize>, Vec<f64>)> {
    check_shapes("assign_blocked", points, centers)?;
    if centers.rows() == 0 {
        return Err(LinalgError::EmptyMatrix {
            op: "assign_blocked",
        });
    }
    let n = points.rows();
    let mut labels = vec![0usize; n];
    let mut dists = vec![0.0f64; n];
    if n == 0 {
        return Ok((labels, dists));
    }
    let layout = CenterLayout::new(centers);
    // Both output vectors are split at the same fixed boundaries so each
    // worker owns a contiguous (labels, dists) range of the same points.
    let workers = workers.clamp(1, n);
    if workers == 1 {
        assign_range(points, &layout, 0, &mut labels, &mut dists);
    } else {
        let per = n.div_ceil(workers);
        std::thread::scope(|scope| {
            let mut lrest: &mut [usize] = &mut labels;
            let mut drest: &mut [f64] = &mut dists;
            let mut start = 0;
            let layout = &layout;
            while !lrest.is_empty() {
                let take = per.min(lrest.len());
                let (lchunk, ltail) = lrest.split_at_mut(take);
                let (dchunk, dtail) = drest.split_at_mut(take);
                lrest = ltail;
                drest = dtail;
                let row_start = start;
                start += take;
                scope.spawn(move || {
                    assign_range(points, layout, row_start, lchunk, dchunk);
                });
            }
        });
    }
    Ok((labels, dists))
}

/// Squared distance from every row of `points` to the single `center`
/// row, given precomputed point norms (`‖x_i‖²` from [`row_norms_sq`]) —
/// the kernel behind k-means++'s incremental D² update, where the point
/// norms are paid once and every subsequent round is pure dot products.
///
/// # Panics
///
/// Panics if `point_norms_sq.len() != points.rows()` or the center
/// dimensionality disagrees (callers hold both invariants).
pub fn sq_dists_to_row(points: &Matrix, point_norms_sq: &[f64], center: &[f64]) -> Vec<f64> {
    assert_eq!(
        point_norms_sq.len(),
        points.rows(),
        "sq_dists_to_row: norm count"
    );
    assert_eq!(
        points.cols(),
        center.len(),
        "sq_dists_to_row: dimensionality"
    );
    let c2 = serial_dot(center, center);
    parallel::par_map_indices(points.rows(), PAR_PAIRS, |i| {
        (point_norms_sq[i] + c2 - 2.0 * serial_dot(points.row(i), center)).max(0.0)
    })
}

/// Splits `out` (rows of width `row_width`) into `workers` near-equal
/// contiguous row ranges and runs `f(first_row, chunk)` on each via
/// scoped threads. Per-row results are independent, so any split is
/// bit-identical.
fn run_point_ranges<F>(n: usize, workers: usize, out: &mut [f64], row_width: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let workers = workers.clamp(1, n);
    if workers == 1 {
        f(0, out);
        return;
    }
    let per = n.div_ceil(workers);
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut start = 0;
        while !rest.is_empty() {
            let take = per.min(rest.len() / row_width);
            let (chunk, tail) = rest.split_at_mut(take * row_width);
            rest = tail;
            let fref = &f;
            let row_start = start;
            scope.spawn(move || fref(row_start, chunk));
            start += take;
        }
    });
}

/// The centers in `d × k` transposed layout (row `kk` holds every
/// center's coordinate `kk`), plus their norms — precomputed once per
/// kernel call and shared read-only by all workers.
struct CenterLayout {
    /// Transposed center coordinates, row-major `d × k`.
    t: Vec<f64>,
    /// `‖c_j‖²` per center.
    c2: Vec<f64>,
    k: usize,
}

impl CenterLayout {
    fn new(centers: &Matrix) -> CenterLayout {
        let (k, d) = centers.shape();
        let mut t = vec![0.0f64; d * k];
        for (j, row) in centers.iter_rows().enumerate() {
            for (kk, &v) in row.iter().enumerate() {
                t[kk * k + j] = v;
            }
        }
        CenterLayout {
            t,
            c2: row_norms_sq(centers),
            k,
        }
    }
}

/// Computes `⟨x, c_j⟩` for every center `j` in
/// `tile_start..tile_start + acc.len()`, accumulating in `i-k-j` order:
/// the `j` loop runs over contiguous transposed-center rows with one
/// independent accumulator per center, which vectorizes without any
/// reduction chain, and the dimension loop is 4-way unrolled to amortize
/// its overhead. Every accumulator still receives its products strictly
/// left to right over the dimensions — the same association as
/// [`serial_dot`] — and the order is fixed by the layout alone, so
/// results are identical no matter how points are partitioned.
#[inline]
fn tile_dots(x: &[f64], layout: &CenterLayout, tile_start: usize, acc: &mut [f64]) {
    acc.fill(0.0);
    let k = layout.k;
    let tw = acc.len();
    let t = &layout.t;
    let quads = x.len() / 4;
    for q in 0..quads {
        let kk = q * 4;
        let (x0, x1, x2, x3) = (x[kk], x[kk + 1], x[kk + 2], x[kk + 3]);
        let r0 = &t[kk * k + tile_start..kk * k + tile_start + tw];
        let r1 = &t[(kk + 1) * k + tile_start..(kk + 1) * k + tile_start + tw];
        let r2 = &t[(kk + 2) * k + tile_start..(kk + 2) * k + tile_start + tw];
        let r3 = &t[(kk + 3) * k + tile_start..(kk + 3) * k + tile_start + tw];
        for j in 0..tw {
            let mut a = acc[j];
            a += x0 * r0[j];
            a += x1 * r1[j];
            a += x2 * r2[j];
            a += x3 * r3[j];
            acc[j] = a;
        }
    }
    for (kk, &xk) in x.iter().enumerate().skip(quads * 4) {
        let trow = &t[kk * k + tile_start..kk * k + tile_start + tw];
        for (a, &tv) in acc.iter_mut().zip(trow) {
            *a += xk * tv;
        }
    }
}

/// Fills `rows` (a contiguous `len × k` block of the output starting at
/// point `row_start`) with squared distances to every center.
fn dists_range(points: &Matrix, layout: &CenterLayout, row_start: usize, rows: &mut [f64]) {
    let k = layout.k;
    let len = rows.len() / k;
    let mut acc = vec![0.0f64; CENTER_TILE.min(k)];
    let mut block_start = 0;
    while block_start < len {
        // The center tile stays hot in cache across the point block.
        let block_end = (block_start + POINT_BLOCK).min(len);
        let mut tile_start = 0;
        while tile_start < k {
            let tile_end = (tile_start + CENTER_TILE).min(k);
            let acc = &mut acc[..tile_end - tile_start];
            for local in block_start..block_end {
                let x = points.row(row_start + local);
                let x2 = serial_dot(x, x);
                tile_dots(x, layout, tile_start, acc);
                let orow = &mut rows[local * k + tile_start..local * k + tile_end];
                for ((o, &dot_j), &c2j) in orow
                    .iter_mut()
                    .zip(acc.iter())
                    .zip(&layout.c2[tile_start..tile_end])
                {
                    *o = (x2 + c2j - 2.0 * dot_j).max(0.0);
                }
            }
            tile_start = tile_end;
        }
        block_start = block_end;
    }
}

/// Fused argmin over the same tile walk as [`dists_range`]: fills the
/// `labels`/`dists` ranges for points `row_start..row_start + len`.
///
/// The center tiles are visited in increasing index order and the best
/// distance is carried across tiles with a strict `<`, so ties break to
/// the lowest center index exactly like the scalar `nearest_center`.
fn assign_range(
    points: &Matrix,
    layout: &CenterLayout,
    row_start: usize,
    labels: &mut [usize],
    dists: &mut [f64],
) {
    let k = layout.k;
    let len = labels.len();
    let mut acc = vec![0.0f64; CENTER_TILE.min(k)];
    let mut block_start = 0;
    while block_start < len {
        let block_end = (block_start + POINT_BLOCK).min(len);
        // Per-point running best, carried across center tiles.
        for d in &mut dists[block_start..block_end] {
            *d = f64::INFINITY;
        }
        let mut tile_start = 0;
        while tile_start < k {
            let tile_end = (tile_start + CENTER_TILE).min(k);
            let acc = &mut acc[..tile_end - tile_start];
            for local in block_start..block_end {
                let x = points.row(row_start + local);
                let x2 = serial_dot(x, x);
                tile_dots(x, layout, tile_start, acc);
                let mut best = labels[local];
                let mut best_d = dists[local];
                for (off, (&dot_j, &c2j)) in
                    acc.iter().zip(&layout.c2[tile_start..tile_end]).enumerate()
                {
                    let d = (x2 + c2j - 2.0 * dot_j).max(0.0);
                    if d < best_d {
                        best_d = d;
                        best = tile_start + off;
                    }
                }
                labels[local] = best;
                dists[local] = best_d;
            }
            tile_start = tile_end;
        }
        block_start = block_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn workload(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| {
            (((i * 31 + j * 17) % 101) as f64 - 50.0) * 0.125
        })
    }

    /// Reference: the scalar subtract-square loop.
    fn naive(points: &Matrix, centers: &Matrix) -> Matrix {
        Matrix::from_fn(points.rows(), centers.rows(), |i, j| {
            ops::sq_dist(points.row(i), centers.row(j))
        })
    }

    #[test]
    fn matches_naive_within_tolerance() {
        let p = workload(137, 9);
        let c = workload(21, 9);
        let blocked = sq_dists_block(&p, &c).unwrap();
        let reference = naive(&p, &c);
        for i in 0..p.rows() {
            for j in 0..c.rows() {
                let (a, b) = (blocked[(i, j)], reference[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn self_distance_is_exactly_zero() {
        let p = workload(40, 7);
        let d = sq_dists_block(&p, &p).unwrap();
        for i in 0..p.rows() {
            assert_eq!(d[(i, i)], 0.0, "row {i}");
        }
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let p = workload(700, 13);
        let c = workload(67, 13);
        let reference = sq_dists_block_in(&p, &c, 1).unwrap();
        let (rl, rd) = assign_blocked_in(&p, &c, 1).unwrap();
        for workers in [2, 3, 4, 8, 300] {
            assert!(
                sq_dists_block_in(&p, &c, workers).unwrap() == reference,
                "{workers} workers"
            );
            let (l, d) = assign_blocked_in(&p, &c, workers).unwrap();
            assert_eq!(l, rl, "{workers} workers");
            assert_eq!(d, rd, "{workers} workers");
        }
    }

    #[test]
    fn assign_matches_full_matrix_argmin() {
        let p = workload(300, 6);
        let c = workload(70, 6); // > 2 center tiles
        let full = sq_dists_block(&p, &c).unwrap();
        let (labels, dists) = assign_blocked(&p, &c).unwrap();
        for i in 0..p.rows() {
            let row = full.row(i);
            let (mut best, mut best_d) = (0usize, f64::INFINITY);
            for (j, &d) in row.iter().enumerate() {
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            assert_eq!(labels[i], best, "row {i}");
            assert_eq!(dists[i], best_d, "row {i}");
        }
    }

    #[test]
    fn ties_break_to_first_center() {
        let p = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let c = Matrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 1.0]]);
        let (labels, dists) = assign_blocked(&p, &c).unwrap();
        assert_eq!(labels, vec![0]);
        assert!((dists[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sq_dists_to_row_matches_block_column() {
        let p = workload(90, 11);
        let c = workload(4, 11);
        let norms = row_norms_sq(&p);
        let full = sq_dists_block(&p, &c).unwrap();
        for j in 0..c.rows() {
            let col = sq_dists_to_row(&p, &norms, c.row(j));
            for i in 0..p.rows() {
                assert_eq!(col[i], full[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn dimension_mismatch_errors() {
        let p = Matrix::zeros(3, 4);
        let c = Matrix::zeros(2, 5);
        assert!(sq_dists_block(&p, &c).is_err());
        assert!(assign_blocked(&p, &c).is_err());
    }

    #[test]
    fn empty_points_ok() {
        let p = Matrix::zeros(0, 3);
        let c = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        assert_eq!(sq_dists_block(&p, &c).unwrap().shape(), (0, 1));
        let (l, d) = assign_blocked(&p, &c).unwrap();
        assert!(l.is_empty() && d.is_empty());
    }

    #[test]
    fn empty_centers_error_not_panic() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let none = Matrix::zeros(0, 2);
        assert!(matches!(
            assign_blocked(&p, &none),
            Err(LinalgError::EmptyMatrix { .. })
        ));
        // The full-matrix form has a natural n × 0 answer instead.
        assert_eq!(sq_dists_block(&p, &none).unwrap().shape(), (1, 0));
    }
}
