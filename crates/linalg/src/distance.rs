//! Blocked pairwise squared-distance kernels.
//!
//! Every assignment loop in the workspace — Lloyd iterations, k-means++
//! D² seeding, sensitivity sampling, streaming reduces — bottoms out in
//! "squared distance from each point to each center". The scalar
//! per-pair loop (`ops::sq_dist`) carries a serial dependency chain the
//! compiler cannot vectorize under strict IEEE semantics; this module
//! replaces it with a blocked kernel built on the norm-expansion form
//!
//! ```text
//! ‖x − c‖² = ‖x‖² + ‖c‖² − 2·⟨x, c⟩
//! ```
//!
//! with row norms precomputed once and cache-blocked tiles over
//! (points × centers).
//!
//! # Lane accumulators
//!
//! The inner loop is shaped for the autovectorizer: centers are packed
//! into *lane groups* of [`LANES`] columns, stored contiguously per
//! dimension, and each group is reduced with a fixed `[T; LANES]`
//! accumulator array that lives in registers for the whole dimension
//! walk. Every accumulator receives its products strictly left to right
//! over the dimensions — the same association as [`serial_dot`] — and a
//! lane is one center, so no horizontal sum ever mixes accumulation
//! orders. The compiler turns the 8-wide lane loop into plain vector
//! FMA-free SIMD in both `f64` and `f32`; the `f32` path doubles the
//! effective vector width and halves memory traffic.
//!
//! The kernel is generic over the [`Element`] scalar trait so one tiled
//! implementation serves both precisions; [`Compute`] selects the path
//! and [`DistanceEngine`] owns the prepared (possibly converted) points
//! so per-call conversion cost is paid once per dataset, not per
//! iteration.
//!
//! # Determinism
//!
//! Results are **bit-identical at every worker count** (the same
//! invariance discipline as the sharded Lloyd fold): each point's result
//! is computed by an identical sequence of floating-point operations —
//! the lane-group walk is fixed by the center count alone, and the
//! parallel split only partitions *which thread* computes which point,
//! never the per-point operation order. `*_in` variants take an explicit
//! worker count so tests can assert the invariance without touching the
//! process-wide override. Tile sizes ([`CENTER_TILE`], [`POINT_BLOCK`])
//! only reorder *independent* per-point work and never change any
//! accumulation order, so retuning them is results-neutral.
//!
//! # Accuracy domain
//!
//! The expansion form rounds differently from the subtract-square form:
//! its absolute error scales with `ulp(‖x‖² + ‖c‖²)`, not with the gap
//! itself, so the *relative* error of a distance grows as
//! `(‖x‖² + ‖c‖²) / ‖x − c‖²` — catastrophic cancellation when the data
//! sit far from the origin relative to their spread (e.g. two points
//! near 1e8 separated by 1, where the expansion returns 0). This is the
//! standard trade-off of norm-expansion distance kernels; every
//! pipeline in this workspace operates on `normalize_paper`-scaled data
//! (unit max norm), where the forms agree to a relative `1e-12`
//! tolerance (proptested). Callers with un-centered, large-offset data
//! should translate it toward the origin first (k-means distances are
//! translation invariant) or use the scalar `ops::sq_dist` path.
//!
//! Exact self-distance is preserved at any magnitude
//! (`‖x‖² + ‖x‖² − 2⟨x,x⟩ = 0` exactly because norms and inner products
//! share one accumulation order — see [`serial_dot`]), and tiny negative
//! rounding residues are clamped to zero so D² sampling weights stay
//! valid.
//!
//! The `f32` compute path is *not* a bit-identity contract against
//! `f64`: inputs are rounded once on entry and every kernel operation
//! rounds at 24 bits. It is covered by the same center-perturbation /
//! cost-ratio accuracy contract as the `f32` wire precision, and it is
//! still fully deterministic — bit-identical across reruns and worker
//! counts at its own precision.

use crate::parallel;
use crate::{LinalgError, Matrix, MatrixF32, Result};

/// Centers per lane group: the width of the register-resident
/// accumulator array in the inner loop. 8 doubles fill four SSE2
/// vectors (two AVX); 8 floats fill two (one).
pub const LANES: usize = 8;

/// Center columns per cache tile (a multiple of [`LANES`]): the packed
/// strips of one tile (`CENTER_TILE × d` scalars) stay resident in L1
/// while a block of points streams against them. Retuned for the
/// lane-accumulator kernel by the `tile_sweep` micro-bench (see
/// `BENCH_micro.json`): with strips streamed once per point block, the
/// whole-`k` tile wins for the paper's k ≤ 64 range.
const CENTER_TILE: usize = 64;

/// Point rows per inner block (bounds the working set of point rows that
/// revisit a center tile; has no effect on results).
const POINT_BLOCK: usize = 256;

/// Minimum number of point×center pairs before the kernels spawn threads.
const PAR_PAIRS: usize = 1 << 13;

/// Compute precision of the distance kernels — which scalar the points,
/// centers, and norms are held in while distances are formed.
///
/// Orthogonal to the *wire* precision (`ekm_net::wire::Precision`),
/// which rounds payloads in transit: `F64` is the default and the
/// bit-reproducibility reference, `F32` is an opt-in speed/accuracy
/// trade covered by the center-perturbation / cost-ratio contract.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Compute {
    /// IEEE double precision — the default; all `f64` results are
    /// bit-identical across worker counts and transports.
    #[default]
    F64,
    /// IEEE single precision: inputs rounded once on entry, every
    /// kernel operation rounds at 24 bits. Deterministic, but held to
    /// an accuracy contract rather than bit-identity against `F64`.
    F32,
}

impl Compute {
    /// Canonical lowercase name (`"f64"` / `"f32"`), as spelled on the
    /// CLI and in the run-config fingerprint.
    pub fn as_str(self) -> &'static str {
        match self {
            Compute::F64 => "f64",
            Compute::F32 => "f32",
        }
    }

    /// Parses the canonical names accepted by `--compute`.
    pub fn parse(s: &str) -> Option<Compute> {
        match s {
            "f64" => Some(Compute::F64),
            "f32" => Some(Compute::F32),
            _ => None,
        }
    }
}

impl std::fmt::Display for Compute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Scalar the tiled kernel is generic over — exactly the operations the
/// norm-expansion distance needs, so `f64` and `f32` share one
/// implementation.
///
/// Implementations must be plain IEEE floats: the determinism argument
/// (left-to-right accumulation, order fixed by layout alone) relies on
/// `+`/`*` being deterministic pure functions of their operands.
pub trait Element:
    Copy
    + PartialOrd
    + Send
    + Sync
    + 'static
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Positive infinity — the argmin carrier and the padded-lane
    /// center norm (so padding can never win an assignment).
    const INFINITY: Self;
    /// The exact constant 2, for the `−2⟨x,c⟩` term (exact in any
    /// binary float, so it introduces no extra rounding).
    const TWO: Self;

    /// Rounds an `f64` into this precision (identity for `f64`).
    fn from_f64(v: f64) -> Self;
    /// Widens back to `f64` (exact for both implementations).
    fn to_f64(self) -> f64;
    /// `max(self, 0)` — clamps the tiny negative residues of the
    /// expansion form so D² weights stay valid.
    fn max_zero(self) -> Self;
}

impl Element for f64 {
    const ZERO: f64 = 0.0;
    const INFINITY: f64 = f64::INFINITY;
    const TWO: f64 = 2.0;

    #[inline]
    fn from_f64(v: f64) -> f64 {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn max_zero(self) -> f64 {
        self.max(0.0)
    }
}

impl Element for f32 {
    const ZERO: f32 = 0.0;
    const INFINITY: f32 = f32::INFINITY;
    const TWO: f32 = 2.0;

    #[inline]
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline]
    fn max_zero(self) -> f32 {
        self.max(0.0)
    }
}

/// Plain left-to-right dot product — the exact accumulation order of
/// every per-center lane accumulator in [`lane_dots`], so norms computed
/// here are bitwise consistent with the kernel's inner products (which
/// is what makes `‖x − x‖²` collapse to exactly zero after expansion).
#[inline]
fn serial_dot<T: Element>(a: &[T], b: &[T]) -> T {
    debug_assert_eq!(a.len(), b.len(), "serial_dot: length mismatch");
    let mut acc = T::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc + x * y;
    }
    acc
}

/// `‖row‖²` for every row, in the kernel's accumulation order (see
/// [`serial_dot`]). Four rows are processed at a time so their chains
/// interleave for instruction-level parallelism — each row's own
/// accumulation stays strictly left-to-right, so every value is
/// bit-identical to `serial_dot(r, r)`.
pub fn row_norms_sq(m: &Matrix) -> Vec<f64> {
    let (n, d) = m.shape();
    let data = m.as_slice();
    let mut out = Vec::with_capacity(n);
    let mut i = 0;
    while i + 4 <= n {
        let (r0, rest) = data[i * d..(i + 4) * d].split_at(d);
        let (r1, rest) = rest.split_at(d);
        let (r2, r3) = rest.split_at(d);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
        for j in 0..d {
            a0 += r0[j] * r0[j];
            a1 += r1[j] * r1[j];
            a2 += r2[j] * r2[j];
            a3 += r3[j] * r3[j];
        }
        out.extend_from_slice(&[a0, a1, a2, a3]);
        i += 4;
    }
    for r in (i..n).map(|i| m.row(i)) {
        out.push(serial_dot(r, r));
    }
    out
}

/// Validates that `points` and `centers` are non-empty and agree on
/// dimensionality.
fn check_shapes(op: &'static str, points: (usize, usize), centers: &Matrix) -> Result<()> {
    if points.1 != centers.cols() {
        return Err(LinalgError::DimensionMismatch {
            op,
            lhs: points,
            rhs: centers.shape(),
        });
    }
    Ok(())
}

/// Worker count the auto-parallel entry points use for an `n × k` pair
/// grid: the process default above the pair threshold, else 1.
fn auto_workers(n: usize, k: usize) -> usize {
    if n.saturating_mul(k) >= PAR_PAIRS {
        parallel::worker_count()
    } else {
        1
    }
}

/// The centers packed for the lane-accumulator kernel, precomputed once
/// per call and shared read-only by all workers.
///
/// The `k` centers are padded to a multiple of [`LANES`] columns and
/// stored as one contiguous *strip* per lane group: strip `g` holds
/// `d` rows of `LANES` scalars, row `kk` being coordinate `kk` of
/// centers `g·LANES .. g·LANES+LANES`. The dimension walk of a group
/// therefore reads perfectly sequential memory. Padded lanes carry zero
/// coordinates and an **infinite** norm, so their expanded distance is
/// `+∞`: they can never win an argmin and are simply not written in the
/// full-matrix form.
struct PackedCenters<T> {
    /// Lane strips, `groups × d × LANES` scalars.
    strips: Vec<T>,
    /// `‖c_j‖²` per padded column (`+∞` on padding).
    c2: Vec<T>,
    /// True center count.
    k: usize,
    /// Dimensionality.
    d: usize,
}

impl<T: Element> PackedCenters<T> {
    fn new(centers: &Matrix) -> PackedCenters<T> {
        let (k, d) = centers.shape();
        let groups = k.div_ceil(LANES);
        let mut strips = vec![T::ZERO; groups * d * LANES];
        let mut c2 = vec![T::INFINITY; groups * LANES];
        let mut row_t = vec![T::ZERO; d];
        for (j, row) in centers.iter_rows().enumerate() {
            for (t, &v) in row_t.iter_mut().zip(row) {
                *t = T::from_f64(v);
            }
            c2[j] = serial_dot(&row_t, &row_t);
            let strip = &mut strips[(j / LANES) * d * LANES..];
            for (kk, &v) in row_t.iter().enumerate() {
                strip[kk * LANES + j % LANES] = v;
            }
        }
        PackedCenters { strips, c2, k, d }
    }

    #[inline]
    fn groups(&self) -> usize {
        self.c2.len() / LANES
    }

    /// The contiguous `d × LANES` strip of lane group `g`.
    #[inline]
    fn strip(&self, g: usize) -> &[T] {
        &self.strips[g * self.d * LANES..(g + 1) * self.d * LANES]
    }
}

/// Point rows the micro-kernel advances per step: [`lane_dots4`] keeps
/// `UNROLL × LANES` accumulators live, giving the FP units `UNROLL`
/// independent add chains per lane vector (a single chain is bound by
/// add latency, not throughput) and amortizing each strip-row load over
/// `UNROLL` points.
const UNROLL: usize = 8;

/// `⟨x, c_j⟩` for the [`LANES`] centers of one packed strip.
///
/// The accumulators live in one fixed-size array the compiler keeps in
/// registers for the whole dimension walk; the lane loop has no
/// reduction chain (one independent accumulator per center) and
/// vectorizes cleanly. Each accumulator still receives its products
/// strictly left to right over the dimensions — the [`serial_dot`]
/// association — and the order is fixed by the layout alone, so results
/// are identical no matter how points are partitioned or tiled.
#[inline]
fn lane_dots<T: Element>(x: &[T], strip: &[T]) -> [T; LANES] {
    let mut acc = [T::ZERO; LANES];
    for (&xk, row) in x.iter().zip(strip.chunks_exact(LANES)) {
        for (a, &cv) in acc.iter_mut().zip(row) {
            *a = *a + xk * cv;
        }
    }
    acc
}

/// [`lane_dots`] for [`UNROLL`] points at once against one strip. Each
/// (point, center) accumulator receives exactly the same left-to-right
/// product sequence as the one-point form — the unroll only interleaves
/// *independent* chains, so results are bitwise unchanged while the
/// chains hide FP-add latency from one another.
#[inline]
fn lane_dots4<T: Element>(xs: &[&[T]; UNROLL], strip: &[T]) -> [[T; LANES]; UNROLL] {
    let mut acc = [[T::ZERO; LANES]; UNROLL];
    for (kk, row) in strip.chunks_exact(LANES).enumerate() {
        for (accp, x) in acc.iter_mut().zip(xs) {
            let xk = x[kk];
            for (a, &cv) in accp.iter_mut().zip(row) {
                *a = *a + xk * cv;
            }
        }
    }
    acc
}

/// Shared tile walk of the range kernels: yields `(point_range,
/// group_range)` tiles in a deterministic order — point blocks outer,
/// center tiles (runs of whole lane groups) inner. Tiles only reorder
/// independent per-point work, so the walk never affects results.
#[inline]
fn for_each_tile(
    len: usize,
    groups: usize,
    center_tile: usize,
    point_block: usize,
    mut f: impl FnMut(std::ops::Range<usize>, std::ops::Range<usize>),
) {
    let tile_groups = center_tile.div_ceil(LANES).max(1);
    let mut block_start = 0;
    while block_start < len {
        let block_end = (block_start + point_block).min(len);
        let mut g0 = 0;
        loop {
            let g1 = (g0 + tile_groups).min(groups);
            f(block_start..block_end, g0..g1);
            g0 = g1;
            if g0 >= groups {
                break;
            }
        }
        block_start = block_end;
    }
}

/// Borrows [`UNROLL`] consecutive point rows starting at `i`.
#[inline]
fn quad_rows<T>(points: &[T], d: usize, i: usize) -> [&[T]; UNROLL] {
    std::array::from_fn(|p| &points[(i + p) * d..(i + p + 1) * d])
}

/// Fills `rows` (a contiguous `len × k` block of the output starting at
/// point `row_start`) with squared distances to every center.
#[allow(clippy::too_many_arguments)]
fn dists_range<T: Element>(
    points: &[T],
    norms: &[T],
    packed: &PackedCenters<T>,
    row_start: usize,
    rows: &mut [T],
    center_tile: usize,
    point_block: usize,
) {
    let (k, d) = (packed.k, packed.d);
    let len = rows.len().checked_div(k).unwrap_or(0);
    let emit = |rows: &mut [T], local: usize, g: usize, x2: T, dots: &[T; LANES]| {
        let base = g * LANES;
        let take = LANES.min(k - base);
        let orow = &mut rows[local * k + base..local * k + base + take];
        for ((o, &dot_j), &c2j) in orow
            .iter_mut()
            .zip(dots.iter())
            .zip(&packed.c2[base..base + take])
        {
            *o = (x2 + c2j - T::TWO * dot_j).max_zero();
        }
    };
    for_each_tile(len, packed.groups(), center_tile, point_block, |pr, gr| {
        let mut local = pr.start;
        while local + UNROLL <= pr.end {
            let xs = quad_rows(points, d, row_start + local);
            for g in gr.clone() {
                let dots = lane_dots4(&xs, packed.strip(g));
                for (p, dotsp) in dots.iter().enumerate() {
                    emit(rows, local + p, g, norms[row_start + local + p], dotsp);
                }
            }
            local += UNROLL;
        }
        for local in local..pr.end {
            let x = &points[(row_start + local) * d..(row_start + local + 1) * d];
            for g in gr.clone() {
                let dots = lane_dots(x, packed.strip(g));
                emit(rows, local, g, norms[row_start + local], &dots);
            }
        }
    });
}

/// Fused argmin over the same tile walk as [`dists_range`]: fills the
/// `labels`/`dists` ranges for points `row_start..row_start + len`.
///
/// Lane groups are visited in increasing index order and the best
/// distance is carried across groups with a strict `<`, so ties break to
/// the lowest center index exactly like the scalar `nearest_center`.
/// Padded lanes carry an infinite center norm and can never win.
#[allow(clippy::too_many_arguments)]
fn assign_range<T: Element>(
    points: &[T],
    norms: &[T],
    packed: &PackedCenters<T>,
    row_start: usize,
    labels: &mut [usize],
    dists: &mut [T],
    center_tile: usize,
    point_block: usize,
) {
    let d = packed.d;
    for dv in dists.iter_mut() {
        *dv = T::INFINITY;
    }
    // Folds one group's distances into a point's running argmin: lane
    // groups arrive in increasing index order and the carried compare is
    // a strict `<`, so ties break to the lowest center index.
    let fold = |g: usize, x2: T, dots: &[T; LANES], best: &mut usize, best_d: &mut T| {
        for (off, (&dot_j, &c2j)) in dots
            .iter()
            .zip(&packed.c2[g * LANES..(g + 1) * LANES])
            .enumerate()
        {
            let dist = (x2 + c2j - T::TWO * dot_j).max_zero();
            if dist < *best_d {
                *best_d = dist;
                *best = g * LANES + off;
            }
        }
    };
    for_each_tile(
        labels.len(),
        packed.groups(),
        center_tile,
        point_block,
        |pr, gr| {
            let mut local = pr.start;
            while local + UNROLL <= pr.end {
                let xs = quad_rows(points, d, row_start + local);
                let mut best = [0usize; UNROLL];
                let mut best_d = [T::ZERO; UNROLL];
                best.copy_from_slice(&labels[local..local + UNROLL]);
                best_d.copy_from_slice(&dists[local..local + UNROLL]);
                for g in gr.clone() {
                    let dots = lane_dots4(&xs, packed.strip(g));
                    for p in 0..UNROLL {
                        let x2 = norms[row_start + local + p];
                        fold(g, x2, &dots[p], &mut best[p], &mut best_d[p]);
                    }
                }
                labels[local..local + UNROLL].copy_from_slice(&best);
                dists[local..local + UNROLL].copy_from_slice(&best_d);
                local += UNROLL;
            }
            for local in local..pr.end {
                let x = &points[(row_start + local) * d..(row_start + local + 1) * d];
                let x2 = norms[row_start + local];
                let mut best = labels[local];
                let mut best_d = dists[local];
                for g in gr.clone() {
                    let dots = lane_dots(x, packed.strip(g));
                    fold(g, x2, &dots, &mut best, &mut best_d);
                }
                labels[local] = best;
                dists[local] = best_d;
            }
        },
    );
}

/// Folds the minimum distance to any packed center into `best`
/// (an `f64` buffer regardless of compute precision): for each point,
/// `best[i] ← min(best[i], min_j ‖x_i − c_j‖²)`, updating only on a
/// strict improvement — the batched multi-center D² refresh behind
/// k-means++ seeding and bicriteria rounds.
fn min_update_range<T: Element>(
    points: &[T],
    norms: &[T],
    packed: &PackedCenters<T>,
    row_start: usize,
    best: &mut [f64],
    center_tile: usize,
    point_block: usize,
) {
    let d = packed.d;
    let mut round: Vec<T> = vec![T::INFINITY; best.len()];
    let fold = |g: usize, x2: T, dots: &[T; LANES], m: &mut T| {
        for (&dot_j, &c2j) in dots.iter().zip(&packed.c2[g * LANES..(g + 1) * LANES]) {
            let dist = (x2 + c2j - T::TWO * dot_j).max_zero();
            if dist < *m {
                *m = dist;
            }
        }
    };
    for_each_tile(
        best.len(),
        packed.groups(),
        center_tile,
        point_block,
        |pr, gr| {
            let mut local = pr.start;
            while local + UNROLL <= pr.end {
                let xs = quad_rows(points, d, row_start + local);
                let mut m = [T::ZERO; UNROLL];
                m.copy_from_slice(&round[local..local + UNROLL]);
                for g in gr.clone() {
                    let dots = lane_dots4(&xs, packed.strip(g));
                    for p in 0..UNROLL {
                        fold(g, norms[row_start + local + p], &dots[p], &mut m[p]);
                    }
                }
                round[local..local + UNROLL].copy_from_slice(&m);
                local += UNROLL;
            }
            for local in local..pr.end {
                let x = &points[(row_start + local) * d..(row_start + local + 1) * d];
                let x2 = norms[row_start + local];
                let mut m = round[local];
                for g in gr.clone() {
                    let dots = lane_dots(x, packed.strip(g));
                    fold(g, x2, &dots, &mut m);
                }
                round[local] = m;
            }
        },
    );
    for (b, m) in best.iter_mut().zip(round) {
        let nd = m.to_f64();
        if nd < *b {
            *b = nd;
        }
    }
}

/// The full `n × k` matrix of squared distances from every row of
/// `points` to every row of `centers`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless the operands agree
/// on dimensionality.
pub fn sq_dists_block(points: &Matrix, centers: &Matrix) -> Result<Matrix> {
    sq_dists_block_in(points, centers, auto_workers(points.rows(), centers.rows()))
}

/// [`sq_dists_block`] with an explicit worker count (results are
/// bit-identical at every count).
///
/// # Errors
///
/// See [`sq_dists_block`].
pub fn sq_dists_block_in(points: &Matrix, centers: &Matrix, workers: usize) -> Result<Matrix> {
    check_shapes("sq_dists_block", points.shape(), centers)?;
    let (n, k) = (points.rows(), centers.rows());
    let mut out = Matrix::zeros(n, k);
    if n == 0 || k == 0 {
        return Ok(out);
    }
    let packed = PackedCenters::<f64>::new(centers);
    let norms = row_norms_sq(points);
    parallel::for_each_row_chunk_in(out.as_mut_slice(), k, workers, |row_start, chunk| {
        dists_range(
            points.as_slice(),
            &norms,
            &packed,
            row_start,
            chunk,
            CENTER_TILE,
            POINT_BLOCK,
        );
    });
    Ok(out)
}

/// Nearest-center assignment of every row of `points`: `(labels,
/// squared distances)`, ties broken toward the lower center index.
///
/// This is the fused form of [`sq_dists_block`] — the `n × k` distance
/// matrix is never materialized; each point's row of distances is
/// reduced to its argmin on the fly.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] unless the operands agree on
///   dimensionality.
/// * [`LinalgError::EmptyMatrix`] if `centers` has no rows (there is no
///   nearest center to assign).
pub fn assign_blocked(points: &Matrix, centers: &Matrix) -> Result<(Vec<usize>, Vec<f64>)> {
    assign_blocked_in(points, centers, auto_workers(points.rows(), centers.rows()))
}

/// [`assign_blocked`] with an explicit worker count (results are
/// bit-identical at every count).
///
/// # Errors
///
/// See [`assign_blocked`].
pub fn assign_blocked_in(
    points: &Matrix,
    centers: &Matrix,
    workers: usize,
) -> Result<(Vec<usize>, Vec<f64>)> {
    assign_blocked_with_tiles(points, centers, workers, CENTER_TILE, POINT_BLOCK)
}

/// [`assign_blocked_in`] with explicit tile sizes — the bench-sweep
/// entry point behind the `CENTER_TILE`/`POINT_BLOCK` tuning numbers.
/// Tiles only reorder independent per-point work, so every setting is
/// bit-identical; not part of the supported API surface.
///
/// # Errors
///
/// See [`assign_blocked`].
#[doc(hidden)]
pub fn assign_blocked_with_tiles(
    points: &Matrix,
    centers: &Matrix,
    workers: usize,
    center_tile: usize,
    point_block: usize,
) -> Result<(Vec<usize>, Vec<f64>)> {
    check_shapes("assign_blocked", points.shape(), centers)?;
    if centers.rows() == 0 {
        return Err(LinalgError::EmptyMatrix {
            op: "assign_blocked",
        });
    }
    let n = points.rows();
    let mut labels = vec![0usize; n];
    let mut dists = vec![0.0f64; n];
    if n == 0 {
        return Ok((labels, dists));
    }
    let packed = PackedCenters::<f64>::new(centers);
    let norms = row_norms_sq(points);
    // Both output vectors are split at the same fixed boundaries so each
    // worker owns a contiguous (labels, dists) range of the same points.
    parallel::for_each_pair_chunk_in(&mut labels, &mut dists, workers, |start, lchunk, dchunk| {
        assign_range(
            points.as_slice(),
            &norms,
            &packed,
            start,
            lchunk,
            dchunk,
            center_tile,
            point_block,
        );
    });
    Ok((labels, dists))
}

/// Batched multi-center D² refresh: folds `min_j ‖x_i − c_j‖²` over the
/// rows of `centers` into `best[i]`, updating only on a strict
/// improvement — the replacement for the old serial one-center
/// `sq_dists_to_row` path of k-means++ seeding, now running through the
/// same lane-accumulator kernel with the point norms paid once by the
/// caller (see [`row_norms_sq`]).
///
/// An empty `centers` is a no-op. Results are bit-identical at every
/// worker count.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless the operands agree
/// on dimensionality.
///
/// # Panics
///
/// Panics if `point_norms_sq` or `best` disagree with `points.rows()`
/// (callers hold both invariants).
pub fn min_sq_dists_update(
    points: &Matrix,
    point_norms_sq: &[f64],
    centers: &Matrix,
    best: &mut [f64],
) -> Result<()> {
    min_sq_dists_update_in(
        points,
        point_norms_sq,
        centers,
        best,
        auto_workers(points.rows(), centers.rows().max(1)),
    )
}

/// [`min_sq_dists_update`] with an explicit worker count.
///
/// # Errors
///
/// See [`min_sq_dists_update`].
pub fn min_sq_dists_update_in(
    points: &Matrix,
    point_norms_sq: &[f64],
    centers: &Matrix,
    best: &mut [f64],
    workers: usize,
) -> Result<()> {
    check_shapes("min_sq_dists_update", points.shape(), centers)?;
    assert_eq!(
        point_norms_sq.len(),
        points.rows(),
        "min_sq_dists_update: norm count"
    );
    assert_eq!(best.len(), points.rows(), "min_sq_dists_update: best len");
    if centers.rows() == 0 || points.rows() == 0 {
        return Ok(());
    }
    let packed = PackedCenters::<f64>::new(centers);
    parallel::for_each_row_chunk_in(best, 1, workers, |start, chunk| {
        min_update_range(
            points.as_slice(),
            point_norms_sq,
            &packed,
            start,
            chunk,
            CENTER_TILE,
            POINT_BLOCK,
        );
    });
    Ok(())
}

/// Prepared-points handle over the kernels: owns the dataset in the
/// chosen [`Compute`] precision (one `f64→f32` conversion for the whole
/// dataset when `F32`) plus the precomputed row norms, so iteration
/// loops — Lloyd, k-means++ rounds, bicriteria rounds — pay preparation
/// once and every call is pure kernel time. Centers are converted per
/// call (they are `k × d`, negligible next to `n × d`).
///
/// All results cross back into `f64` exactly once, at the distance
/// level; labels are precision-independent indices.
pub struct DistanceEngine<'a> {
    points: &'a Matrix,
    norms: Vec<f64>,
    f32_data: Option<(MatrixF32, Vec<f32>)>,
}

impl<'a> DistanceEngine<'a> {
    /// Prepares `points` for repeated kernel calls under `compute`.
    pub fn new(points: &'a Matrix, compute: Compute) -> DistanceEngine<'a> {
        let f32_data = match compute {
            Compute::F64 => None,
            Compute::F32 => {
                let m = MatrixF32::from_f64(points);
                let norms: Vec<f32> = m.iter_rows().map(|r| serial_dot(r, r)).collect();
                Some((m, norms))
            }
        };
        DistanceEngine {
            points,
            norms: row_norms_sq(points),
            f32_data,
        }
    }

    /// The compute precision this engine was prepared for.
    pub fn compute(&self) -> Compute {
        if self.f32_data.is_some() {
            Compute::F32
        } else {
            Compute::F64
        }
    }

    /// The borrowed dataset (always the original `f64` rows).
    pub fn points(&self) -> &'a Matrix {
        self.points
    }

    /// The precomputed `f64` row norms (`‖x_i‖²` in kernel order).
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// Nearest-center assignment against `centers` — the engine-owned
    /// form of [`assign_blocked`]; identical results (bit-identical in
    /// `F64`) with the per-dataset preparation amortized.
    ///
    /// # Errors
    ///
    /// See [`assign_blocked`].
    pub fn assign(&self, centers: &Matrix) -> Result<(Vec<usize>, Vec<f64>)> {
        self.assign_in(centers, auto_workers(self.points.rows(), centers.rows()))
    }

    /// [`DistanceEngine::assign`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// See [`assign_blocked`].
    pub fn assign_in(&self, centers: &Matrix, workers: usize) -> Result<(Vec<usize>, Vec<f64>)> {
        check_shapes("assign_blocked", self.points.shape(), centers)?;
        if centers.rows() == 0 {
            return Err(LinalgError::EmptyMatrix {
                op: "assign_blocked",
            });
        }
        let n = self.points.rows();
        let mut labels = vec![0usize; n];
        let mut dists = vec![0.0f64; n];
        if n == 0 {
            return Ok((labels, dists));
        }
        match &self.f32_data {
            None => {
                let packed = PackedCenters::<f64>::new(centers);
                parallel::for_each_pair_chunk_in(
                    &mut labels,
                    &mut dists,
                    workers,
                    |start, lchunk, dchunk| {
                        assign_range(
                            self.points.as_slice(),
                            &self.norms,
                            &packed,
                            start,
                            lchunk,
                            dchunk,
                            CENTER_TILE,
                            POINT_BLOCK,
                        );
                    },
                );
            }
            Some((m, norms)) => {
                let packed = PackedCenters::<f32>::new(centers);
                let mut d32 = vec![0.0f32; n];
                parallel::for_each_pair_chunk_in(
                    &mut labels,
                    &mut d32,
                    workers,
                    |start, lchunk, dchunk| {
                        assign_range(
                            m.as_slice(),
                            norms,
                            &packed,
                            start,
                            lchunk,
                            dchunk,
                            CENTER_TILE,
                            POINT_BLOCK,
                        );
                    },
                );
                for (o, v) in dists.iter_mut().zip(d32) {
                    *o = f64::from(v);
                }
            }
        }
        Ok((labels, dists))
    }

    /// Batched multi-center D² refresh against this engine's points —
    /// the engine-owned form of [`min_sq_dists_update`]. `best` stays in
    /// `f64` at every compute precision (distances are widened before
    /// the strict-improvement compare, so the fold is deterministic).
    ///
    /// # Errors
    ///
    /// See [`min_sq_dists_update`].
    pub fn min_update(&self, centers: &Matrix, best: &mut [f64]) -> Result<()> {
        self.min_update_in(
            centers,
            best,
            auto_workers(self.points.rows(), centers.rows().max(1)),
        )
    }

    /// [`DistanceEngine::min_update`] with an explicit worker count.
    ///
    /// # Errors
    ///
    /// See [`min_sq_dists_update`].
    pub fn min_update_in(&self, centers: &Matrix, best: &mut [f64], workers: usize) -> Result<()> {
        check_shapes("min_sq_dists_update", self.points.shape(), centers)?;
        assert_eq!(
            best.len(),
            self.points.rows(),
            "min_sq_dists_update: best len"
        );
        if centers.rows() == 0 || self.points.rows() == 0 {
            return Ok(());
        }
        match &self.f32_data {
            None => {
                let packed = PackedCenters::<f64>::new(centers);
                parallel::for_each_row_chunk_in(best, 1, workers, |start, chunk| {
                    min_update_range(
                        self.points.as_slice(),
                        &self.norms,
                        &packed,
                        start,
                        chunk,
                        CENTER_TILE,
                        POINT_BLOCK,
                    );
                });
            }
            Some((m, norms)) => {
                let packed = PackedCenters::<f32>::new(centers);
                parallel::for_each_row_chunk_in(best, 1, workers, |start, chunk| {
                    min_update_range(
                        m.as_slice(),
                        norms,
                        &packed,
                        start,
                        chunk,
                        CENTER_TILE,
                        POINT_BLOCK,
                    );
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn workload(n: usize, d: usize) -> Matrix {
        Matrix::from_fn(n, d, |i, j| {
            (((i * 31 + j * 17) % 101) as f64 - 50.0) * 0.125
        })
    }

    /// Reference: the scalar subtract-square loop.
    fn naive(points: &Matrix, centers: &Matrix) -> Matrix {
        Matrix::from_fn(points.rows(), centers.rows(), |i, j| {
            ops::sq_dist(points.row(i), centers.row(j))
        })
    }

    /// Reference: the norm-expansion form evaluated pairwise with plain
    /// serial dot products — the exact arithmetic the lane kernel must
    /// reproduce bit for bit (and the shape of the pre-lane kernel).
    fn expansion_reference(points: &Matrix, centers: &Matrix) -> Matrix {
        Matrix::from_fn(points.rows(), centers.rows(), |i, j| {
            let (x, c) = (points.row(i), centers.row(j));
            (serial_dot(x, x) + serial_dot(c, c) - 2.0 * serial_dot(x, c)).max(0.0)
        })
    }

    #[test]
    fn row_norms_are_bitwise_serial_dots() {
        // The 4-row interleave only reorders *across* rows; each row's
        // chain must stay exactly serial_dot(r, r). Sizes cover full
        // quads, remainders of 1–3, and degenerate shapes.
        for (n, d) in [(16, 9), (17, 9), (18, 1), (19, 13), (3, 7), (0, 5)] {
            let m = workload(n, d);
            let fast = row_norms_sq(&m);
            assert_eq!(fast.len(), n);
            for (i, &v) in fast.iter().enumerate() {
                let reference = serial_dot(m.row(i), m.row(i));
                assert!(v == reference, "row {i} of {n}x{d}: {v} vs {reference}");
            }
        }
    }

    #[test]
    fn matches_naive_within_tolerance() {
        let p = workload(137, 9);
        let c = workload(21, 9);
        let blocked = sq_dists_block(&p, &c).unwrap();
        let reference = naive(&p, &c);
        for i in 0..p.rows() {
            for j in 0..c.rows() {
                let (a, b) = (blocked[(i, j)], reference[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn lane_kernel_is_bitwise_the_expansion_form() {
        // Ragged shapes on purpose: k not a multiple of LANES, d not a
        // multiple of anything, n not a multiple of POINT_BLOCK.
        for (n, d, k) in [(137, 9, 21), (300, 6, 70), (40, 1, 3), (5, 13, 1)] {
            let p = workload(n, d);
            let c = workload(k, d);
            let reference = expansion_reference(&p, &c);
            assert!(
                sq_dists_block(&p, &c).unwrap() == reference,
                "n={n} d={d} k={k}"
            );
        }
    }

    #[test]
    fn self_distance_is_exactly_zero() {
        let p = workload(40, 7);
        let d = sq_dists_block(&p, &p).unwrap();
        for i in 0..p.rows() {
            assert_eq!(d[(i, i)], 0.0, "row {i}");
        }
    }

    #[test]
    fn bit_identical_across_worker_counts() {
        let p = workload(700, 13);
        let c = workload(67, 13);
        let reference = sq_dists_block_in(&p, &c, 1).unwrap();
        let (rl, rd) = assign_blocked_in(&p, &c, 1).unwrap();
        for workers in [2, 3, 4, 8, 300] {
            assert!(
                sq_dists_block_in(&p, &c, workers).unwrap() == reference,
                "{workers} workers"
            );
            let (l, d) = assign_blocked_in(&p, &c, workers).unwrap();
            assert_eq!(l, rl, "{workers} workers");
            assert_eq!(d, rd, "{workers} workers");
        }
    }

    #[test]
    fn tile_sizes_are_results_neutral() {
        let p = workload(500, 11);
        let c = workload(53, 11);
        let (rl, rd) = assign_blocked_in(&p, &c, 1).unwrap();
        for (ct, pb) in [(8, 32), (16, 1), (64, 4096), (256, 100)] {
            let (l, d) = assign_blocked_with_tiles(&p, &c, 3, ct, pb).unwrap();
            assert_eq!(l, rl, "tile {ct}/{pb}");
            assert_eq!(d, rd, "tile {ct}/{pb}");
        }
    }

    #[test]
    fn assign_matches_full_matrix_argmin() {
        let p = workload(300, 6);
        let c = workload(70, 6); // > 2 center tiles
        let full = sq_dists_block(&p, &c).unwrap();
        let (labels, dists) = assign_blocked(&p, &c).unwrap();
        for i in 0..p.rows() {
            let row = full.row(i);
            let (mut best, mut best_d) = (0usize, f64::INFINITY);
            for (j, &d) in row.iter().enumerate() {
                if d < best_d {
                    best_d = d;
                    best = j;
                }
            }
            assert_eq!(labels[i], best, "row {i}");
            assert_eq!(dists[i], best_d, "row {i}");
        }
    }

    #[test]
    fn ties_break_to_first_center() {
        let p = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let c = Matrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 1.0]]);
        let (labels, dists) = assign_blocked(&p, &c).unwrap();
        assert_eq!(labels, vec![0]);
        assert!((dists[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn min_update_matches_block_min_fold() {
        let p = workload(90, 11);
        let c = workload(13, 11); // spans two padded lane groups
        let norms = row_norms_sq(&p);
        let full = sq_dists_block(&p, &c).unwrap();
        // One center at a time — the k-means++ round shape.
        let mut incremental = vec![f64::INFINITY; p.rows()];
        for j in 0..c.rows() {
            let one = c.select_rows(&[j]);
            min_sq_dists_update(&p, &norms, &one, &mut incremental).unwrap();
        }
        // All centers at once — the bicriteria round shape.
        let mut batched = vec![f64::INFINITY; p.rows()];
        min_sq_dists_update_in(&p, &norms, &c, &mut batched, 4).unwrap();
        for i in 0..p.rows() {
            let row_min = full.row(i).iter().copied().fold(f64::INFINITY, f64::min);
            assert_eq!(incremental[i], row_min, "row {i}");
            assert_eq!(batched[i], row_min, "row {i}");
        }
        // Already-better entries are left untouched.
        let mut best = vec![0.0; p.rows()];
        min_sq_dists_update(&p, &norms, &c, &mut best).unwrap();
        assert!(best.iter().all(|&b| b == 0.0));
        // Empty center batches are a no-op.
        min_sq_dists_update(&p, &norms, &Matrix::zeros(0, 11), &mut best).unwrap();
    }

    #[test]
    fn engine_f64_is_bitwise_the_free_functions() {
        let p = workload(210, 10);
        let c = workload(17, 10);
        let engine = DistanceEngine::new(&p, Compute::F64);
        assert_eq!(engine.compute(), Compute::F64);
        let (rl, rd) = assign_blocked(&p, &c).unwrap();
        let (el, ed) = engine.assign(&c).unwrap();
        assert_eq!(el, rl);
        assert_eq!(ed, rd);
        let norms = row_norms_sq(&p);
        assert_eq!(engine.norms(), &norms[..]);
        let mut b1 = vec![f64::INFINITY; p.rows()];
        let mut b2 = vec![f64::INFINITY; p.rows()];
        min_sq_dists_update(&p, &norms, &c, &mut b1).unwrap();
        engine.min_update(&c, &mut b2).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn engine_f32_is_close_deterministic_and_worker_invariant() {
        let p = workload(400, 12);
        let c = workload(19, 12);
        let engine = DistanceEngine::new(&p, Compute::F32);
        assert_eq!(engine.compute(), Compute::F32);
        let (labels64, dists64) = assign_blocked(&p, &c).unwrap();
        let (labels32, dists32) = engine.assign(&c).unwrap();
        // f32 is an accuracy contract, not bit identity: distances agree
        // to single-precision relative tolerance and labels almost
        // everywhere (ties may flip on equal-to-f32 distances).
        let mut label_diffs = 0;
        for i in 0..p.rows() {
            assert!(
                (dists32[i] - dists64[i]).abs() <= 1e-5 * (1.0 + dists64[i].abs()),
                "row {i}: {} vs {}",
                dists32[i],
                dists64[i]
            );
            label_diffs += usize::from(labels32[i] != labels64[i]);
        }
        assert!(label_diffs * 50 <= p.rows(), "{label_diffs} label flips");
        // Deterministic and worker-invariant at its own precision.
        for workers in [1, 2, 4, 8] {
            let (l, d) = engine.assign_in(&c, workers).unwrap();
            assert_eq!(l, labels32, "{workers} workers");
            assert_eq!(d, dists32, "{workers} workers");
        }
        let mut b1 = vec![f64::INFINITY; p.rows()];
        let mut b4 = vec![f64::INFINITY; p.rows()];
        engine.min_update_in(&c, &mut b1, 1).unwrap();
        engine.min_update_in(&c, &mut b4, 4).unwrap();
        assert_eq!(b1, b4);
        // min_update agrees with the assign distances (same kernel).
        assert_eq!(b1, dists32);
    }

    #[test]
    fn compute_descriptor_roundtrip() {
        assert_eq!(Compute::default(), Compute::F64);
        for c in [Compute::F64, Compute::F32] {
            assert_eq!(Compute::parse(c.as_str()), Some(c));
            assert_eq!(format!("{c}"), c.as_str());
        }
        assert_eq!(Compute::parse("f16"), None);
    }

    #[test]
    fn dimension_mismatch_errors() {
        let p = Matrix::zeros(3, 4);
        let c = Matrix::zeros(2, 5);
        assert!(sq_dists_block(&p, &c).is_err());
        assert!(assign_blocked(&p, &c).is_err());
        let norms = row_norms_sq(&p);
        let mut best = vec![f64::INFINITY; 3];
        assert!(min_sq_dists_update(&p, &norms, &c, &mut best).is_err());
        let engine = DistanceEngine::new(&p, Compute::F32);
        assert!(engine.assign(&c).is_err());
        assert!(engine.min_update(&c, &mut best).is_err());
    }

    #[test]
    fn empty_points_ok() {
        let p = Matrix::zeros(0, 3);
        let c = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        assert_eq!(sq_dists_block(&p, &c).unwrap().shape(), (0, 1));
        let (l, d) = assign_blocked(&p, &c).unwrap();
        assert!(l.is_empty() && d.is_empty());
        let engine = DistanceEngine::new(&p, Compute::F32);
        let (l, d) = engine.assign(&c).unwrap();
        assert!(l.is_empty() && d.is_empty());
    }

    #[test]
    fn empty_centers_error_not_panic() {
        let p = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let none = Matrix::zeros(0, 2);
        assert!(matches!(
            assign_blocked(&p, &none),
            Err(LinalgError::EmptyMatrix { .. })
        ));
        // The full-matrix form has a natural n × 0 answer instead.
        assert_eq!(sq_dists_block(&p, &none).unwrap().shape(), (1, 0));
    }
}
