//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA and the Gram-matrix SVD route both reduce to the eigendecomposition
//! of a small symmetric matrix (`d × d` or `t × t`), for which Jacobi is
//! simple, numerically excellent, and plenty fast.

use crate::{LinalgError, Matrix, Result};

/// Eigendecomposition of a symmetric matrix: `A = V · diag(λ) · Vᵀ`.
///
/// Eigenvalues are sorted in descending order; `vectors.col(i)` is the unit
/// eigenvector for `values[i]`.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as the *columns* of this matrix.
    pub vectors: Matrix,
}

/// Maximum number of Jacobi sweeps before declaring failure.
const MAX_SWEEPS: usize = 64;

/// Computes the eigendecomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// The input is symmetrized as `(A + Aᵀ)/2` first, so tiny asymmetries from
/// accumulated floating-point error in Gram products are harmless.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `a` is not square.
/// * [`LinalgError::EmptyMatrix`] if `a` is empty.
/// * [`LinalgError::ConvergenceFailure`] if the off-diagonal mass does not
///   vanish within the sweep budget (does not happen for symmetric input).
///
/// # Example
///
/// ```
/// use ekm_linalg::{Matrix, eig};
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let e = eig::symmetric_eigen(&a).unwrap();
/// assert!((e.values[0] - 3.0).abs() < 1e-10);
/// assert!((e.values[1] - 1.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<SymmetricEigen> {
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix {
            op: "symmetric_eigen",
        });
    }
    if a.rows() != a.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "symmetric_eigen",
            lhs: a.shape(),
            rhs: a.shape(),
        });
    }
    let n = a.rows();
    // Symmetrize defensively.
    let mut m = Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
    let mut v = Matrix::identity(n);

    let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= tol {
            converged = true;
            break;
        }
        for p in 0..n - 1 {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= tol / (n as f64) {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation computation.
                let theta = (aqq - app) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update rows/cols p and q of M (symmetric rotation).
                // Read/write rows p and q contiguously (m[(i,p)] == m[(p,i)]
                // by symmetry), then mirror into the columns.
                {
                    let (row_p, row_q) = split_two_rows(&mut m, p, q);
                    for i in 0..n {
                        if i != p && i != q {
                            let aip = row_p[i];
                            let aiq = row_q[i];
                            row_p[i] = c * aip - s * aiq;
                            row_q[i] = s * aip + c * aiq;
                        }
                    }
                }
                for i in 0..n {
                    if i != p && i != q {
                        m[(i, p)] = m[(p, i)];
                        m[(i, q)] = m[(q, i)];
                    }
                }
                let new_pp = app - t * apq;
                let new_qq = aqq + t * apq;
                m[(p, p)] = new_pp;
                m[(q, q)] = new_qq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate the rotation into V. V's rotation acts on its
                // columns p and q; store V transposed? No — rotate via two
                // contiguous rows of Vᵀ is equivalent to tracking Vᵀ. We
                // track `v` as Vᵀ internally (rows are eigenvectors) and
                // transpose once at the end.
                {
                    let (vrow_p, vrow_q) = split_two_rows(&mut v, p, q);
                    for i in 0..n {
                        let vip = vrow_p[i];
                        let viq = vrow_q[i];
                        vrow_p[i] = c * vip - s * viq;
                        vrow_q[i] = s * vip + c * viq;
                    }
                }
            }
        }
    }
    if !converged && off_diagonal_norm(&m) > tol {
        return Err(LinalgError::ConvergenceFailure {
            op: "symmetric_eigen (jacobi)",
            iterations: MAX_SWEEPS,
        });
    }

    // Collect and sort eigenpairs descending. `v` holds Vᵀ (rows are
    // eigenvectors), so eigenvector `old` is row `old` of `v`.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_col, &(_, old_row)) in pairs.iter().enumerate() {
        let src = v.row(old_row);
        for i in 0..n {
            vectors[(i, new_col)] = src[i];
        }
    }

    Ok(SymmetricEigen { values, vectors })
}

/// Mutably borrows two distinct rows of a matrix at once.
///
/// # Panics
///
/// Panics if `a == b` or either index is out of bounds.
fn split_two_rows(m: &mut Matrix, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
    assert_ne!(a, b, "split_two_rows: identical rows");
    let cols = m.cols();
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let data = m.as_mut_slice();
    let (head, tail) = data.split_at_mut(hi * cols);
    let row_lo = &mut head[lo * cols..(lo + 1) * cols];
    let row_hi = &mut tail[..cols];
    if a < b {
        (row_lo, row_hi)
    } else {
        (row_hi, row_lo)
    }
}

fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut acc = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = m[(i, j)];
                acc += v * v;
            }
        }
    }
    acc.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::random::gaussian_matrix;

    #[test]
    fn diagonal_matrix_eigen() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 7.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_from_random_symmetric() {
        let g = gaussian_matrix(31, 8, 8, 1.0);
        let a = ops::gram(&g); // symmetric PSD
        let e = symmetric_eigen(&a).unwrap();
        // A ≈ V diag(λ) Vᵀ
        let mut lam = Matrix::zeros(8, 8);
        for i in 0..8 {
            lam[(i, i)] = e.values[i];
        }
        let vl = ops::matmul(&e.vectors, &lam).unwrap();
        let back = ops::matmul_transb(&vl, &e.vectors).unwrap();
        assert!(back.approx_eq(&a, 1e-8), "reconstruction failed");
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let g = gaussian_matrix(5, 10, 10, 1.0);
        let a = ops::gram(&g);
        let e = symmetric_eigen(&a).unwrap();
        let vtv = ops::gram(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(10), 1e-9));
    }

    #[test]
    fn eigenvalues_sorted_descending() {
        let g = gaussian_matrix(77, 12, 12, 1.0);
        let a = ops::gram(&g);
        let e = symmetric_eigen(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let g = gaussian_matrix(13, 20, 6, 1.0);
        let a = ops::gram(&g);
        let e = symmetric_eigen(&a).unwrap();
        for &l in &e.values {
            assert!(l > -1e-9, "PSD eigenvalue {l} negative");
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let g = gaussian_matrix(99, 9, 9, 1.0);
        let a = ops::gram(&g);
        let e = symmetric_eigen(&a).unwrap();
        let trace: f64 = (0..9).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }

    #[test]
    fn known_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        // Top eigenvector ∝ (1, 1)/√2.
        let v0 = e.vectors.col(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v0[0] - v0[1]).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(symmetric_eigen(&Matrix::zeros(2, 3)).is_err());
        assert!(symmetric_eigen(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![5.0]]);
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.values, vec![5.0]);
        assert_eq!(e.vectors[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn handles_repeated_eigenvalues() {
        // 2·I has eigenvalue 2 with multiplicity 3.
        let a = Matrix::identity(3).scaled(2.0);
        let e = symmetric_eigen(&a).unwrap();
        for &l in &e.values {
            assert!((l - 2.0).abs() < 1e-12);
        }
        let vtv = ops::gram(&e.vectors);
        assert!(vtv.approx_eq(&Matrix::identity(3), 1e-10));
    }
}
