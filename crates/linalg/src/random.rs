//! Seeded random sampling helpers.
//!
//! JL projections must be *data-oblivious* and reproducible from a shared
//! seed (paper §3.2 remark: the projection matrix "can be … generated
//! independently by different nodes using a shared random number generation
//! seed"). Everything here is therefore driven by explicit `u64` seeds and a
//! deterministic [`derive_seed`] splitter, so a data source and the server
//! regenerate identical matrices without communicating them.
//!
//! Gaussian variates use the Box–Muller transform (the `rand_distr` crate is
//! not on the dependency allow-list).

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which decorrelates consecutive labels.
///
/// # Example
///
/// ```
/// use ekm_linalg::random::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a seeded standard RNG.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one standard-normal variate via Box–Muller.
///
/// Consumes two uniforms per pair of normals; this helper regenerates the
/// pair every call for simplicity (callers needing bulk normals should use
/// [`fill_standard_normal`]).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fills a slice with i.i.d. standard-normal variates (Box–Muller pairs).
pub fn fill_standard_normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f64]) {
    let mut i = 0;
    while i + 1 < out.len() {
        let u1: f64 = loop {
            let u: f64 = rng.gen();
            if u > f64::MIN_POSITIVE {
                break u;
            }
        };
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        out[i] = r * theta.cos();
        out[i + 1] = r * theta.sin();
        i += 2;
    }
    if i < out.len() {
        out[i] = standard_normal(rng);
    }
}

/// Samples a `rows × cols` matrix with i.i.d. `N(0, sigma²)` entries.
pub fn gaussian_matrix(seed: u64, rows: usize, cols: usize, sigma: f64) -> Matrix {
    let mut rng = rng_from_seed(seed);
    let mut m = Matrix::zeros(rows, cols);
    fill_standard_normal(&mut rng, m.as_mut_slice());
    if sigma != 1.0 {
        m.scale_mut(sigma);
    }
    m
}

/// Samples a `rows × cols` matrix with i.i.d. Rademacher (`±scale`) entries.
pub fn rademacher_matrix(seed: u64, rows: usize, cols: usize, scale: f64) -> Matrix {
    let mut rng = rng_from_seed(seed);
    Matrix::from_fn(
        rows,
        cols,
        |_, _| {
            if rng.gen::<bool>() {
                scale
            } else {
                -scale
            }
        },
    )
}

/// Samples a sparse Achlioptas matrix with entries
/// `+s` w.p. 1/6, `0` w.p. 2/3, `-s` w.p. 1/6 where `s = scale·√3`.
///
/// This is the "database-friendly" sub-Gaussian JL family of Achlioptas
/// (paper reference \[33\]).
pub fn achlioptas_matrix(seed: u64, rows: usize, cols: usize, scale: f64) -> Matrix {
    let mut rng = rng_from_seed(seed);
    let s = scale * 3.0f64.sqrt();
    Matrix::from_fn(rows, cols, |_, _| {
        let u: f64 = rng.gen();
        if u < 1.0 / 6.0 {
            s
        } else if u < 1.0 / 3.0 {
            -s
        } else {
            0.0
        }
    })
}

/// Draws `count` indices in `0..n` i.i.d. from the distribution given by
/// nonnegative `weights` (need not be normalized).
///
/// # Panics
///
/// Panics if `weights.len() != n`, if all weights are zero/non-finite, or if
/// any weight is negative.
pub fn sample_weighted_indices<R: Rng + ?Sized>(
    rng: &mut R,
    weights: &[f64],
    count: usize,
) -> Vec<usize> {
    let cumulative = cumulative_weights(weights);
    let total = *cumulative.last().expect("non-empty weights");
    (0..count)
        .map(|_| {
            let target: f64 = rng.gen::<f64>() * total;
            // First index whose cumulative weight exceeds target.
            match cumulative
                .binary_search_by(|c| c.partial_cmp(&target).expect("finite cumulative weight"))
            {
                Ok(i) | Err(i) => i.min(weights.len() - 1),
            }
        })
        .collect()
}

fn cumulative_weights(weights: &[f64]) -> Vec<f64> {
    assert!(
        !weights.is_empty(),
        "sample_weighted_indices: empty weights"
    );
    let mut acc = 0.0;
    let cumulative: Vec<f64> = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and >= 0");
            acc += w;
            acc
        })
        .collect();
    assert!(acc > 0.0, "sample_weighted_indices: all weights are zero");
    cumulative
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_deterministic_and_distinct() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        let seeds: Vec<u64> = (0..100).map(|s| derive_seed(7, s)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "child seeds must be distinct");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn fill_standard_normal_handles_odd_lengths() {
        let mut rng = rng_from_seed(2);
        let mut buf = vec![0.0; 7];
        fill_standard_normal(&mut rng, &mut buf);
        assert!(buf.iter().all(|v| v.is_finite()));
        assert!(buf.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn gaussian_matrix_reproducible() {
        let a = gaussian_matrix(9, 10, 5, 1.0);
        let b = gaussian_matrix(9, 10, 5, 1.0);
        assert!(a.approx_eq(&b, 0.0));
        let c = gaussian_matrix(10, 10, 5, 1.0);
        assert!(!a.approx_eq(&c, 1e-12));
    }

    #[test]
    fn gaussian_matrix_scaling() {
        let a = gaussian_matrix(3, 50, 50, 1.0);
        let b = gaussian_matrix(3, 50, 50, 2.0);
        assert!(b.approx_eq(&a.scaled(2.0), 1e-12));
    }

    #[test]
    fn rademacher_entries_are_pm_scale() {
        let m = rademacher_matrix(4, 20, 20, 0.5);
        assert!(m.as_slice().iter().all(|&v| v == 0.5 || v == -0.5));
    }

    #[test]
    fn achlioptas_entry_distribution() {
        let m = achlioptas_matrix(5, 100, 100, 1.0);
        let s = 3.0f64.sqrt();
        let mut zero = 0usize;
        for &v in m.as_slice() {
            assert!(v == 0.0 || (v.abs() - s).abs() < 1e-12);
            if v == 0.0 {
                zero += 1;
            }
        }
        let frac = zero as f64 / 10_000.0;
        assert!((frac - 2.0 / 3.0).abs() < 0.03, "zero fraction {frac}");
    }

    #[test]
    fn weighted_sampling_respects_distribution() {
        let mut rng = rng_from_seed(6);
        let weights = [1.0, 0.0, 3.0];
        let draws = sample_weighted_indices(&mut rng, &weights, 40_000);
        assert!(draws.iter().all(|&i| i != 1), "zero-weight index drawn");
        let ones = draws.iter().filter(|&&i| i == 0).count() as f64 / 40_000.0;
        assert!((ones - 0.25).abs() < 0.02, "index-0 frequency {ones}");
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn weighted_sampling_zero_weights_panics() {
        let mut rng = rng_from_seed(6);
        let _ = sample_weighted_indices(&mut rng, &[0.0, 0.0], 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn weighted_sampling_negative_weights_panics() {
        let mut rng = rng_from_seed(6);
        let _ = sample_weighted_indices(&mut rng, &[1.0, -1.0], 1);
    }
}
