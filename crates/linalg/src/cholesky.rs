//! Cholesky factorization and SPD linear solves.
//!
//! The Moore–Penrose inverse of a full-column-rank JL projection matrix
//! `Π ∈ R^{d×d'}` is `Π⁺ = (ΠᵀΠ)⁻¹Πᵀ`, which needs one SPD solve with the
//! `d'×d'` Gram matrix — exactly what this module provides.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L · Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive.
    ///
    /// # Example
    ///
    /// ```
    /// use ekm_linalg::{Matrix, cholesky::Cholesky};
    /// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
    /// let ch = Cholesky::factor(&a).unwrap();
    /// let x = ch.solve_vec(&[8.0, 7.0]).unwrap();
    /// assert!((x[0] - 1.25).abs() < 1e-12);
    /// assert!((x[1] - 1.5).abs() < 1e-12);
    /// ```
    pub fn factor(a: &Matrix) -> Result<Cholesky> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                lhs: a.shape(),
                rhs: a.shape(),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factor's dimension.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L·y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for (k, &yk) in y.iter().enumerate().take(i) {
                v -= self.l[(i, k)] * yk;
            }
            y[i] = v / self.l[(i, i)];
        }
        // Backward: Lᵀ·x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &xk) in x.iter().enumerate().skip(i + 1) {
                v -= self.l[(k, i)] * xk;
            }
            x[i] = v / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `B.rows()` differs from
    /// the factor's dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve_matrix",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::random::gaussian_matrix;

    fn random_spd(seed: u64, n: usize) -> Matrix {
        let g = gaussian_matrix(seed, n + 4, n, 1.0);
        let mut a = ops::gram(&g);
        for i in 0..n {
            a[(i, i)] += 0.5; // well conditioned
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = random_spd(3, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let back = ops::matmul_transb(ch.l(), ch.l()).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn l_is_lower_triangular() {
        let a = random_spd(4, 6);
        let ch = Cholesky::factor(&a).unwrap();
        for i in 0..6 {
            for j in (i + 1)..6 {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn solve_vec_residual_small() {
        let a = random_spd(5, 10);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let x = ch.solve_vec(&b).unwrap();
        let ax = ops::matvec(&a, &x).unwrap();
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = random_spd(6, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let b = gaussian_matrix(7, 5, 3, 1.0);
        let x = ch.solve_matrix(&b).unwrap();
        let ax = ops::matmul(&a, &x).unwrap();
        assert!(ax.approx_eq(&b, 1e-8));
    }

    #[test]
    fn not_positive_definite_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // indefinite
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        assert!(Cholesky::factor(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn shape_mismatch_in_solve() {
        let a = random_spd(8, 4);
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.solve_vec(&[1.0, 2.0]).is_err());
        assert!(ch.solve_matrix(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let ch = Cholesky::factor(&Matrix::identity(4)).unwrap();
        let b = vec![1.0, -2.0, 3.0, -4.0];
        assert_eq!(ch.solve_vec(&b).unwrap(), b);
    }
}
