use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    DimensionMismatch {
        /// Human-readable name of the failing operation.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// An operation requiring a non-empty matrix received an empty one.
    EmptyMatrix {
        /// Human-readable name of the failing operation.
        op: &'static str,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the pivot at which factorization broke down.
        pivot: usize,
    },
    /// An iterative routine did not converge within its iteration budget.
    ConvergenceFailure {
        /// Human-readable name of the failing operation.
        op: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A requested rank/dimension exceeds what the matrix can provide.
    RankOutOfRange {
        /// The rank that was requested.
        requested: usize,
        /// The maximum rank available.
        available: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::EmptyMatrix { op } => {
                write!(f, "empty matrix passed to {op}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::ConvergenceFailure { op, iterations } => {
                write!(f, "{op} failed to converge after {iterations} iterations")
            }
            LinalgError::RankOutOfRange {
                requested,
                available,
            } => write!(
                f,
                "requested rank {requested} exceeds available rank {available}"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_convergence_failure() {
        let e = LinalgError::ConvergenceFailure {
            op: "jacobi",
            iterations: 100,
        };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn display_empty_and_rank() {
        assert!(LinalgError::EmptyMatrix { op: "qr" }
            .to_string()
            .contains("qr"));
        let e = LinalgError::RankOutOfRange {
            requested: 9,
            available: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<LinalgError>();
    }
}
