//! Householder QR factorization.
//!
//! Used by the randomized SVD's subspace iteration to re-orthonormalize
//! iterates, and generally whenever an orthonormal basis of a tall matrix is
//! needed.

use crate::{LinalgError, Matrix, Result};

/// Result of a thin QR factorization `A = Q · R`.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// `n × t` matrix with orthonormal columns (`t = min(n, d)`).
    pub q: Matrix,
    /// `t × d` upper-triangular factor.
    pub r: Matrix,
}

/// Computes the thin QR factorization of `a` (`n × d`) via Householder
/// reflections: `a = q · r` with `q` having `min(n, d)` orthonormal columns.
///
/// # Errors
///
/// Returns [`LinalgError::EmptyMatrix`] if `a` has no entries.
///
/// # Example
///
/// ```
/// use ekm_linalg::{Matrix, qr};
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![0.0, 1.0]]);
/// let f = qr::qr(&a).unwrap();
/// let back = ekm_linalg::ops::matmul(&f.q, &f.r).unwrap();
/// assert!(back.approx_eq(&a, 1e-10));
/// ```
pub fn qr(a: &Matrix) -> Result<QrDecomposition> {
    if a.is_empty() {
        return Err(LinalgError::EmptyMatrix { op: "qr" });
    }
    let n = a.rows();
    let d = a.cols();
    let t = n.min(d);

    // Work on a copy of A; Householder vectors accumulate below (and on) the
    // diagonal as in LAPACK's `geqrf`, R's diagonal goes to `alphas`.
    let mut work = a.clone();
    let mut betas = vec![0.0f64; t];
    let mut alphas = vec![0.0f64; t];

    for k in 0..t {
        let mut norm_sq = 0.0;
        for i in k..n {
            let v = work[(i, k)];
            norm_sq += v * v;
        }
        let norm = norm_sq.sqrt();
        if norm == 0.0 {
            betas[k] = 0.0;
            alphas[k] = 0.0;
            continue;
        }
        let akk = work[(k, k)];
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let v0 = akk - alpha;
        // vᵀv = ‖x‖² − 2·alpha·akk + alpha² (only the first entry changed).
        let vtv = norm_sq - 2.0 * alpha * akk + alpha * alpha;
        if vtv == 0.0 {
            betas[k] = 0.0;
            alphas[k] = alpha;
            continue;
        }
        let beta = 2.0 / vtv;
        betas[k] = beta;
        alphas[k] = alpha;
        work[(k, k)] = v0;
        // Apply H = I − beta·v·vᵀ to trailing columns.
        for j in (k + 1)..d {
            let mut dot = 0.0;
            for i in k..n {
                dot += work[(i, k)] * work[(i, j)];
            }
            let s = beta * dot;
            if s != 0.0 {
                for i in k..n {
                    let vik = work[(i, k)];
                    work[(i, j)] -= s * vik;
                }
            }
        }
    }

    // Extract R (t × d).
    let mut r = Matrix::zeros(t, d);
    for i in 0..t {
        r[(i, i)] = alphas[i];
        for j in (i + 1)..d {
            r[(i, j)] = work[(i, j)];
        }
    }

    // Expand thin Q (n × t) by applying reflections to the identity,
    // in reverse order.
    let mut q = Matrix::zeros(n, t);
    for j in 0..t {
        q[(j, j)] = 1.0;
    }
    for k in (0..t).rev() {
        let beta = betas[k];
        if beta == 0.0 {
            continue;
        }
        for j in 0..t {
            let mut dot = 0.0;
            for i in k..n {
                dot += work[(i, k)] * q[(i, j)];
            }
            let s = beta * dot;
            if s != 0.0 {
                for i in k..n {
                    let vik = work[(i, k)];
                    q[(i, j)] -= s * vik;
                }
            }
        }
    }

    Ok(QrDecomposition { q, r })
}

/// Returns an orthonormal basis for the column space of `a` (thin `Q`).
///
/// # Errors
///
/// Propagates errors from [`qr`].
pub fn orthonormalize(a: &Matrix) -> Result<Matrix> {
    Ok(qr(a)?.q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::random::gaussian_matrix;

    fn assert_orthonormal_cols(q: &Matrix, tol: f64) {
        let g = ops::gram(q);
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(
                    (g[(i, j)] - expect).abs() < tol,
                    "QᵀQ[{i},{j}] = {} (expected {expect})",
                    g[(i, j)]
                );
            }
        }
    }

    #[test]
    fn qr_reconstructs_tall_matrix() {
        let a = gaussian_matrix(11, 20, 5, 1.0);
        let f = qr(&a).unwrap();
        assert_eq!(f.q.shape(), (20, 5));
        assert_eq!(f.r.shape(), (5, 5));
        assert_orthonormal_cols(&f.q, 1e-10);
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn qr_reconstructs_wide_matrix() {
        let a = gaussian_matrix(13, 4, 9, 1.0);
        let f = qr(&a).unwrap();
        assert_eq!(f.q.shape(), (4, 4));
        assert_eq!(f.r.shape(), (4, 9));
        assert_orthonormal_cols(&f.q, 1e-10);
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = gaussian_matrix(17, 8, 6, 1.0);
        let f = qr(&a).unwrap();
        for i in 0..f.r.rows() {
            for j in 0..i.min(f.r.cols()) {
                assert!(f.r[(i, j)].abs() < 1e-12, "R[{i},{j}] = {}", f.r[(i, j)]);
            }
        }
    }

    #[test]
    fn qr_of_identity() {
        let f = qr(&Matrix::identity(4)).unwrap();
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&Matrix::identity(4), 1e-12));
    }

    #[test]
    fn qr_rank_deficient_still_factorizes() {
        // Two identical columns.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 2.0],
            vec![2.0, 2.0, 0.0],
            vec![3.0, 3.0, 1.0],
            vec![4.0, 4.0, 5.0],
        ]);
        let f = qr(&a).unwrap();
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&a, 1e-9));
    }

    #[test]
    fn qr_empty_errors() {
        assert!(qr(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn orthonormalize_gives_orthonormal_basis() {
        let a = gaussian_matrix(23, 30, 6, 1.0);
        let q = orthonormalize(&a).unwrap();
        assert_orthonormal_cols(&q, 1e-10);
    }

    #[test]
    fn qr_zero_column_handled() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 3.0]]);
        let f = qr(&a).unwrap();
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&a, 1e-10));
    }

    #[test]
    fn qr_single_column() {
        let a = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
        let f = qr(&a).unwrap();
        assert!((f.r[(0, 0)].abs() - 5.0).abs() < 1e-12);
        let back = ops::matmul(&f.q, &f.r).unwrap();
        assert!(back.approx_eq(&a, 1e-12));
    }
}
