//! The dense row-major [`Matrix`] type used to represent datasets and
//! operators throughout the workspace.

use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// Rows represent data points when the matrix stands for a dataset, matching
/// the paper's `A_P ∈ R^{n×d}` convention (each row is one point).
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.row(0), &[1.0, 2.0]);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: buffer has {} entries, expected {}x{}={}",
            data.len(),
            rows,
            cols,
            rows * cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "from_rows: row {i} has length {}, expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix has no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Borrows the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let r = self.row(i);
            for (j, &v) in r.iter().enumerate() {
                t.data[j * self.rows + i] = v;
            }
        }
        t
    }

    /// Returns a new matrix with `f` applied to every entry.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns the matrix scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Element-wise sum; errors on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn add(&self, other: &Matrix) -> crate::Result<Matrix> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise difference; errors on shape mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if shapes differ.
    pub fn sub(&self, other: &Matrix) -> crate::Result<Matrix> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    fn zip_with(
        &self,
        other: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> crate::Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm `Σ a_ij²`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// Squared ℓ2 norm of every row.
    pub fn row_norms_sq(&self) -> Vec<f64> {
        self.iter_rows()
            .map(|r| r.iter().map(|v| v * v).sum())
            .collect()
    }

    /// Maximum ℓ2 norm over all rows (0 for an empty matrix).
    ///
    /// This is the `max_{p∈P} ‖p‖` appearing in the paper's quantization
    /// error bound (14).
    pub fn max_row_norm(&self) -> f64 {
        self.row_norms_sq()
            .into_iter()
            .fold(0.0f64, f64::max)
            .sqrt()
    }

    /// The mean of all rows (the optimal 1-means center `μ(P)`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no rows.
    pub fn mean_row(&self) -> Vec<f64> {
        assert!(self.rows > 0, "mean_row of empty matrix");
        let mut mean = vec![0.0; self.cols];
        for r in self.iter_rows() {
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f64;
        for m in &mut mean {
            *m *= inv;
        }
        mean
    }

    /// Weighted mean of all rows with the given nonnegative weights.
    ///
    /// Returns the zero vector when the total weight is zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.rows()`.
    pub fn weighted_mean_row(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.rows, "weighted_mean_row: weight count");
        let mut mean = vec![0.0; self.cols];
        let mut total = 0.0;
        for (r, &w) in self.iter_rows().zip(weights) {
            total += w;
            for (m, &v) in mean.iter_mut().zip(r) {
                *m += w * v;
            }
        }
        if total > 0.0 {
            let inv = 1.0 / total;
            for m in &mut mean {
                *m *= inv;
            }
        }
        mean
    }

    /// Builds a new matrix from the rows at `indices` (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if column counts differ.
    pub fn vstack(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.cols != other.cols && !self.is_empty() && !other.is_empty() {
            return Err(LinalgError::DimensionMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        if self.is_empty() {
            return Ok(other.clone());
        }
        if other.is_empty() {
            return Ok(self.clone());
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Stacks several matrices vertically; empty inputs are skipped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the non-empty matrices
    /// disagree on column counts.
    pub fn vstack_all<'a, I: IntoIterator<Item = &'a Matrix>>(parts: I) -> crate::Result<Matrix> {
        let mut acc = Matrix::zeros(0, 0);
        for p in parts {
            acc = acc.vstack(p)?;
        }
        Ok(acc)
    }

    /// Returns the submatrix with the first `t` columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::RankOutOfRange`] if `t > self.cols()`.
    pub fn first_cols(&self, t: usize) -> crate::Result<Matrix> {
        if t > self.cols {
            return Err(LinalgError::RankOutOfRange {
                requested: t,
                available: self.cols,
            });
        }
        let mut m = Matrix::zeros(self.rows, t);
        for i in 0..self.rows {
            m.row_mut(i).copy_from_slice(&self.row(i)[..t]);
        }
        Ok(m)
    }

    /// Subtracts `v` from every row in place (e.g. mean-centering).
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn sub_row_vector_mut(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.cols, "sub_row_vector_mut: length mismatch");
        let cols = self.cols;
        for i in 0..self.rows {
            let r = &mut self.data[i * cols..(i + 1) * cols];
            for (x, &vi) in r.iter_mut().zip(v) {
                *x -= vi;
            }
        }
    }

    /// `true` when all entries of the two matrices differ by at most `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

/// A dense, row-major matrix of `f32` values — the storage behind the
/// opt-in f32 *compute* precision of the distance kernels.
///
/// This is deliberately a small mirror of [`Matrix`], not a generic
/// container: the only producer is [`MatrixF32::from_f64`] (one rounding
/// per entry, round-to-nearest-even), and the only consumers are the
/// kernels in [`crate::distance`], which never convert back row-wise —
/// results cross back into `f64` exactly once, at the distance level.
#[derive(Clone, PartialEq, Default)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Rounds every entry of `m` to `f32`.
    pub fn from_f64(m: &Matrix) -> Self {
        MatrixF32 {
            rows: m.rows,
            cols: m.cols,
            data: m.data.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Borrows the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

impl fmt::Debug for MatrixF32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MatrixF32 {}x{}", self.rows, self.cols)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            write!(f, "  [")?;
            let r = self.row(i);
            let shown = r.len().min(8);
            for (j, v) in r.iter().take(shown).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if r.len() > shown {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Vec<f64>>> for Matrix {
    fn from(rows: Vec<Vec<f64>>) -> Self {
        Matrix::from_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert!(!m.is_empty());
        assert!(Matrix::zeros(0, 4).is_empty());
    }

    #[test]
    fn identity_is_identity() {
        let i3 = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i3[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "from_rows")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t[(2, 1)], m[(1, 2)]);
        assert!(t.transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scaled(2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c.scale_mut(-1.0);
        assert_eq!(c.as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn add_shape_mismatch_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(2, 1);
        assert!(matches!(
            a.add(&b),
            Err(LinalgError::DimensionMismatch { op: "add", .. })
        ));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.frobenius_norm_sq() - 25.0).abs() < 1e-12);
        assert_eq!(m.row_norms_sq(), vec![25.0, 0.0]);
        assert!((m.max_row_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_row_is_centroid() {
        let m = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(m.mean_row(), vec![1.0, 2.0]);
    }

    #[test]
    fn weighted_mean_row_weights() {
        let m = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        assert_eq!(m.weighted_mean_row(&[1.0, 3.0]), vec![7.5]);
        assert_eq!(m.weighted_mean_row(&[0.0, 0.0]), vec![0.0]);
    }

    #[test]
    fn select_rows_with_duplicates() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn vstack_matrices() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[5.0, 6.0]);
        let all = Matrix::vstack_all([&a, &b, &Matrix::zeros(0, 0)]).unwrap();
        assert_eq!(all.shape(), (3, 2));
    }

    #[test]
    fn vstack_mismatch_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn first_cols_slices() {
        let m = Matrix::from_fn(2, 4, |i, j| (i * 4 + j) as f64);
        let f = m.first_cols(2).unwrap();
        assert_eq!(f.as_slice(), &[0.0, 1.0, 4.0, 5.0]);
        assert!(m.first_cols(5).is_err());
    }

    #[test]
    fn sub_row_vector_centers() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mean = m.mean_row();
        m.sub_row_vector_mut(&mean);
        let new_mean = m.mean_row();
        assert!(new_mean.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn debug_shows_shape() {
        let m = Matrix::zeros(2, 2);
        let s = format!("{m:?}");
        assert!(s.contains("2x2"));
        assert!(!s.is_empty());
    }

    #[test]
    fn map_applies_function() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(m.map(f64::abs).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn from_vec_and_into_vec_roundtrip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m[(1, 1)], 4.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn matrix_f32_rounds_and_mirrors_shape() {
        let m = Matrix::from_rows(&[vec![0.1, 2.0], vec![-3.5, 1e-40]]);
        let s = MatrixF32::from_f64(&m);
        assert_eq!(s.shape(), m.shape());
        assert_eq!(s.row(0), &[0.1f32, 2.0]);
        assert_eq!(s.row(1), &[-3.5f32, 1e-40f64 as f32]);
        assert_eq!(s.iter_rows().count(), 2);
        assert_eq!(s.as_slice().len(), 4);
    }

    #[test]
    fn iter_rows_counts() {
        let m = Matrix::from_fn(4, 2, |i, _| i as f64);
        assert_eq!(m.iter_rows().count(), 4);
        let sums: Vec<f64> = m.iter_rows().map(|r| r.iter().sum()).collect();
        assert_eq!(sums, vec![0.0, 2.0, 4.0, 6.0]);
    }
}
