//! Matrix products and related kernels.
//!
//! All kernels use cache-friendly `i-k-j` loop ordering on the row-major
//! [`Matrix`] layout and switch to scoped-thread row parallelism above a size
//! threshold (see [`crate::parallel`]).

use crate::parallel;
use crate::{LinalgError, Matrix, Result};

/// Minimum number of multiply-adds before a kernel bothers spawning threads.
const PAR_FLOPS_THRESHOLD: usize = 1 << 22;

/// Fixed row-chunk granularity of the [`matmul_transa`] accumulation
/// fold. A constant (rather than `n / workers`) keeps the fold graph —
/// and therefore the floating-point rounding — independent of the
/// worker count, the same discipline as the sharded Lloyd update.
const ACCUM_CHUNK: usize = 1024;

/// Computes the product `A · B`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless `A.cols() == B.rows()`.
///
/// # Example
///
/// ```
/// use ekm_linalg::{Matrix, ops};
/// let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
/// let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]);
/// assert_eq!(ops::matmul(&a, &b).unwrap()[(0, 0)], 11.0);
/// ```
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(n, m);
    let flops = n * k * m;
    let bs = b.as_slice();
    parallel::for_each_row_chunk(
        c.as_mut_slice(),
        m,
        flops >= PAR_FLOPS_THRESHOLD,
        |row_start, rows_chunk| {
            for (local_i, crow) in rows_chunk.chunks_exact_mut(m).enumerate() {
                let i = row_start + local_i;
                let arow = a.row(i);
                for (kk, &aik) in arow.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &bs[kk * m..(kk + 1) * m];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += aik * bv;
                    }
                }
            }
        },
    );
    Ok(c)
}

/// Rows of `B` per transposed tile in [`matmul_transb`]: the tile
/// (`TRANSB_TILE × k` doubles) stays cache-resident while the rows of
/// `A` stream against it — the same discipline as the blocked distance
/// kernel's center tiles.
const TRANSB_TILE: usize = 32;

/// Computes `A · Bᵀ` without materializing the full transpose.
///
/// The kernel tiles the rows of `B`, transposes each tile once into a
/// contiguous `k × tile` buffer, and runs the inner loop in `i-k-j`
/// order against it: every output column in the tile owns an
/// independent accumulator, so there is no per-element reduction chain
/// and the `j` loop vectorizes like the dense [`matmul`] kernel. This
/// is the product behind every center lift (`X = X'·Vᵀ`, the
/// `lift_out_of_basis` re-expansions, the pseudo-inverse lifts), which
/// previously ran the reduction-form [`dot`].
///
/// Each output element is accumulated over `k` in a fixed order that
/// depends only on the shapes, and parallelism only partitions rows of
/// `A` — results are **bitwise invariant across worker counts**.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless `A.cols() == B.cols()`.
pub fn matmul_transb(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_transb",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (n, k, m) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(n, m);
    // Transpose B tile by tile: tile t holds B's rows [t·T, t·T+width)
    // as `width` contiguous columns per dimension, so the inner j loop
    // below is unit-stride.
    let tiles: Vec<Vec<f64>> = (0..m.div_ceil(TRANSB_TILE))
        .map(|t| {
            let start = t * TRANSB_TILE;
            let width = TRANSB_TILE.min(m - start);
            let mut buf = vec![0.0f64; k * width];
            for (jj, j) in (start..start + width).enumerate() {
                for (kk, &bv) in b.row(j).iter().enumerate() {
                    buf[kk * width + jj] = bv;
                }
            }
            buf
        })
        .collect();
    let flops = n * k * m;
    parallel::for_each_row_chunk(
        c.as_mut_slice(),
        m,
        flops >= PAR_FLOPS_THRESHOLD,
        |row_start, rows_chunk| {
            for (local_i, crow) in rows_chunk.chunks_exact_mut(m).enumerate() {
                let arow = a.row(row_start + local_i);
                for (t, tile) in tiles.iter().enumerate() {
                    let start = t * TRANSB_TILE;
                    let width = TRANSB_TILE.min(m - start);
                    let cslice = &mut crow[start..start + width];
                    for (kk, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let trow = &tile[kk * width..(kk + 1) * width];
                        for (cv, &bv) in cslice.iter_mut().zip(trow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        },
    );
    Ok(c)
}

/// Computes `Aᵀ · B`.
///
/// The rank-1 accumulation over rows is sharded into fixed
/// [`ACCUM_CHUNK`]-row chunks whose partial products are computed on up
/// to [`parallel::worker_count`] scoped workers and folded in chunk
/// order — chunk boundaries and fold order depend only on `n`, so the
/// result is **bitwise invariant across worker counts**.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless `A.rows() == B.rows()`.
pub fn matmul_transa(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "matmul_transa",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (n, da, db) = (a.rows(), a.cols(), b.cols());
    let n_chunks = n.div_ceil(ACCUM_CHUNK).max(1);
    let workers = if n * da * db >= PAR_FLOPS_THRESHOLD {
        parallel::worker_count().min(n_chunks)
    } else {
        1
    };
    // Per-chunk rank-1 partials, accumulated in row order within the
    // chunk: cache friendly for both operands.
    let partials = parallel::par_map_indices_in(n_chunks, workers, |chunk| {
        let start = chunk * ACCUM_CHUNK;
        let end = (start + ACCUM_CHUNK).min(n);
        let mut p = vec![0.0f64; da * db];
        for i in start..end {
            let arow = a.row(i);
            let brow = b.row(i);
            for (j, &aij) in arow.iter().enumerate() {
                if aij == 0.0 {
                    continue;
                }
                let prow = &mut p[j * db..(j + 1) * db];
                for (pv, &bv) in prow.iter_mut().zip(brow) {
                    *pv += aij * bv;
                }
            }
        }
        p
    });
    let mut c = Matrix::zeros(da, db);
    let cs = c.as_mut_slice();
    for p in partials {
        for (cv, pv) in cs.iter_mut().zip(&p) {
            *cv += pv;
        }
    }
    Ok(c)
}

/// Computes the Gram matrix `Aᵀ · A` (symmetric `d × d`) via the
/// sharded [`matmul_transa`] fold (bitwise invariant across worker
/// counts).
pub fn gram(a: &Matrix) -> Matrix {
    // Unwrap is fine: shapes always agree with themselves.
    matmul_transa(a, a).expect("gram: self shapes agree")
}

/// Computes the outer Gram matrix `A · Aᵀ` (symmetric `n × n`).
pub fn outer_gram(a: &Matrix) -> Matrix {
    matmul_transb(a, a).expect("outer_gram: self shapes agree")
}

/// Computes the matrix-vector product `A · x`.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] unless `A.cols() == x.len()`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Result<Vec<f64>> {
    if a.cols() != x.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "matvec",
            lhs: a.shape(),
            rhs: (x.len(), 1),
        });
    }
    Ok(a.iter_rows().map(|r| dot(r, x)).collect())
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ (release builds truncate to
/// the shorter operand, which callers must not rely on).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // 4-way unrolled accumulation; the compiler vectorizes this reliably.
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = a.len() / 4;
    for c in 0..chunks {
        let i = c * 4;
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// ℓ2 norm of a slice.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(&rows.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.approx_eq(&mat(&[&[19.0, 22.0], &[43.0, 50.0]]), 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let c = matmul(&a, &Matrix::identity(4)).unwrap();
        assert!(c.approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_dim_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let a = Matrix::from_fn(3, 5, |i, j| ((i + 1) * (j + 2)) as f64);
        let b = Matrix::from_fn(4, 5, |i, j| (i as f64 - j as f64) * 0.5);
        let c1 = matmul_transb(&a, &b).unwrap();
        let c2 = matmul(&a, &b.transpose()).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let a = Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f64 * 0.25);
        let b = Matrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let c1 = matmul_transa(&a, &b).unwrap();
        let c2 = matmul(&a.transpose(), &b).unwrap();
        assert!(c1.approx_eq(&c2, 1e-12));
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0);
        let g = gram(&a);
        assert_eq!(g.shape(), (3, 3));
        for i in 0..3 {
            assert!(g[(i, i)] >= 0.0);
            for j in 0..3 {
                assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-12);
            }
        }
        // trace(AᵀA) == ‖A‖_F².
        let trace: f64 = (0..3).map(|i| g[(i, i)]).sum();
        assert!((trace - a.frobenius_norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn outer_gram_shape() {
        let a = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let g = outer_gram(&a);
        assert_eq!(g.shape(), (4, 4));
        assert!((g[(1, 2)] - dot(a.row(1), a.row(2))).abs() < 1e-12);
    }

    #[test]
    fn matvec_known() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(matvec(&a, &[3.0, 4.0]).unwrap(), vec![3.0, 8.0, 7.0]);
        assert!(matvec(&a, &[1.0]).is_err());
    }

    #[test]
    fn dot_and_sq_dist() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
        assert_eq!(sq_dist(&a, &a), 0.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn matmul_large_triggers_parallel_path() {
        // Big enough to exceed PAR_FLOPS_THRESHOLD: 256*256*256 = 2^24.
        let n = 256;
        let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 7) as f64);
        let b = Matrix::identity(n);
        let c = matmul(&a, &b).unwrap();
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_transb_bitwise_invariant_across_worker_counts() {
        // Several tiles wide and past the parallel threshold:
        // 2000 · 40 · 96 ≈ 7.7M ≥ 2^22, 96 columns = 3 tiles.
        let a = Matrix::from_fn(2000, 40, |i, j| {
            (((i * 17 + j * 5) % 101) as f64 - 50.0) * 0.03
        });
        let b = Matrix::from_fn(96, 40, |i, j| {
            (((i * 7 + j * 13) % 83) as f64 - 41.0) * 0.04
        });
        parallel::set_worker_count(1);
        let reference = matmul_transb(&a, &b).unwrap();
        for workers in [2, 4, 8] {
            parallel::set_worker_count(workers);
            assert!(
                matmul_transb(&a, &b).unwrap() == reference,
                "{workers} workers"
            );
        }
        parallel::set_worker_count(0);
    }

    #[test]
    fn matmul_transb_ragged_tile_widths() {
        // Column counts straddling the tile width, including the ragged
        // last tile.
        for m in [1usize, 31, 32, 33, 63, 65] {
            let a = Matrix::from_fn(7, 19, |i, j| (i as f64 - j as f64) * 0.5);
            let b = Matrix::from_fn(m, 19, |i, j| ((i + 2 * j) % 11) as f64 * 0.25);
            let got = matmul_transb(&a, &b).unwrap();
            let expected = matmul(&a, &b.transpose()).unwrap();
            assert!(got.approx_eq(&expected, 1e-12), "m={m}");
        }
    }

    #[test]
    fn matmul_transa_bitwise_invariant_across_worker_counts() {
        // Big enough for several ACCUM_CHUNK chunks *and* the parallel
        // threshold: 5000 · 30 · 30 = 4.5M ≥ 2^22.
        let a = Matrix::from_fn(5000, 30, |i, j| {
            (((i * 13 + j * 7) % 97) as f64 - 48.0) * 0.07
        });
        let b = Matrix::from_fn(5000, 30, |i, j| {
            (((i * 5 + j * 11) % 89) as f64 - 44.0) * 0.05
        });
        parallel::set_worker_count(1);
        let reference = matmul_transa(&a, &b).unwrap();
        let gram_ref = gram(&a);
        for workers in [2, 4, 8] {
            parallel::set_worker_count(workers);
            assert!(
                matmul_transa(&a, &b).unwrap() == reference,
                "{workers} workers"
            );
            assert!(gram(&a) == gram_ref, "{workers} workers");
        }
        parallel::set_worker_count(0);
    }

    #[test]
    fn matmul_associativity_numeric() {
        let a = Matrix::from_fn(3, 4, |i, j| (i as f64) - (j as f64) * 0.5);
        let b = Matrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64 * 0.1);
        let c = Matrix::from_fn(2, 3, |i, j| 1.0 / ((i + j + 1) as f64));
        let left = matmul(&matmul(&a, &b).unwrap(), &c).unwrap();
        let right = matmul(&a, &matmul(&b, &c).unwrap()).unwrap();
        assert!(left.approx_eq(&right, 1e-10));
    }
}
