//! Property-based tests for the linear-algebra substrate.

use ekm_linalg::{cholesky::Cholesky, distance, eig, ops, pinv, qr, svd, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix with dimensions in [1, max_dim] and entries in [-10, 10].
fn matrix_strategy(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f64..10.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_involution(m in matrix_strategy(12, 12)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_identity_left_right(m in matrix_strategy(10, 10)) {
        let il = Matrix::identity(m.rows());
        let ir = Matrix::identity(m.cols());
        prop_assert!(ops::matmul(&il, &m).unwrap().approx_eq(&m, 1e-12));
        prop_assert!(ops::matmul(&m, &ir).unwrap().approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(6, 6),
        seed in 0u64..1000,
    ) {
        let b = ekm_linalg::random::gaussian_matrix(seed, a.cols(), 4, 1.0);
        let c = ekm_linalg::random::gaussian_matrix(seed + 1, a.cols(), 4, 1.0);
        let left = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let right = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        prop_assert!(left.approx_eq(&right, 1e-9));
    }

    #[test]
    fn transpose_of_product((r, k, c) in (1usize..6, 1usize..6, 1usize..6), seed in 0u64..500) {
        let a = ekm_linalg::random::gaussian_matrix(seed, r, k, 1.0);
        let b = ekm_linalg::random::gaussian_matrix(seed + 7, k, c, 1.0);
        // (AB)ᵀ = BᵀAᵀ
        let lhs = ops::matmul(&a, &b).unwrap().transpose();
        let rhs = ops::matmul(&b.transpose(), &a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn qr_reconstruction_property(m in matrix_strategy(10, 6)) {
        let f = qr::qr(&m).unwrap();
        let back = ops::matmul(&f.q, &f.r).unwrap();
        prop_assert!(back.approx_eq(&m, 1e-8 * (1.0 + m.frobenius_norm())));
        // Orthonormal columns.
        let g = ops::gram(&f.q);
        prop_assert!(g.approx_eq(&Matrix::identity(g.rows()), 1e-8));
    }

    #[test]
    fn svd_reconstruction_property(m in matrix_strategy(8, 8)) {
        let s = svd::thin_svd(&m).unwrap();
        let back = s.reconstruct().unwrap();
        prop_assert!(back.approx_eq(&m, 1e-7 * (1.0 + m.frobenius_norm())));
    }

    #[test]
    fn svd_operator_norm_bound(m in matrix_strategy(8, 8)) {
        // σ_max ≤ ‖A‖_F and Σσ² = ‖A‖_F².
        let s = svd::thin_svd(&m).unwrap();
        let fro_sq = m.frobenius_norm_sq();
        let sum_sq: f64 = s.singular_values.iter().map(|v| v * v).sum();
        prop_assert!((sum_sq - fro_sq).abs() <= 1e-6 * (1.0 + fro_sq));
        if let Some(&smax) = s.singular_values.first() {
            prop_assert!(smax * smax <= fro_sq + 1e-6 * (1.0 + fro_sq));
        }
    }

    #[test]
    fn pinv_penrose_1(m in matrix_strategy(7, 7)) {
        let p = pinv::pinv(&m).unwrap();
        let apa = ops::matmul(&ops::matmul(&m, &p).unwrap(), &m).unwrap();
        prop_assert!(apa.approx_eq(&m, 1e-6 * (1.0 + m.frobenius_norm())));
    }

    #[test]
    fn cholesky_solve_property(seed in 0u64..1000, n in 1usize..8) {
        let g = ekm_linalg::random::gaussian_matrix(seed, n + 3, n, 1.0);
        let mut a = ops::gram(&g);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) - 1.5).collect();
        let x = ch.solve_vec(&b).unwrap();
        let ax = ops::matvec(&a, &x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn eigen_reconstruction_property(seed in 0u64..1000, n in 1usize..8) {
        let g = ekm_linalg::random::gaussian_matrix(seed, n + 2, n, 1.0);
        let a = ops::gram(&g);
        let e = eig::symmetric_eigen(&a).unwrap();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = e.values[i];
        }
        let back = ops::matmul_transb(&ops::matmul(&e.vectors, &lam).unwrap(), &e.vectors).unwrap();
        prop_assert!(back.approx_eq(&a, 1e-7 * (1.0 + a.frobenius_norm())));
    }

    #[test]
    fn row_norms_consistent_with_frobenius(m in matrix_strategy(10, 10)) {
        let total: f64 = m.row_norms_sq().iter().sum();
        prop_assert!((total - m.frobenius_norm_sq()).abs() < 1e-9 * (1.0 + total));
    }

    /// The blocked norm-expansion distances agree with the naive
    /// subtract-square loop to tight relative precision.
    #[test]
    fn sq_dists_block_matches_naive(
        p in matrix_strategy(40, 12),
        seed in 0u64..1000,
        k in 1usize..70,
    ) {
        let c = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 5.0);
        let blocked = distance::sq_dists_block(&p, &c).unwrap();
        for i in 0..p.rows() {
            let x2 = ops::dot(p.row(i), p.row(i));
            for j in 0..k {
                let naive = ops::sq_dist(p.row(i), c.row(j));
                let c2 = ops::dot(c.row(j), c.row(j));
                let tol = 1e-12 * (1.0 + x2 + c2);
                prop_assert!(
                    (blocked[(i, j)] - naive).abs() <= tol,
                    "({}, {}): {} vs {}", i, j, blocked[(i, j)], naive
                );
            }
        }
    }

    /// Distance and fused-assignment kernels are bit-identical at every
    /// worker count (the same invariance contract as the sharded Lloyd
    /// fold), and the fused argmin agrees with the full matrix.
    #[test]
    fn distance_kernels_bit_identical_across_workers(
        p in matrix_strategy(600, 10),
        seed in 0u64..1000,
        k in 1usize..50,
    ) {
        let c = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 5.0);
        let full = distance::sq_dists_block_in(&p, &c, 1).unwrap();
        let (labels, dists) = distance::assign_blocked_in(&p, &c, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let m = distance::sq_dists_block_in(&p, &c, workers).unwrap();
            prop_assert!(m == full, "{} workers", workers);
            let (l, d) = distance::assign_blocked_in(&p, &c, workers).unwrap();
            prop_assert!(l == labels, "{} workers", workers);
            prop_assert!(d == dists, "{} workers", workers);
        }
        for i in 0..p.rows() {
            let row = full.row(i);
            prop_assert!(row[labels[i]].to_bits() == dists[i].to_bits());
            for &v in row {
                prop_assert!(dists[i] <= v);
            }
        }
    }

    /// The lane-accumulator kernel is bit-identical, at worker counts
    /// {1,2,4,8}, to the pre-lane blocked kernel's arithmetic: the
    /// norm-expansion form with one serial left-to-right dot product
    /// per term, argmin with strict `<` in increasing center order.
    #[test]
    fn lane_kernel_bitwise_matches_serial_expansion(
        p in matrix_strategy(90, 11),
        seed in 0u64..1000,
        k in 1usize..40,
    ) {
        let serial = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).fold(0.0, |acc, (x, y)| acc + x * y)
        };
        let c = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 5.0);
        let reference = Matrix::from_fn(p.rows(), k, |i, j| {
            let (x, cj) = (p.row(i), c.row(j));
            (serial(x, x) + serial(cj, cj) - 2.0 * serial(x, cj)).max(0.0)
        });
        let mut ref_best = vec![f64::INFINITY; p.rows()];
        for (i, b) in ref_best.iter_mut().enumerate() {
            for &v in reference.row(i) {
                if v < *b {
                    *b = v;
                }
            }
        }
        for workers in [1usize, 2, 4, 8] {
            let m = distance::sq_dists_block_in(&p, &c, workers).unwrap();
            prop_assert!(m == reference, "{} workers", workers);
            let norms = distance::row_norms_sq(&p);
            let mut best = vec![f64::INFINITY; p.rows()];
            distance::min_sq_dists_update_in(&p, &norms, &c, &mut best, workers).unwrap();
            prop_assert!(best == ref_best, "{} workers", workers);
        }
    }

    /// The f32 compute path is deterministic and worker-invariant at its
    /// own precision, and its distances stay within single-precision
    /// relative tolerance of the f64 reference.
    #[test]
    fn f32_engine_deterministic_and_close(
        p in matrix_strategy(120, 7),
        seed in 0u64..1000,
        k in 1usize..30,
    ) {
        let c = ekm_linalg::random::gaussian_matrix(seed, k, p.cols(), 2.0);
        let engine = distance::DistanceEngine::new(&p, distance::Compute::F32);
        let (labels, dists) = engine.assign_in(&c, 1).unwrap();
        for workers in [2usize, 4, 8] {
            let (l, d) = engine.assign_in(&c, workers).unwrap();
            prop_assert!(l == labels, "{} workers", workers);
            prop_assert!(d == dists, "{} workers", workers);
        }
        let (_, dists64) = distance::assign_blocked_in(&p, &c, 1).unwrap();
        for (i, (&a, &b)) in dists.iter().zip(&dists64).enumerate() {
            // Relative f32 tolerance on the expansion operands.
            let scale = 1.0 + ops::dot(p.row(i), p.row(i)).abs() + b.abs();
            prop_assert!((a - b).abs() <= 1e-5 * scale, "row {}: {} vs {}", i, a, b);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(
        v in proptest::collection::vec(-5.0f64..5.0, 1..32),
        w_seed in 0u64..100,
    ) {
        let w: Vec<f64> = {
            use rand::Rng;
            let mut rng = ekm_linalg::random::rng_from_seed(w_seed);
            (0..v.len()).map(|_| rng.gen_range(-5.0..5.0)).collect()
        };
        let d = ops::dot(&v, &w).abs();
        let bound = ops::norm(&v) * ops::norm(&w);
        prop_assert!(d <= bound + 1e-9);
    }
}
