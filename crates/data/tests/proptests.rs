//! Property-based tests for dataset generation and partitioning.

use ekm_data::mnist_like::MnistLike;
use ekm_data::neurips_like::NeurIpsLike;
use ekm_data::normalize::normalize_paper;
use ekm_data::partition::{partition_indices, partition_skewed, partition_uniform};
use ekm_data::synth::GaussianMixture;
use ekm_linalg::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Normalization always yields zero column means and entries in
    /// [-1, 1], and denormalization inverts it.
    #[test]
    fn normalization_invariants(seed in 0u64..500, n in 2usize..60, d in 1usize..12) {
        let raw = ekm_linalg::random::gaussian_matrix(seed, n, d, 7.0);
        let (norm, info) = normalize_paper(&raw);
        prop_assert!(norm.as_slice().iter().all(|v| (-1.0 - 1e-12..=1.0 + 1e-12).contains(v)));
        prop_assert!(norm.mean_row().iter().all(|m| m.abs() < 1e-9));
        let back = info.denormalize(&norm);
        prop_assert!(back.approx_eq(&raw, 1e-9 * (1.0 + raw.frobenius_norm())));
    }

    /// Uniform partition: disjoint cover with near-equal sizes.
    #[test]
    fn uniform_partition_cover(seed in 0u64..500, n in 10usize..200, parts in 1usize..10) {
        prop_assume!(parts <= n);
        let data = Matrix::from_fn(n, 1, |i, _| i as f64);
        let shards = partition_uniform(&data, parts, seed).unwrap();
        let mut all: Vec<i64> = shards
            .iter()
            .flat_map(|s| s.col(0).into_iter().map(|v| v as i64))
            .collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..n as i64).collect();
        prop_assert_eq!(all, expect);
        let sizes: Vec<usize> = shards.iter().map(|s| s.rows()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    /// Skewed partition: disjoint cover with non-empty shards.
    #[test]
    fn skewed_partition_cover(seed in 0u64..200, n in 20usize..150, parts in 2usize..8, skew in 0.2f64..1.0) {
        prop_assume!(parts <= n);
        let data = Matrix::from_fn(n, 1, |i, _| i as f64);
        let shards = partition_skewed(&data, parts, skew, seed).unwrap();
        prop_assert_eq!(shards.iter().map(|s| s.rows()).sum::<usize>(), n);
        prop_assert!(shards.iter().all(|s| s.rows() >= 1));
    }

    /// Index partition is consistent across repeated calls (seeded).
    #[test]
    fn partition_deterministic(seed in 0u64..500, n in 5usize..80) {
        let a = partition_indices(n, 3.min(n), seed, None).unwrap();
        let b = partition_indices(n, 3.min(n), seed, None).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Generators are deterministic in their seed and honor shapes.
    #[test]
    fn generators_deterministic(seed in 0u64..100) {
        let a = GaussianMixture::new(30, 4, 2).with_seed(seed).generate().unwrap();
        let b = GaussianMixture::new(30, 4, 2).with_seed(seed).generate().unwrap();
        prop_assert!(a.points.approx_eq(&b.points, 0.0));

        let m = MnistLike::new(20, 6).with_seed(seed).generate().unwrap();
        prop_assert_eq!(m.points.shape(), (20, 36));
        prop_assert!(m.points.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));

        let w = NeurIpsLike::new(25, 10).with_seed(seed).generate().unwrap();
        prop_assert_eq!(w.points.shape(), (25, 10));
        prop_assert!(w.points.as_slice().iter().all(|&v| v >= 0.0));
    }

    /// Mixture labels are consistent with proximity for well-separated
    /// clusters: a point is nearer its own component mean than any other.
    #[test]
    fn mixture_labels_sane(seed in 0u64..50) {
        let ds = GaussianMixture::new(60, 6, 3)
            .with_separation(50.0)
            .with_cluster_std(0.5)
            .with_seed(seed)
            .generate()
            .unwrap();
        // Estimate component means from labels, then verify proximity.
        let mut means = vec![vec![0.0; 6]; 3];
        let mut counts = [0usize; 3];
        for (i, &l) in ds.labels.iter().enumerate() {
            counts[l] += 1;
            for (m, &v) in means[l].iter_mut().zip(ds.points.row(i)) {
                *m += v;
            }
        }
        for (mean, &count) in means.iter_mut().zip(&counts) {
            prop_assume!(count > 0);
            for m in mean.iter_mut() {
                *m /= count as f64;
            }
        }
        let mut correct = 0;
        for (i, &l) in ds.labels.iter().enumerate() {
            let dists: Vec<f64> = means
                .iter()
                .map(|m| ekm_linalg::ops::sq_dist(ds.points.row(i), m))
                .collect();
            let nearest = dists
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            if nearest == l {
                correct += 1;
            }
        }
        prop_assert!(correct as f64 / 60.0 > 0.95);
    }
}
