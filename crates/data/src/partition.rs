//! Random partitioning of a dataset across `m` data sources (paper §7.1:
//! "we randomly partition each dataset among 10 data sources").

use crate::{DataError, Result};
use ekm_linalg::random::rng_from_seed;
use ekm_linalg::Matrix;
use rand::seq::SliceRandom;
use rand::Rng;

/// Randomly partitions the rows of `data` into `parts` near-equal shares.
///
/// Every row lands in exactly one share; share sizes differ by at most 1.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if `parts` is 0 or exceeds the
/// number of rows.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_data::partition::partition_uniform;
///
/// let data = Matrix::from_fn(10, 2, |i, _| i as f64);
/// let parts = partition_uniform(&data, 3, 42).unwrap();
/// assert_eq!(parts.len(), 3);
/// let total: usize = parts.iter().map(|p| p.rows()).sum();
/// assert_eq!(total, 10);
/// ```
pub fn partition_uniform(data: &Matrix, parts: usize, seed: u64) -> Result<Vec<Matrix>> {
    let indices = partition_indices(data.rows(), parts, seed, None)?;
    Ok(indices.iter().map(|idx| data.select_rows(idx)).collect())
}

/// Randomly partitions rows with skewed share sizes: share `i` receives a
/// fraction proportional to `skew^i` (`skew = 1` is uniform). Models
/// heterogeneous edge devices holding different amounts of data.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] for invalid `parts` or
/// non-positive `skew`.
pub fn partition_skewed(data: &Matrix, parts: usize, skew: f64, seed: u64) -> Result<Vec<Matrix>> {
    if skew <= 0.0 {
        return Err(DataError::InvalidParameter {
            name: "skew",
            reason: "must be positive",
        });
    }
    let indices = partition_indices(data.rows(), parts, seed, Some(skew))?;
    Ok(indices.iter().map(|idx| data.select_rows(idx)).collect())
}

/// Computes the row-index partition itself (shared by both entry points;
/// also useful to partition labels alongside points).
///
/// # Errors
///
/// See [`partition_uniform`].
pub fn partition_indices(
    n: usize,
    parts: usize,
    seed: u64,
    skew: Option<f64>,
) -> Result<Vec<Vec<usize>>> {
    if parts == 0 || parts > n {
        return Err(DataError::InvalidParameter {
            name: "parts",
            reason: "must be in 1..=n",
        });
    }
    let mut rng = rng_from_seed(seed);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);

    // Share sizes.
    let sizes: Vec<usize> = match skew {
        None => {
            let base = n / parts;
            let extra = n % parts;
            (0..parts).map(|i| base + usize::from(i < extra)).collect()
        }
        Some(s) => {
            let raw: Vec<f64> = (0..parts).map(|i| s.powi(i as i32)).collect();
            let total: f64 = raw.iter().sum();
            let mut sizes: Vec<usize> = raw
                .iter()
                .map(|r| ((r / total) * n as f64).floor() as usize)
                .collect();
            // Guarantee non-empty shares, then distribute the remainder.
            for sz in sizes.iter_mut() {
                if *sz == 0 {
                    *sz = 1;
                }
            }
            let mut assigned: usize = sizes.iter().sum();
            // Trim if over-assigned (possible after the min-1 bump).
            let mut i = 0;
            while assigned > n {
                if sizes[i] > 1 {
                    sizes[i] -= 1;
                    assigned -= 1;
                }
                i = (i + 1) % parts;
            }
            let mut i = 0;
            while assigned < n {
                sizes[i] += 1;
                assigned += 1;
                i = (i + 1) % parts;
            }
            sizes
        }
    };

    let mut out = Vec::with_capacity(parts);
    let mut cursor = 0;
    for &sz in &sizes {
        out.push(order[cursor..cursor + sz].to_vec());
        cursor += sz;
    }
    debug_assert_eq!(cursor, n);
    let _ = rng.gen::<u8>(); // burn one value so seed reuse is detectable
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_partition_covers_all_rows_once() {
        let data = Matrix::from_fn(103, 2, |i, _| i as f64);
        let parts = partition_uniform(&data, 10, 7).unwrap();
        assert_eq!(parts.len(), 10);
        let mut seen: Vec<f64> = parts.iter().flat_map(|p| p.col(0).into_iter()).collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..103).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
        // Sizes within 1 of each other.
        let sizes: Vec<usize> = parts.iter().map(|p| p.rows()).collect();
        assert!(sizes.iter().all(|&s| s == 10 || s == 11), "{sizes:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = Matrix::from_fn(40, 1, |i, _| i as f64);
        let a = partition_uniform(&data, 4, 9).unwrap();
        let b = partition_uniform(&data, 4, 9).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!(x.approx_eq(y, 0.0));
        }
        let c = partition_uniform(&data, 4, 10).unwrap();
        assert!(a.iter().zip(&c).any(|(x, y)| !x.approx_eq(y, 0.0)));
    }

    #[test]
    fn partition_is_shuffled() {
        let data = Matrix::from_fn(100, 1, |i, _| i as f64);
        let parts = partition_uniform(&data, 2, 3).unwrap();
        // The first share should not be exactly 0..50.
        let first = parts[0].col(0);
        let sorted_prefix: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_ne!(first, sorted_prefix);
    }

    #[test]
    fn skewed_shares_decrease() {
        let data = Matrix::from_fn(1000, 1, |i, _| i as f64);
        let parts = partition_skewed(&data, 5, 0.5, 1).unwrap();
        let sizes: Vec<usize> = parts.iter().map(|p| p.rows()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        // Roughly geometric: each at most the previous (with slack 2 for
        // remainder distribution).
        for w in sizes.windows(2) {
            assert!(w[1] <= w[0] + 2, "sizes {sizes:?}");
        }
        assert!(sizes[0] > 2 * sizes[4], "sizes {sizes:?}");
    }

    #[test]
    fn skewed_shares_nonempty() {
        let data = Matrix::from_fn(20, 1, |i, _| i as f64);
        let parts = partition_skewed(&data, 6, 0.2, 2).unwrap();
        assert!(parts.iter().all(|p| p.rows() >= 1));
        assert_eq!(parts.iter().map(|p| p.rows()).sum::<usize>(), 20);
    }

    #[test]
    fn indices_partition_labels_alongside() {
        let idx = partition_indices(10, 3, 4, None).unwrap();
        let labels: Vec<usize> = (0..10).collect();
        let mut seen: Vec<usize> = idx
            .iter()
            .flat_map(|part| part.iter().map(|&i| labels[i]))
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, labels);
    }

    #[test]
    fn invalid_parameters_error() {
        let data = Matrix::from_fn(5, 1, |i, _| i as f64);
        assert!(partition_uniform(&data, 0, 0).is_err());
        assert!(partition_uniform(&data, 6, 0).is_err());
        assert!(partition_skewed(&data, 2, 0.0, 0).is_err());
        assert!(partition_skewed(&data, 2, -1.0, 0).is_err());
    }
}
