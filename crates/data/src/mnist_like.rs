//! Synthetic MNIST-like image dataset.
//!
//! Stand-in for the MNIST training set (60000 images, 28×28 = 784 pixels)
//! used by the paper's experiments. Ten seeded "digit prototypes" are
//! synthesized as smooth pen-stroke-like intensity fields on the pixel
//! grid (sums of a few randomly placed Gaussian bumps — low-frequency
//! structure like real digits, so the data has strong intrinsic
//! low-dimensionality, which is what FSS/PCA exploit). Samples are a
//! prototype plus per-image deformation noise, clipped to `[0, 1]`, then
//! passed through the paper's normalization by the caller.

use crate::synth::LabeledDataset;
use crate::{DataError, Result};
use ekm_linalg::random::{derive_seed, rng_from_seed};
use ekm_linalg::Matrix;
use rand::Rng;

/// Number of prototype classes (digits 0–9).
pub const N_CLASSES: usize = 10;

/// The paper-scale configuration: 60000 images, 28×28 pixels.
pub fn paper_scale() -> MnistLike {
    MnistLike::new(60_000, 28)
}

/// Builder for the synthetic MNIST-like dataset.
///
/// # Example
///
/// ```
/// use ekm_data::mnist_like::MnistLike;
///
/// let ds = MnistLike::new(200, 14).with_seed(5).generate().unwrap();
/// assert_eq!(ds.points.shape(), (200, 14 * 14));
/// // Pixel intensities live in [0, 1] like real MNIST (scaled).
/// assert!(ds.points.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
/// ```
#[derive(Debug, Clone)]
pub struct MnistLike {
    n: usize,
    side: usize,
    noise: f64,
    intensity_jitter: f64,
    style_strength: f64,
    seed: u64,
}

impl MnistLike {
    /// Creates a generator for `n` images on a `side × side` pixel grid.
    pub fn new(n: usize, side: usize) -> Self {
        MnistLike {
            n,
            side,
            noise: 0.15,
            intensity_jitter: 0.35,
            style_strength: 0.25,
            seed: 0,
        }
    }

    /// Per-pixel deformation noise amplitude (default 0.15).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Per-image multiplicative intensity jitter `j`: each image scales
    /// its prototype by `α ~ U(1−j, 1+j)`, modeling stroke-width/style
    /// variation — this is what gives the stand-in realistic within-class
    /// variance (default 0.35).
    pub fn with_intensity_jitter(mut self, jitter: f64) -> Self {
        self.intensity_jitter = jitter;
        self
    }

    /// Per-image "style" strength `s`: each image mixes in every other
    /// prototype with a coefficient `~ U(−s, s)`. This puts within-class
    /// scatter along the same low-dimensional subspace the class means
    /// span — like real handwriting, where most per-image variance is
    /// shared stroke structure, not isotropic pixel noise (default 0.25).
    pub fn with_style_strength(mut self, strength: f64) -> Self {
        self.style_strength = strength;
        self
    }

    /// RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dimensionality of the generated points (`side²`).
    pub fn dim(&self) -> usize {
        self.side * self.side
    }

    /// Generates the dataset with ground-truth class labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for zero sizes or negative
    /// noise.
    pub fn generate(&self) -> Result<LabeledDataset> {
        if self.n == 0 || self.side == 0 {
            return Err(DataError::InvalidParameter {
                name: "n/side",
                reason: "must be positive",
            });
        }
        if self.noise < 0.0 || self.intensity_jitter < 0.0 || self.style_strength < 0.0 {
            return Err(DataError::InvalidParameter {
                name: "noise/intensity_jitter/style_strength",
                reason: "must be nonnegative",
            });
        }
        let d = self.dim();
        let prototypes = self.prototypes();
        let mut rng = rng_from_seed(derive_seed(self.seed, 10));
        let mut points = Matrix::zeros(self.n, d);
        let mut labels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let class = rng.gen_range(0..N_CLASSES);
            labels.push(class);
            let alpha = 1.0 + (rng.gen::<f64>() - 0.5) * 2.0 * self.intensity_jitter;
            // Style mixture coefficients for the other prototypes.
            let betas: Vec<f64> = (0..N_CLASSES)
                .map(|c| {
                    if c == class {
                        0.0
                    } else {
                        (rng.gen::<f64>() - 0.5) * 2.0 * self.style_strength
                    }
                })
                .collect();
            let row = points.row_mut(i);
            for (j, x) in row.iter_mut().enumerate() {
                let mut v = alpha * prototypes[(class, j)];
                for (c, &b) in betas.iter().enumerate() {
                    if b != 0.0 {
                        v += b * prototypes[(c, j)];
                    }
                }
                let noise = (rng.gen::<f64>() - 0.5) * 2.0 * self.noise;
                *x = (v + noise).clamp(0.0, 1.0);
            }
        }
        Ok(LabeledDataset { points, labels })
    }

    /// The ten class prototypes (rows), each a smooth `[0,1]` intensity
    /// field.
    pub fn prototypes(&self) -> Matrix {
        let d = self.dim();
        let mut protos = Matrix::zeros(N_CLASSES, d);
        for class in 0..N_CLASSES {
            let mut rng = rng_from_seed(derive_seed(self.seed, 100 + class as u64));
            // 3–6 Gaussian "stroke" bumps per digit.
            let bumps = rng.gen_range(3..=6);
            let centers: Vec<(f64, f64, f64, f64)> = (0..bumps)
                .map(|_| {
                    (
                        rng.gen::<f64>() * self.side as f64,                 // cx
                        rng.gen::<f64>() * self.side as f64,                 // cy
                        self.side as f64 * (0.08 + 0.12 * rng.gen::<f64>()), // radius
                        0.5 + 0.5 * rng.gen::<f64>(),                        // intensity
                    )
                })
                .collect();
            let row = protos.row_mut(class);
            for py in 0..self.side {
                for px in 0..self.side {
                    let mut v = 0.0f64;
                    for &(cx, cy, r, a) in &centers {
                        let dx = px as f64 - cx;
                        let dy = py as f64 - cy;
                        v += a * (-(dx * dx + dy * dy) / (2.0 * r * r)).exp();
                    }
                    row[py * self.side + px] = v.min(1.0);
                }
            }
        }
        protos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_paper;

    #[test]
    fn shapes_range_and_labels() {
        let ds = MnistLike::new(150, 12).with_seed(1).generate().unwrap();
        assert_eq!(ds.points.shape(), (150, 144));
        assert!(ds.points.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(ds.labels.iter().all(|&l| l < N_CLASSES));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = MnistLike::new(50, 10).with_seed(3).generate().unwrap();
        let b = MnistLike::new(50, 10).with_seed(3).generate().unwrap();
        assert!(a.points.approx_eq(&b.points, 0.0));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn prototypes_are_smooth_nontrivial() {
        let gen = MnistLike::new(1, 16).with_seed(2);
        let protos = gen.prototypes();
        assert_eq!(protos.shape(), (N_CLASSES, 256));
        for c in 0..N_CLASSES {
            let energy: f64 = protos.row(c).iter().map(|v| v * v).sum();
            assert!(energy > 0.5, "prototype {c} nearly empty ({energy})");
        }
        // Distinct classes differ substantially.
        let d01 = ekm_linalg::ops::sq_dist(protos.row(0), protos.row(1));
        assert!(d01 > 0.1, "prototypes 0/1 identical-ish ({d01})");
    }

    #[test]
    fn has_low_intrinsic_dimension() {
        // Real digit images concentrate energy in few principal
        // components; the stand-in must too (it is what FSS exploits).
        let ds = MnistLike::new(400, 12).with_seed(4).generate().unwrap();
        let (norm, _) = normalize_paper(&ds.points);
        let pca = ekm_sketch::Pca::fit(&norm, 20).unwrap();
        let captured: f64 = pca.singular_values().iter().map(|v| v * v).sum();
        let frac = captured / norm.frobenius_norm_sq();
        assert!(frac > 0.5, "top-20 PCA captures only {frac}");
    }

    #[test]
    fn classes_are_separable_by_kmeans_cost() {
        // k-means with 10 centers should do far better than 1 center.
        let ds = MnistLike::new(300, 10)
            .with_noise(0.02)
            .with_seed(5)
            .generate()
            .unwrap();
        let k10 = ekm_clustering::kmeans::KMeans::new(10)
            .with_seed(1)
            .fit(&ds.points)
            .unwrap();
        let k1 = ekm_clustering::kmeans::KMeans::new(1)
            .with_seed(1)
            .fit(&ds.points)
            .unwrap();
        assert!(
            k10.inertia < 0.35 * k1.inertia,
            "k=10 inertia {} vs k=1 {}",
            k10.inertia,
            k1.inertia
        );
    }

    #[test]
    fn paper_scale_shape() {
        let g = paper_scale();
        assert_eq!(g.dim(), 784);
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(MnistLike::new(0, 8).generate().is_err());
        assert!(MnistLike::new(8, 0).generate().is_err());
        assert!(MnistLike::new(8, 8).with_noise(-0.1).generate().is_err());
    }
}
