use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by dataset loading and generation.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// An I/O failure while reading dataset files.
    Io(io::Error),
    /// A dataset file did not match its expected binary format.
    Format {
        /// Explanation.
        reason: String,
    },
    /// Invalid generation/partition parameters.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation.
        reason: &'static str,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "dataset i/o failure: {e}"),
            DataError::Format { reason } => write!(f, "bad dataset format: {reason}"),
            DataError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
        assert!(Error::source(&e).is_some());
        assert!(DataError::Format {
            reason: "bad magic".into()
        }
        .to_string()
        .contains("bad magic"));
        assert!(DataError::InvalidParameter {
            name: "parts",
            reason: "zero"
        }
        .to_string()
        .contains("parts"));
    }

    #[test]
    fn send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<DataError>();
    }
}
