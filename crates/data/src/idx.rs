//! Reader for the MNIST IDX binary format.
//!
//! When the real MNIST files are available (`EKM_MNIST_DIR` pointing at a
//! directory containing `train-images-idx3-ubyte`), the experiment harness
//! loads them instead of the synthetic stand-in. The format is the classic
//! LeCun layout: big-endian magic `0x0000_0803` (unsigned byte tensor,
//! 3 dims), the dimension sizes, then raw `u8` payload.

use crate::{DataError, Result};
use ekm_linalg::Matrix;
use std::io::Read;
use std::path::Path;

/// Magic number for a 3-dimensional unsigned-byte tensor (images).
pub const MAGIC_IMAGES: u32 = 0x0000_0803;

/// Magic number for a 1-dimensional unsigned-byte tensor (labels).
pub const MAGIC_LABELS: u32 = 0x0000_0801;

/// Parses an IDX image tensor from a reader into an `n × (rows·cols)`
/// matrix with intensities scaled to `[0, 1]`.
///
/// # Errors
///
/// * [`DataError::Io`] on read failures.
/// * [`DataError::Format`] on a bad magic number or truncated payload.
pub fn read_idx_images<R: Read>(mut reader: R) -> Result<Matrix> {
    let magic = read_u32(&mut reader)?;
    if magic != MAGIC_IMAGES {
        return Err(DataError::Format {
            reason: format!("bad image magic 0x{magic:08x}"),
        });
    }
    let n = read_u32(&mut reader)? as usize;
    let rows = read_u32(&mut reader)? as usize;
    let cols = read_u32(&mut reader)? as usize;
    let d = rows * cols;
    let mut buf = vec![0u8; n * d];
    reader.read_exact(&mut buf).map_err(|e| DataError::Format {
        reason: format!("truncated image payload: {e}"),
    })?;
    let data: Vec<f64> = buf.iter().map(|&b| b as f64 / 255.0).collect();
    Ok(Matrix::from_vec(n, d, data))
}

/// Parses an IDX label tensor.
///
/// # Errors
///
/// See [`read_idx_images`].
pub fn read_idx_labels<R: Read>(mut reader: R) -> Result<Vec<u8>> {
    let magic = read_u32(&mut reader)?;
    if magic != MAGIC_LABELS {
        return Err(DataError::Format {
            reason: format!("bad label magic 0x{magic:08x}"),
        });
    }
    let n = read_u32(&mut reader)? as usize;
    let mut buf = vec![0u8; n];
    reader.read_exact(&mut buf).map_err(|e| DataError::Format {
        reason: format!("truncated label payload: {e}"),
    })?;
    Ok(buf)
}

/// Loads `train-images-idx3-ubyte` from `dir`.
///
/// # Errors
///
/// I/O and format errors as in [`read_idx_images`].
pub fn load_mnist_train_images<P: AsRef<Path>>(dir: P) -> Result<Matrix> {
    let path = dir.as_ref().join("train-images-idx3-ubyte");
    let file = std::fs::File::open(path)?;
    read_idx_images(std::io::BufReader::new(file))
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_be_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_bytes(n: u32, rows: u32, cols: u32, payload: &[u8]) -> Vec<u8> {
        let mut v = Vec::new();
        v.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        v.extend_from_slice(&n.to_be_bytes());
        v.extend_from_slice(&rows.to_be_bytes());
        v.extend_from_slice(&cols.to_be_bytes());
        v.extend_from_slice(payload);
        v
    }

    #[test]
    fn parses_images() {
        let payload: Vec<u8> = (0..12).map(|i| (i * 20) as u8).collect();
        let bytes = image_bytes(3, 2, 2, &payload);
        let m = read_idx_images(&bytes[..]).unwrap();
        assert_eq!(m.shape(), (3, 4));
        assert!((m[(0, 1)] - 20.0 / 255.0).abs() < 1e-12);
        assert!(m.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = image_bytes(1, 1, 1, &[0]);
        bytes[3] = 0x99;
        assert!(matches!(
            read_idx_images(&bytes[..]),
            Err(DataError::Format { .. })
        ));
    }

    #[test]
    fn rejects_truncated_payload() {
        let bytes = image_bytes(2, 2, 2, &[0u8; 5]); // needs 8
        assert!(matches!(
            read_idx_images(&bytes[..]),
            Err(DataError::Format { .. })
        ));
    }

    #[test]
    fn parses_labels() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LABELS.to_be_bytes());
        bytes.extend_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(&[7, 0, 9, 3]);
        assert_eq!(read_idx_labels(&bytes[..]).unwrap(), vec![7, 0, 9, 3]);
    }

    #[test]
    fn label_magic_checked() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_IMAGES.to_be_bytes());
        bytes.extend_from_slice(&1u32.to_be_bytes());
        bytes.push(0);
        assert!(read_idx_labels(&bytes[..]).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            load_mnist_train_images("/definitely/not/a/dir"),
            Err(DataError::Io(_))
        ));
    }

    #[test]
    fn load_from_disk_roundtrip() {
        let dir = std::env::temp_dir().join("ekm_idx_test");
        std::fs::create_dir_all(&dir).unwrap();
        let payload: Vec<u8> = (0..8).map(|i| i as u8).collect();
        std::fs::write(
            dir.join("train-images-idx3-ubyte"),
            image_bytes(2, 2, 2, &payload),
        )
        .unwrap();
        let m = load_mnist_train_images(&dir).unwrap();
        assert_eq!(m.shape(), (2, 4));
        std::fs::remove_dir_all(&dir).ok();
    }
}
