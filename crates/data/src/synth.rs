//! Seeded Gaussian-mixture workload generation.

use crate::{DataError, Result};
use ekm_linalg::random::{derive_seed, fill_standard_normal, rng_from_seed};
use ekm_linalg::Matrix;
use rand::Rng;

/// A labeled synthetic dataset.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// The points (rows).
    pub points: Matrix,
    /// Ground-truth component index per point.
    pub labels: Vec<usize>,
}

/// Specification of a spherical Gaussian mixture.
///
/// # Example
///
/// ```
/// use ekm_data::synth::GaussianMixture;
///
/// let ds = GaussianMixture::new(300, 8, 3)
///     .with_separation(10.0)
///     .with_cluster_std(0.5)
///     .with_seed(7)
///     .generate()
///     .unwrap();
/// assert_eq!(ds.points.shape(), (300, 8));
/// assert_eq!(ds.labels.len(), 300);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    n: usize,
    d: usize,
    k: usize,
    separation: f64,
    cluster_std: f64,
    seed: u64,
}

impl GaussianMixture {
    /// Creates a mixture spec with `n` points, `d` dimensions, `k`
    /// components, separation 8, cluster std 1, seed 0.
    pub fn new(n: usize, d: usize, k: usize) -> Self {
        GaussianMixture {
            n,
            d,
            k,
            separation: 8.0,
            cluster_std: 1.0,
            seed: 0,
        }
    }

    /// Distance scale between component means.
    pub fn with_separation(mut self, separation: f64) -> Self {
        self.separation = separation;
        self
    }

    /// Standard deviation of each spherical component.
    pub fn with_cluster_std(mut self, std: f64) -> Self {
        self.cluster_std = std;
        self
    }

    /// RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for zero `n`, `d`, or `k`,
    /// or negative scales.
    pub fn generate(&self) -> Result<LabeledDataset> {
        if self.n == 0 || self.d == 0 || self.k == 0 {
            return Err(DataError::InvalidParameter {
                name: "n/d/k",
                reason: "must be positive",
            });
        }
        if self.separation < 0.0 || self.cluster_std < 0.0 {
            return Err(DataError::InvalidParameter {
                name: "separation/cluster_std",
                reason: "must be nonnegative",
            });
        }
        // Component means: random Gaussian directions scaled by separation.
        let mut mean_rng = rng_from_seed(derive_seed(self.seed, 1));
        let mut means = Matrix::zeros(self.k, self.d);
        fill_standard_normal(&mut mean_rng, means.as_mut_slice());
        means.scale_mut(self.separation / (self.d as f64).sqrt());

        let mut rng = rng_from_seed(derive_seed(self.seed, 2));
        let mut points = Matrix::zeros(self.n, self.d);
        fill_standard_normal(&mut rng, points.as_mut_slice());
        points.scale_mut(self.cluster_std);

        let mut label_rng = rng_from_seed(derive_seed(self.seed, 3));
        let mut labels = Vec::with_capacity(self.n);
        for i in 0..self.n {
            let c = label_rng.gen_range(0..self.k);
            labels.push(c);
            let mean_row = means.row(c).to_vec();
            let row = points.row_mut(i);
            for (x, m) in row.iter_mut().zip(mean_row) {
                *x += m;
            }
        }
        Ok(LabeledDataset { points, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::kmeans::KMeans;

    #[test]
    fn shape_and_labels() {
        let ds = GaussianMixture::new(100, 5, 4)
            .with_seed(1)
            .generate()
            .unwrap();
        assert_eq!(ds.points.shape(), (100, 5));
        assert_eq!(ds.labels.len(), 100);
        assert!(ds.labels.iter().all(|&l| l < 4));
        // All components used with overwhelming probability.
        let mut seen = [false; 4];
        for &l in &ds.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GaussianMixture::new(50, 3, 2)
            .with_seed(9)
            .generate()
            .unwrap();
        let b = GaussianMixture::new(50, 3, 2)
            .with_seed(9)
            .generate()
            .unwrap();
        assert!(a.points.approx_eq(&b.points, 0.0));
        assert_eq!(a.labels, b.labels);
        let c = GaussianMixture::new(50, 3, 2)
            .with_seed(10)
            .generate()
            .unwrap();
        assert!(!a.points.approx_eq(&c.points, 1e-9));
    }

    #[test]
    fn well_separated_mixture_is_clusterable() {
        let ds = GaussianMixture::new(600, 10, 3)
            .with_separation(40.0)
            .with_cluster_std(0.5)
            .with_seed(3)
            .generate()
            .unwrap();
        let model = KMeans::new(3)
            .with_seed(1)
            .with_n_init(5)
            .fit(&ds.points)
            .unwrap();
        // k-means labels must refine the ground truth: points sharing a
        // ground-truth label share a k-means label.
        let mut map = [usize::MAX; 3];
        let mut agree = 0;
        for (i, &g) in ds.labels.iter().enumerate() {
            if map[g] == usize::MAX {
                map[g] = model.labels[i];
            }
            if map[g] == model.labels[i] {
                agree += 1;
            }
        }
        let frac = agree as f64 / 600.0;
        assert!(frac > 0.98, "cluster agreement {frac}");
    }

    #[test]
    fn cluster_std_controls_spread() {
        let tight = GaussianMixture::new(400, 6, 1)
            .with_cluster_std(0.1)
            .with_seed(4)
            .generate()
            .unwrap();
        let wide = GaussianMixture::new(400, 6, 1)
            .with_cluster_std(5.0)
            .with_seed(4)
            .generate()
            .unwrap();
        let spread = |m: &Matrix| {
            let mean = m.mean_row();
            let mut c = m.clone();
            c.sub_row_vector_mut(&mean);
            c.frobenius_norm_sq() / m.rows() as f64
        };
        assert!(spread(&wide.points) > 100.0 * spread(&tight.points));
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(GaussianMixture::new(0, 2, 1).generate().is_err());
        assert!(GaussianMixture::new(2, 0, 1).generate().is_err());
        assert!(GaussianMixture::new(2, 2, 0).generate().is_err());
        assert!(GaussianMixture::new(2, 2, 1)
            .with_separation(-1.0)
            .generate()
            .is_err());
    }
}
