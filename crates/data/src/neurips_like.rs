//! Synthetic NeurIPS-papers-like word-count dataset.
//!
//! Stand-in for the "NeurIPS Conference Papers 1987–2015" dataset used by
//! the paper: 11463 instances (words) with 5812 attributes (papers), i.e.
//! rows are words and columns are papers, entries are counts. The key
//! properties the experiments rely on are:
//!
//! * very high dimensionality with `d ≫ log n` (the regime where
//!   JL-augmented algorithms shine, Table 2 discussion);
//! * sparse, heavy-tailed (Zipfian) counts;
//! * low-rank topic structure (words cluster by topic).
//!
//! The generator draws per-word Zipf base frequencies, assigns each word a
//! topic, gives each paper a topic mixture, and emits counts
//! `c_ij ≈ Zipf(i) · affinity(topic(word i), mixture(paper j)) · noise`,
//! sparsified by a Bernoulli mask.

use crate::synth::LabeledDataset;
use crate::{DataError, Result};
use ekm_linalg::random::{derive_seed, rng_from_seed};
use ekm_linalg::Matrix;
use rand::Rng;

/// The paper-scale configuration: 11463 words × 5812 papers.
pub fn paper_scale() -> NeurIpsLike {
    NeurIpsLike::new(11_463, 5_812)
}

/// Builder for the synthetic word-count dataset.
///
/// # Example
///
/// ```
/// use ekm_data::neurips_like::NeurIpsLike;
///
/// let ds = NeurIpsLike::new(300, 120).with_seed(3).generate().unwrap();
/// assert_eq!(ds.points.shape(), (300, 120));
/// // Counts are nonnegative and mostly zero (sparse).
/// let zeros = ds.points.as_slice().iter().filter(|&&v| v == 0.0).count();
/// assert!(zeros > 300 * 120 / 2);
/// ```
#[derive(Debug, Clone)]
pub struct NeurIpsLike {
    n_words: usize,
    n_papers: usize,
    n_topics: usize,
    density: f64,
    seed: u64,
}

impl NeurIpsLike {
    /// Creates a generator for `n_words × n_papers` counts with 12 topics
    /// and ~6% density.
    pub fn new(n_words: usize, n_papers: usize) -> Self {
        NeurIpsLike {
            n_words,
            n_papers,
            n_topics: 12,
            density: 0.06,
            seed: 0,
        }
    }

    /// Number of latent topics (word clusters).
    pub fn with_topics(mut self, n_topics: usize) -> Self {
        self.n_topics = n_topics.max(1);
        self
    }

    /// Expected fraction of nonzero entries.
    pub fn with_density(mut self, density: f64) -> Self {
        self.density = density;
        self
    }

    /// RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the dataset; labels are the ground-truth word topics.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for empty shapes or a
    /// density outside `(0, 1]`.
    pub fn generate(&self) -> Result<LabeledDataset> {
        if self.n_words == 0 || self.n_papers == 0 {
            return Err(DataError::InvalidParameter {
                name: "n_words/n_papers",
                reason: "must be positive",
            });
        }
        if !(self.density > 0.0 && self.density <= 1.0) {
            return Err(DataError::InvalidParameter {
                name: "density",
                reason: "must lie in (0, 1]",
            });
        }
        let t = self.n_topics;

        // Paper topic mixtures: each paper has one dominant topic plus a
        // uniform background.
        let mut paper_rng = rng_from_seed(derive_seed(self.seed, 1));
        let paper_topic: Vec<usize> = (0..self.n_papers)
            .map(|_| paper_rng.gen_range(0..t))
            .collect();

        let mut rng = rng_from_seed(derive_seed(self.seed, 2));
        let mut points = Matrix::zeros(self.n_words, self.n_papers);
        let mut labels = Vec::with_capacity(self.n_words);
        for w in 0..self.n_words {
            // Zipfian base frequency by rank.
            let base = 60.0 / ((w + 2) as f64).powf(0.85);
            let topic = rng.gen_range(0..t);
            labels.push(topic);
            let row = points.row_mut(w);
            for (j, x) in row.iter_mut().enumerate() {
                if rng.gen::<f64>() >= self.density {
                    continue;
                }
                // Words appear ~2.5× more often in papers of their topic
                // (real word-count data is only weakly clusterable at
                // k = 2: most variance is Zipf frequency, not topic).
                let affinity = if paper_topic[j] == topic { 2.5 } else { 1.0 };
                let lambda = base * affinity * (0.5 + rng.gen::<f64>());
                *x = lambda.round().max(1.0);
            }
        }
        Ok(LabeledDataset { points, labels })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_sparsity_nonnegativity() {
        let ds = NeurIpsLike::new(400, 150).with_seed(1).generate().unwrap();
        assert_eq!(ds.points.shape(), (400, 150));
        assert!(ds.points.as_slice().iter().all(|&v| v >= 0.0));
        let nnz = ds.points.as_slice().iter().filter(|&&v| v > 0.0).count();
        let density = nnz as f64 / (400.0 * 150.0);
        assert!((density - 0.06).abs() < 0.02, "density {density}");
    }

    #[test]
    fn counts_are_integers() {
        let ds = NeurIpsLike::new(100, 50).with_seed(2).generate().unwrap();
        assert!(ds
            .points
            .as_slice()
            .iter()
            .all(|&v| (v - v.round()).abs() < 1e-12));
    }

    #[test]
    fn zipf_head_words_heavier() {
        let ds = NeurIpsLike::new(1000, 100).with_seed(3).generate().unwrap();
        let head: f64 = (0..50).map(|i| ds.points.row(i).iter().sum::<f64>()).sum();
        let tail: f64 = (950..1000)
            .map(|i| ds.points.row(i).iter().sum::<f64>())
            .sum();
        assert!(head > 5.0 * tail, "head {head} vs tail {tail}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = NeurIpsLike::new(100, 40).with_seed(9).generate().unwrap();
        let b = NeurIpsLike::new(100, 40).with_seed(9).generate().unwrap();
        assert!(a.points.approx_eq(&b.points, 0.0));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn topic_structure_visible_in_counts() {
        // Words of the same topic should co-occur in the same papers more
        // than words of different topics: compare within-topic vs
        // cross-topic row correlations via dot products.
        let ds = NeurIpsLike::new(300, 200)
            .with_topics(4)
            .with_density(0.3)
            .with_seed(4)
            .generate()
            .unwrap();
        let mut same = (0.0, 0usize);
        let mut diff = (0.0, 0usize);
        for a in (0..250).step_by(7) {
            for b in (a + 1..300).step_by(11) {
                // Skip the Zipf head so frequency differences don't mask
                // the topic signal.
                if a < 20 || b < 20 {
                    continue;
                }
                let na = ekm_linalg::ops::norm(ds.points.row(a));
                let nb = ekm_linalg::ops::norm(ds.points.row(b));
                if na == 0.0 || nb == 0.0 {
                    continue;
                }
                let cos = ekm_linalg::ops::dot(ds.points.row(a), ds.points.row(b)) / (na * nb);
                if ds.labels[a] == ds.labels[b] {
                    same.0 += cos;
                    same.1 += 1;
                } else {
                    diff.0 += cos;
                    diff.1 += 1;
                }
            }
        }
        let same_mean = same.0 / same.1 as f64;
        let diff_mean = diff.0 / diff.1 as f64;
        assert!(
            same_mean > diff_mean + 0.02,
            "within-topic {same_mean} vs cross-topic {diff_mean}"
        );
    }

    #[test]
    fn paper_scale_shape() {
        let g = paper_scale();
        let tiny = NeurIpsLike {
            n_words: 10,
            n_papers: 5,
            ..g
        };
        assert!(tiny.generate().is_ok());
    }

    #[test]
    fn invalid_parameters_error() {
        assert!(NeurIpsLike::new(0, 5).generate().is_err());
        assert!(NeurIpsLike::new(5, 0).generate().is_err());
        assert!(NeurIpsLike::new(5, 5).with_density(0.0).generate().is_err());
        assert!(NeurIpsLike::new(5, 5).with_density(1.5).generate().is_err());
    }
}
