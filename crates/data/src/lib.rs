//! Workload datasets for the `edge-kmeans` experiments.
//!
//! The paper evaluates on MNIST (60000×784 images) and the NeurIPS
//! 1987–2015 word-count dataset (11463 words × 5812 papers), both
//! normalized to `[-1, 1]` with zero mean and, in the multi-source case,
//! randomly partitioned across 10 data sources (§7.1).
//!
//! Neither dataset ships with this repository, so [`mnist_like`] and
//! [`neurips_like`] provide seeded synthetic stand-ins matching the
//! originals' cardinality, dimensionality, value range, and cluster
//! structure (see DESIGN.md "Substitutions" for why that preserves the
//! evaluated behaviour). A real-MNIST [`idx`] loader is included and used
//! by the harness when `EKM_MNIST_DIR` points at the IDX files.
//!
//! * [`synth`] — general seeded Gaussian-mixture workloads;
//! * [`mnist_like`] — 10-prototype image-like blobs on a pixel grid;
//! * [`neurips_like`] — sparse Zipf word counts with topic structure;
//! * [`normalize`] — the paper's zero-mean `[-1,1]` normalization;
//! * [`partition`] — random splitting across `m` data sources;
//! * [`idx`] — the MNIST IDX binary format.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod idx;
pub mod mnist_like;
pub mod neurips_like;
pub mod normalize;
pub mod partition;
pub mod synth;

pub use error::DataError;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
