//! The paper's dataset normalization (§7.1): zero mean, values in
//! `[-1, 1]`.

use ekm_linalg::Matrix;

/// Parameters of a fitted normalization (kept so summaries can be mapped
/// back to raw units if needed).
#[derive(Debug, Clone, PartialEq)]
pub struct Normalization {
    /// Column means subtracted from the data.
    pub mean: Vec<f64>,
    /// The single positive scale the centered data was divided by.
    pub scale: f64,
}

/// Normalizes `data` the way the paper does: subtract the (column) mean,
/// then divide by the largest absolute value so every entry lies in
/// `[-1, 1]` with exact zero column means.
///
/// Constant datasets (all rows equal) come back as all zeros with
/// `scale = 1`.
///
/// # Example
///
/// ```
/// use ekm_linalg::Matrix;
/// use ekm_data::normalize::normalize_paper;
///
/// let raw = Matrix::from_rows(&[vec![0.0, 10.0], vec![4.0, 30.0]]);
/// let (norm, info) = normalize_paper(&raw);
/// assert!(norm.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
/// assert_eq!(info.mean, vec![2.0, 20.0]);
/// ```
pub fn normalize_paper(data: &Matrix) -> (Matrix, Normalization) {
    if data.rows() == 0 {
        return (
            data.clone(),
            Normalization {
                mean: vec![0.0; data.cols()],
                scale: 1.0,
            },
        );
    }
    let mean = data.mean_row();
    let mut centered = data.clone();
    centered.sub_row_vector_mut(&mean);
    let max_abs = centered
        .as_slice()
        .iter()
        .fold(0.0f64, |acc, v| acc.max(v.abs()));
    let scale = if max_abs > 0.0 { max_abs } else { 1.0 };
    centered.scale_mut(1.0 / scale);
    (centered, Normalization { mean, scale })
}

impl Normalization {
    /// Maps normalized points back to raw units: `x·scale + mean`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree with the fitted means.
    pub fn denormalize(&self, points: &Matrix) -> Matrix {
        assert_eq!(points.cols(), self.mean.len(), "dimension mismatch");
        let mut out = points.scaled(self.scale);
        for i in 0..out.rows() {
            let row = out.row_mut(i);
            for (x, &m) in row.iter_mut().zip(&self.mean) {
                *x += m;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_mean_and_unit_range() {
        let raw = Matrix::from_fn(50, 6, |i, j| ((i * 7 + j * 13) % 23) as f64 - 5.0);
        let (norm, _) = normalize_paper(&raw);
        let mean = norm.mean_row();
        assert!(mean.iter().all(|m| m.abs() < 1e-12), "means {mean:?}");
        let max = norm.as_slice().iter().fold(0.0f64, |a, v| a.max(v.abs()));
        assert!((max - 1.0).abs() < 1e-12, "max |v| = {max}");
    }

    #[test]
    fn denormalize_roundtrips() {
        let raw = Matrix::from_fn(20, 4, |i, j| (i as f64) * 2.5 - (j as f64) * 0.75 + 3.0);
        let (norm, info) = normalize_paper(&raw);
        let back = info.denormalize(&norm);
        assert!(back.approx_eq(&raw, 1e-9));
    }

    #[test]
    fn constant_dataset_becomes_zero() {
        let raw = Matrix::filled(5, 3, 7.5);
        let (norm, info) = normalize_paper(&raw);
        assert!(norm.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(info.scale, 1.0);
        assert_eq!(info.mean, vec![7.5, 7.5, 7.5]);
    }

    #[test]
    fn empty_dataset_passes_through() {
        let raw = Matrix::zeros(0, 4);
        let (norm, info) = normalize_paper(&raw);
        assert_eq!(norm.shape(), (0, 4));
        assert_eq!(info.scale, 1.0);
    }

    #[test]
    fn preserves_cluster_separation_order() {
        // Normalization is affine, so relative distances are preserved.
        let raw = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![100.0]]);
        let (norm, _) = normalize_paper(&raw);
        let d01 = (norm[(0, 0)] - norm[(1, 0)]).abs();
        let d02 = (norm[(0, 0)] - norm[(2, 0)]).abs();
        assert!(d02 > 50.0 * d01);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn denormalize_checks_dims() {
        let (_, info) = normalize_paper(&Matrix::zeros(2, 3));
        let _ = info.denormalize(&Matrix::zeros(2, 4));
    }
}
