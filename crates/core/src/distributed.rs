//! Multi-data-source pipelines (paper §5 and the §6 quantized variants).
//!
//! * [`dispca`] — distributed PCA \[11\]/\[35\]: each source sends its
//!   top-`t1` local SVD summary `(Σ_i^{(t1)}, V_i^{(t1)})`; the server
//!   stacks `Y = [Σ_1V_1ᵀ; …; Σ_mV_mᵀ]`, computes a global SVD, and
//!   broadcasts the top-`t2` right singular vectors back.
//! * [`disss`] — distributed sensitivity sampling \[4\]: sources report
//!   local bicriteria costs, the server allocates the global sample budget
//!   proportionally, sources reply with D²-sampled points plus their
//!   bicriteria centers, weighted to match per-cluster counts.
//! * [`Bklw`] — the state-of-the-art baseline \[27\]: disPCA + disSS.
//! * [`JlBklw`] — **Algorithm 4**: every source applies the shared-seed JL
//!   projection first, shrinking the disPCA summaries from `O(kd/ε²)` to
//!   `O(k·log n/ε⁴)` per source (Theorem 5.4).
//!
//! Per-source work in both protocols (local SVDs, bicriteria, sampling,
//! and the transmissions themselves) executes concurrently on
//! `std::thread::scope` workers, each charging an independent
//! [`ekm_net::network::SourceLink`] merged back at the phase barrier —
//! results and accounting are bit-identical to sequential execution.
//! The named pipelines are canned stage lists over the generic
//! [`StagePipeline`] engine, exactly like their centralized siblings.

use crate::complexity;
use crate::engine::{par_map, par_map_sources, StagePipeline};
use crate::params::SummaryParams;
use crate::pipelines::{expect_coreset, quantize_for_wire};
use crate::stage::Stage;
use crate::{CoreError, Result, RunOutput};
use ekm_clustering::bicriteria::{bicriteria, BicriteriaConfig};
use ekm_clustering::cost::assign_with;
use ekm_coreset::Coreset;
use ekm_linalg::random::{derive_seed, rng_from_seed, sample_weighted_indices};
use ekm_linalg::{ops, svd, Matrix};
use ekm_net::messages::Message;
use ekm_net::wire::{Compute, Precision};
use ekm_net::{Network, Transport, TransportLink};
use std::borrow::Borrow;
use std::time::Instant;

/// A pipeline in the multi-data-source (distributed) setting.
pub trait DistributedPipeline {
    /// Human-readable name matching the paper's legends.
    fn name(&self) -> String;

    /// Runs the protocol over the shards (one per data source, rows are
    /// points; all shards share a dimensionality).
    ///
    /// # Errors
    ///
    /// Propagates configuration, numeric, and protocol failures.
    fn run(&self, shards: &[Matrix], net: &mut Network) -> Result<RunOutput>;
}

impl DistributedPipeline for StagePipeline {
    fn name(&self) -> String {
        StagePipeline::name(self)
    }

    fn run(&self, shards: &[Matrix], net: &mut Network) -> Result<RunOutput> {
        StagePipeline::run_shards(self, shards, net)
    }
}

/// Output of the disPCA protocol.
#[derive(Debug, Clone)]
pub struct DisPcaOutput {
    /// The global top-`t2` right singular vectors (`d × t2`), held by the
    /// server and broadcast to the sources.
    pub basis: Matrix,
    /// The basis as the sources decoded it from the wire (identical to
    /// `basis` at full precision; the rounded copy at F32) — what the
    /// data holders actually possess after the broadcast.
    pub decoded_basis: Matrix,
    /// Per-source coordinates of the projected data (`n_i × t2`).
    pub coords: Vec<Matrix>,
    /// Max per-source compute seconds.
    pub source_seconds: f64,
    /// Server compute seconds.
    pub server_seconds: f64,
    /// Deterministic per-source operation count (max over sources per
    /// phase, summed over phases).
    pub source_ops: u64,
}

/// Computes the top-`t` local SVD summary `(σ, V)` of one shard.
///
/// Always the exact (Gram) SVD: disPCA step 1 is "each data source
/// computes local SVD `A_Pi = U_iΣ_iV_iᵀ`", and BKLW's
/// `O(nd·min(n,d))` complexity (Theorem 5.3) comes precisely from this
/// step — swapping in a randomized SVD would erase the complexity
/// separation from Algorithm 4 that the paper measures.
pub(crate) fn local_svd_summary(data: &Matrix, t: usize) -> Result<(Vec<f64>, Matrix)> {
    let max_rank = data.rows().min(data.cols());
    let t = t.min(max_rank);
    let s = svd::thin_svd(data)?.truncate(t)?;
    Ok((s.singular_values, s.v))
}

/// The canonical `next_2_power` pairwise merge schedule over `m` leaves:
/// level `ℓ` merges position `i + 2^ℓ` into position `i` for every `i`
/// that is a multiple of `2^(ℓ+1)`, giving `ceil(log2 m)` levels with the
/// root at position 0. The schedule is order-preserving — folding
/// concatenative summaries along it yields exactly the position-order
/// concatenation — and it is shared verbatim by the simulation reference
/// fold, the star driver fold, and the tree driver, which is what makes
/// the three bit-identical.
pub fn merge_schedule(m: usize) -> Vec<Vec<(usize, usize)>> {
    let mut levels = Vec::new();
    let mut stride = 1;
    while stride < m {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < m {
            if i + stride < m {
                pairs.push((i, i + stride));
            }
            i += 2 * stride;
        }
        levels.push(pairs);
        stride *= 2;
    }
    levels
}

/// `Σ Vᵀ` of one summary — the (rank × d) block disPCA stacks.
fn scaled_stack(sv: &[f64], v: &Matrix) -> Matrix {
    let mut scaled = v.clone();
    for r in 0..scaled.rows() {
        let row = scaled.row_mut(r);
        for (x, s) in row.iter_mut().zip(sv) {
            *x *= s;
        }
    }
    scaled.transpose()
}

/// Passes a summary through its wire encoding at `precision`, returning
/// exactly what a receiver would decode. Every merge output is
/// roundtripped so that a summary computed at a source and shipped one
/// hop equals the same summary computed server-side — the roundtrip is
/// idempotent, so re-encoding for the next hop changes nothing.
fn wire_roundtrip_summary(
    singular_values: Vec<f64>,
    basis: Matrix,
    precision: Precision,
) -> Result<(Vec<f64>, Matrix)> {
    let msg = Message::SvdSummary {
        singular_values,
        basis,
        precision,
    };
    let (buf, bits) = msg.encode();
    match Message::decode(&buf, bits)? {
        Message::SvdSummary {
            singular_values,
            basis,
            ..
        } => Ok((singular_values, basis)),
        _ => Err(CoreError::Protocol {
            reason: "svd summary roundtrip changed kind",
        }),
    }
}

/// The canonical pairwise disPCA merge: stacks `[Σ_aV_aᵀ; Σ_bV_bᵀ]`,
/// takes the thin SVD truncated to rank `t`, and roundtrips the result
/// through its wire encoding. Used identically by the server-side fold
/// and by tree-mode executors merging a peer's summary.
pub(crate) fn dispca_merge_pair(
    a: &(Vec<f64>, Matrix),
    b: &(Vec<f64>, Matrix),
    t: usize,
    precision: Precision,
) -> Result<(Vec<f64>, Matrix)> {
    let y = scaled_stack(&a.0, &a.1).vstack(&scaled_stack(&b.0, &b.1))?;
    let rank = t.min(y.rows().min(y.cols()));
    let s = svd::thin_svd(&y)?.truncate(rank)?;
    wire_roundtrip_summary(s.singular_values, s.v, precision)
}

/// Folds the summaries along [`merge_schedule`] down to a single summary.
pub(crate) fn dispca_fold(
    summaries: &[(Vec<f64>, Matrix)],
    t: usize,
    precision: Precision,
) -> Result<(Vec<f64>, Matrix)> {
    let mut slots: Vec<Option<(Vec<f64>, Matrix)>> = summaries.iter().cloned().map(Some).collect();
    for level in merge_schedule(slots.len()) {
        for (i, j) in level {
            let (a, b) = (slots[i].take(), slots[j].take());
            if let (Some(a), Some(b)) = (a, b) {
                slots[i] = Some(dispca_merge_pair(&a, &b, t, precision)?);
            }
        }
    }
    slots
        .into_iter()
        .next()
        .flatten()
        .ok_or(CoreError::Protocol {
            reason: "disPCA fold of zero summaries",
        })
}

/// disPCA step 2, the server-side fold: pairwise-merges the summaries
/// along the canonical [`merge_schedule`], then finalizes the single
/// folded summary — stack `ΣVᵀ` and take the global top-`t` right
/// singular vectors. One function, shared by the in-process engine and
/// the star driver; the tree driver performs the same pairwise merges at
/// the sources and hands the server the already-folded root, so all
/// three execution models are bit-identical by construction.
pub(crate) fn dispca_global_basis(
    summaries: &[(Vec<f64>, Matrix)],
    t: usize,
    precision: Precision,
) -> Result<Matrix> {
    let (sv, v) = dispca_fold(summaries, t, precision)?;
    let y = scaled_stack(&sv, &v);
    let global_rank = t.min(y.rows().min(y.cols()));
    Ok(svd::thin_svd(&y)?.truncate(global_rank)?.v)
}

/// Merges two encoded-and-decoded summary messages of the same kind —
/// the executor-side counterpart of the server's fold step. SVD
/// summaries merge through [`dispca_merge_pair`] (rank `t`); coresets
/// and raw blocks concatenate in order, exactly matching the server's
/// source-order `vstack`/`Coreset::merge`.
pub(crate) fn merge_summary_messages(
    a: Message,
    b: Message,
    t: usize,
    precision: Precision,
) -> Result<Message> {
    match (a, b) {
        (
            Message::SvdSummary {
                singular_values: sva,
                basis: va,
                ..
            },
            Message::SvdSummary {
                singular_values: svb,
                basis: vb,
                ..
            },
        ) => {
            let (singular_values, basis) = dispca_merge_pair(&(sva, va), &(svb, vb), t, precision)?;
            Ok(Message::SvdSummary {
                singular_values,
                basis,
                precision,
            })
        }
        (
            Message::Coreset {
                points: pa,
                weights: mut wa,
                delta: da,
                precision: prec,
                weights_precision,
            },
            Message::Coreset {
                points: pb,
                weights: wb,
                delta: db,
                ..
            },
        ) => {
            wa.extend_from_slice(&wb);
            Ok(Message::Coreset {
                points: pa.vstack(&pb)?,
                weights: wa,
                delta: da + db,
                precision: prec,
                weights_precision,
            })
        }
        (Message::RawData { points: pa }, Message::RawData { points: pb }) => {
            Ok(Message::RawData {
                points: pa.vstack(&pb)?,
            })
        }
        _ => Err(CoreError::Protocol {
            reason: "mismatched summary kinds in pairwise merge",
        }),
    }
}

/// disSS step 1, the source-local bicriteria solution for source `i`
/// (seed stream `100 + i` of the protocol seed).
pub(crate) fn disss_local_bicriteria(
    shard: &Matrix,
    k: usize,
    seed: u64,
    i: usize,
    compute: Compute,
) -> Result<ekm_clustering::bicriteria::BicriteriaSolution> {
    let w = vec![1.0; shard.rows()];
    bicriteria(
        shard,
        &w,
        k,
        &BicriteriaConfig {
            seed: derive_seed(seed, 100 + i as u64),
            compute,
            ..BicriteriaConfig::default()
        },
    )
    .map_err(CoreError::Clustering)
}

/// disSS step 2, the server-side budget allocation: proportional to the
/// reported costs, rounded per source.
pub(crate) fn disss_allocations(costs: &[f64], sample_size: usize) -> Vec<usize> {
    let total_cost: f64 = costs.iter().sum();
    if total_cost > 0.0 {
        costs
            .iter()
            .map(|c| ((sample_size as f64) * c / total_cost).round() as usize)
            .collect()
    } else {
        vec![0; costs.len()]
    }
}

/// disSS step 3, the source-local sample construction for source `i`:
/// D²-samples `s_i` points against the bicriteria solution, weights them
/// (with the overshoot-safe per-cluster scheme), appends the bicriteria
/// centers, and builds the (possibly quantized) coreset message exactly
/// as it goes on the wire.
#[allow(clippy::too_many_arguments)]
pub(crate) fn disss_local_sample(
    shard: &Matrix,
    bic: &ekm_clustering::bicriteria::BicriteriaSolution,
    s_i: usize,
    seed: u64,
    i: usize,
    quantizer: Option<&ekm_quant::RoundingQuantizer>,
    precision: Precision,
    compute: Compute,
) -> Result<Message> {
    let a = assign_with(shard, &bic.centers, compute)?;
    let n_clusters = bic.centers.rows();
    let cluster_sizes: Vec<f64> = {
        let sizes = a.cluster_sizes(n_clusters);
        sizes.iter().map(|&s| s as f64).collect()
    };

    // D² sampling ∝ cost({p}, X_i); weight cost_i/(s_i·q(p)) =
    // (cost_total/s)·1/cost(p) by proportional allocation.
    let (mut points, mut weights) = if s_i > 0 && bic.cost > 0.0 {
        let mut rng = rng_from_seed(derive_seed(seed, 200 + i as u64));
        let drawn = sample_weighted_indices(&mut rng, &a.distances_sq, s_i);
        let pts = shard.select_rows(&drawn);
        let w: Vec<f64> = drawn
            .iter()
            .map(|&p| bic.cost / (s_i as f64 * a.distances_sq[p]))
            .collect();
        (pts, w)
    } else {
        (Matrix::zeros(0, shard.cols()), Vec::new())
    };

    // Bicriteria centers weighted to match per-cluster point counts
    // (with the same overshoot-safe scheme as the [4] sampler).
    let mut absorbed = vec![0.0f64; n_clusters];
    let labels_of_drawn: Vec<usize> = (0..points.rows())
        .map(|r| {
            // The sample's cluster is its nearest bicriteria center.
            ekm_clustering::cost::nearest_center(points.row(r), &bic.centers).0
        })
        .collect();
    for (r, &c) in labels_of_drawn.iter().enumerate() {
        absorbed[c] += weights[r];
    }
    let mut center_weights = vec![0.0f64; n_clusters];
    let mut scale = vec![1.0f64; n_clusters];
    for c in 0..n_clusters {
        if absorbed[c] > cluster_sizes[c] {
            scale[c] = cluster_sizes[c] / absorbed[c];
        } else {
            center_weights[c] = cluster_sizes[c] - absorbed[c];
        }
    }
    for (r, &c) in labels_of_drawn.iter().enumerate() {
        weights[r] *= scale[c];
    }
    points = points.vstack(&bic.centers)?;
    weights.extend(center_weights);

    let (wire_points, points_precision) = quantize_for_wire(&points, quantizer);
    Ok(Message::Coreset {
        points: wire_points,
        weights,
        delta: 0.0,
        precision: points_precision,
        weights_precision: precision,
    })
}

/// Runs the disPCA protocol (paper §5.1, Theorem 5.1) with `t1 = t2 = t`,
/// sources working concurrently.
///
/// # Errors
///
/// Propagates SVD and protocol failures; rejects empty shard lists.
pub fn dispca<T: Transport>(shards: &[Matrix], t: usize, net: &mut T) -> Result<DisPcaOutput> {
    dispca_opts(shards, t, net, true, Precision::Full)
}

/// [`dispca`] with explicit control over concurrent per-source execution
/// (results are bit-identical either way; sequential mode exists for
/// equivalence tests and debugging) and over the wire precision of the
/// SVD summaries and the broadcast basis ([`Precision::F32`] halves
/// them; the sources then project onto the basis exactly as decoded).
///
/// # Errors
///
/// See [`dispca`].
pub fn dispca_opts<S: Borrow<Matrix> + Sync, T: Transport>(
    shards: &[S],
    t: usize,
    net: &mut T,
    parallel: bool,
    precision: Precision,
) -> Result<DisPcaOutput> {
    if shards.is_empty() {
        return Err(CoreError::InvalidConfig {
            reason: "no shards",
        });
    }
    if shards.len() > net.sources() {
        return Err(CoreError::InvalidConfig {
            reason: "more shards than network sources",
        });
    }
    let d = shards[0].borrow().cols();
    if shards.iter().any(|s| s.borrow().cols() != d) {
        return Err(CoreError::InvalidConfig {
            reason: "shards disagree on dimensionality",
        });
    }

    let mut links = net.take_links(shards.len())?;

    // Step 1: local SVDs on concurrent workers, summaries uplinked
    // through each source's own link.
    let step1 = par_map_sources(shards, &mut links, parallel, |_i, shard, link| {
        let t0 = Instant::now();
        let (sv, v) = local_svd_summary(shard.borrow(), t)?;
        let secs = t0.elapsed().as_secs_f64();
        let msg = Message::SvdSummary {
            singular_values: sv,
            basis: v,
            precision,
        };
        match link.send_to_server(&msg)? {
            Message::SvdSummary {
                singular_values,
                basis,
                ..
            } => Ok(((singular_values, basis), secs)),
            _ => Err(CoreError::Protocol {
                reason: "expected svd summary",
            }),
        }
    })?;
    let mut source_seconds = 0.0f64;
    let mut summaries = Vec::with_capacity(step1.len());
    for (summary, secs) in step1 {
        source_seconds = source_seconds.max(secs);
        summaries.push(summary);
    }

    // Step 2: server stacks Y = [Σ_i V_iᵀ] and takes the global SVD.
    let t1 = Instant::now();
    let basis = dispca_global_basis(&summaries, t, precision)?; // d × t2
    let server_seconds = t1.elapsed().as_secs_f64();

    // Step 3: broadcast the basis; each source computes its coordinates
    // (concurrently — this is the `O(n_i·d·t)` projection). The sources
    // project onto the basis *as decoded from the wire* — at F32
    // precision that is the rounded basis, exactly what a real edge
    // device would hold.
    let mut decoded_basis = basis.clone();
    for link in &mut links {
        let received = link.recv_from_server(&Message::Basis {
            basis: basis.clone(),
            precision,
        })?;
        if let Message::Basis { basis: b, .. } = received {
            decoded_basis = b;
        }
    }
    let coords_timed = par_map(shards, parallel, |_i, shard| {
        let t2 = Instant::now();
        let c = ops::matmul(shard.borrow(), &decoded_basis)?;
        Ok((c, t2.elapsed().as_secs_f64()))
    })?;
    let mut post_seconds = 0.0f64;
    let coords = coords_timed
        .into_iter()
        .map(|(c, secs)| {
            post_seconds = post_seconds.max(secs);
            c
        })
        .collect();

    net.absorb_links(links);

    // Local SVD phase + projection phase, each the max over sources.
    let source_ops = shards
        .iter()
        .map(|s| complexity::svd(s.borrow().rows(), d))
        .max()
        .unwrap_or(0)
        + shards
            .iter()
            .map(|s| complexity::matmul(s.borrow().rows(), d, basis.cols()))
            .max()
            .unwrap_or(0);

    Ok(DisPcaOutput {
        basis,
        decoded_basis,
        coords,
        source_seconds: source_seconds + post_seconds,
        server_seconds,
        source_ops,
    })
}

/// Output of the disSS protocol.
#[derive(Debug, Clone)]
pub struct DisSsOutput {
    /// The union coreset assembled at the server (Δ = 0, Theorem 5.2).
    pub coreset: Coreset,
    /// Max per-source compute seconds.
    pub source_seconds: f64,
    /// Server compute seconds.
    pub server_seconds: f64,
    /// Deterministic per-source operation count (max over sources per
    /// phase, summed over phases).
    pub source_ops: u64,
}

/// Runs the disSS protocol (paper §5.1, Theorem 5.2) over per-source
/// datasets (typically disPCA coordinates), sources working concurrently.
///
/// `sample_size` is the *global* budget `s`; the optional quantizer is
/// applied to the transmitted sample points (the +QT variants of §6).
///
/// # Errors
///
/// Propagates clustering and protocol failures.
pub fn disss<T: Transport>(
    shard_points: &[Matrix],
    k: usize,
    sample_size: usize,
    seed: u64,
    quantizer: Option<&ekm_quant::RoundingQuantizer>,
    net: &mut T,
) -> Result<DisSsOutput> {
    disss_opts(
        shard_points,
        k,
        sample_size,
        seed,
        quantizer,
        net,
        true,
        Precision::Full,
        Compute::F64,
    )
}

/// [`disss`] with explicit control over concurrent per-source execution
/// (results are bit-identical either way) and over the wire precision of
/// the sample weights ([`Precision::F32`] halves that payload).
///
/// # Errors
///
/// See [`disss`].
#[allow(clippy::too_many_arguments)]
pub fn disss_opts<S: Borrow<Matrix> + Sync, T: Transport>(
    shard_points: &[S],
    k: usize,
    sample_size: usize,
    seed: u64,
    quantizer: Option<&ekm_quant::RoundingQuantizer>,
    net: &mut T,
    parallel: bool,
    precision: Precision,
    compute: Compute,
) -> Result<DisSsOutput> {
    if shard_points.is_empty() {
        return Err(CoreError::InvalidConfig {
            reason: "no shards",
        });
    }
    if sample_size == 0 {
        return Err(CoreError::InvalidConfig {
            reason: "zero disSS sample budget",
        });
    }
    let m = shard_points.len();
    if m > net.sources() {
        return Err(CoreError::InvalidConfig {
            reason: "more shards than network sources",
        });
    }
    let mut links = net.take_links(m)?;

    // Step 1: local bicriteria solutions + cost reports, concurrently.
    let step1 = par_map_sources(shard_points, &mut links, parallel, |i, shard, link| {
        let shard = shard.borrow();
        let t0 = Instant::now();
        let bic = disss_local_bicriteria(shard, k, seed, i, compute)?;
        let secs = t0.elapsed().as_secs_f64();
        let received = link.send_to_server(&Message::CostReport { cost: bic.cost })?;
        let cost = match received {
            Message::CostReport { cost } => cost,
            _ => {
                return Err(CoreError::Protocol {
                    reason: "expected cost report",
                })
            }
        };
        Ok((bic, cost, secs))
    })?;
    let mut source_seconds = 0.0f64;
    let mut local = Vec::with_capacity(m);
    let mut reported_costs = Vec::with_capacity(m);
    for (bic, cost, secs) in step1 {
        source_seconds = source_seconds.max(secs);
        reported_costs.push(cost);
        local.push(bic);
    }

    // Step 2: server allocates the budget proportionally to cost.
    let allocations = disss_allocations(&reported_costs, sample_size);
    for (link, &s_i) in links.iter_mut().zip(&allocations) {
        link.recv_from_server(&Message::SampleAllocation { size: s_i as u64 })?;
    }

    // Step 3: each source samples and reports S_i ∪ X_i with weights,
    // concurrently.
    let step3 = par_map_sources(shard_points, &mut links, parallel, |i, shard, link| {
        let shard = shard.borrow();
        let t0 = Instant::now();
        let msg = disss_local_sample(
            shard,
            &local[i],
            allocations[i],
            seed,
            i,
            quantizer,
            precision,
            compute,
        )?;
        let secs = t0.elapsed().as_secs_f64();
        let received = link.send_to_server(&msg)?;
        let (pts, w, delta) = expect_coreset(received)?;
        Ok((
            Coreset::new(pts, w, delta).map_err(CoreError::Coreset)?,
            secs,
        ))
    })?;
    let mut parts: Vec<Coreset> = Vec::with_capacity(m);
    for (part, secs) in step3 {
        source_seconds = source_seconds.max(secs);
        parts.push(part);
    }
    net.absorb_links(links);

    // Step 4: server merges.
    let t1 = Instant::now();
    let coreset = Coreset::merge(parts.iter()).map_err(CoreError::Coreset)?;
    let server_seconds = t1.elapsed().as_secs_f64();

    // Bicriteria phase + sample/assign phase, each the max over sources
    // (a source only quantizes its own allocated samples + centers).
    let d = shard_points[0].borrow().cols();
    let bicriteria_phase = shard_points
        .iter()
        .map(|s| complexity::bicriteria(s.borrow().rows(), d, k))
        .max()
        .unwrap_or(0);
    let sample_phase = shard_points
        .iter()
        .zip(&allocations)
        .map(|(s, &s_i)| {
            let quant = if quantizer.is_some() {
                complexity::quantize(s_i + k, d)
            } else {
                0
            };
            complexity::assign(s.borrow().rows(), d, k) + quant
        })
        .max()
        .unwrap_or(0);
    let source_ops = bicriteria_phase + sample_phase;

    Ok(DisSsOutput {
        coreset,
        source_seconds,
        server_seconds,
        source_ops,
    })
}

macro_rules! declare_distributed_pipeline {
    ($(#[$meta:meta])* $name:ident, $display:literal, [$($pre:expr),*], [$($post:expr),*]) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: StagePipeline,
        }

        impl $name {
            /// Creates the pipeline with the given parameters (a
            /// quantizer in `params` quantizes the disSS sample
            /// transmissions, the `+QT` variants of §6).
            pub fn new(params: SummaryParams) -> Self {
                let mut stages: Vec<Stage> = vec![$($pre),*];
                $(stages.push($post);)*
                stages.push(Stage::disss());
                // One shared rule (stage::with_default_qt) arms the QT
                // stage before disSS, where the wire quantization lands.
                let stages = crate::stage::with_default_qt(stages, &params);
                let display = if params.quantizer.is_some() {
                    concat!($display, "+QT").to_string()
                } else {
                    $display.to_string()
                };
                $name {
                    inner: StagePipeline::new(stages, params).with_name(display),
                }
            }

            /// The canned stage list as a reusable engine pipeline.
            pub fn into_stage_pipeline(self) -> StagePipeline {
                self.inner
            }
        }

        impl DistributedPipeline for $name {
            fn name(&self) -> String {
                self.inner.name()
            }

            fn run(&self, shards: &[Matrix], net: &mut Network) -> Result<RunOutput> {
                self.inner.run_shards(shards, net)
            }
        }
    };
}

declare_distributed_pipeline!(
    /// The BKLW baseline \[27\]: disPCA followed by disSS, k-means at the
    /// server on the union coreset, centers lifted through the global
    /// basis.
    Bklw,
    "BKLW",
    [Stage::dispca()],
    []
);

declare_distributed_pipeline!(
    /// **Algorithm 4** (JL+BKLW): shared-seed JL projection at every
    /// source, then BKLW in the projected space (Theorem 5.4).
    JlBklw,
    "JL+BKLW",
    [Stage::jl(), Stage::dispca()],
    []
);

declare_distributed_pipeline!(
    /// The §5.2 thought-experiment: JL applied *after* BKLW (the
    /// distributed counterpart of Algorithm 2). The paper argues — and
    /// this implementation verifies empirically (see the ablation bench)
    /// — that it is **not competitive**: the disPCA summaries already
    /// cost `O(mkd/ε²)`, so the late projection cannot improve the
    /// communication order, while its distortion adds to the
    /// approximation error.
    BklwJl,
    "BKLW+JL",
    [Stage::dispca()],
    [Stage::jl()]
);

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_clustering::cost::cost;
    use ekm_clustering::kmeans::KMeans;
    use ekm_data::partition::partition_uniform;
    use ekm_data::synth::GaussianMixture;

    /// Paper-regime workload: moderate separation, §7.1 normalization
    /// (see the note on the centralized tests' `workload`).
    fn workload(n: usize, d: usize, seed: u64) -> Matrix {
        let raw = GaussianMixture::new(n, d, 2)
            .with_separation(4.0)
            .with_cluster_std(1.0)
            .with_seed(seed)
            .generate()
            .unwrap()
            .points;
        ekm_data::normalize::normalize_paper(&raw).0
    }

    fn shards(data: &Matrix, m: usize) -> Vec<Matrix> {
        partition_uniform(data, m, 99).unwrap()
    }

    #[test]
    fn dispca_basis_is_orthonormal_and_captures_energy() {
        // Strong low-rank structure so a rank-6 basis must capture most
        // energy (no lifting involved, so no need for the paper regime).
        let data = GaussianMixture::new(500, 30, 2)
            .with_separation(12.0)
            .with_cluster_std(1.0)
            .with_seed(1)
            .generate()
            .unwrap()
            .points;
        let parts = shards(&data, 5);
        let mut net = Network::new(5);
        let out = dispca(&parts, 6, &mut net).unwrap();
        assert_eq!(out.basis.shape(), (30, 6));
        let g = ops::gram(&out.basis);
        assert!(g.approx_eq(&Matrix::identity(6), 1e-6));
        // Projection captures most energy of well-clustered data.
        let coords_energy: f64 = out.coords.iter().map(|c| c.frobenius_norm_sq()).sum();
        let total: f64 = parts.iter().map(|s| s.frobenius_norm_sq()).sum();
        assert!(
            coords_energy / total > 0.8,
            "captured {}",
            coords_energy / total
        );
        // Uplink includes m SVD summaries; downlink the broadcast basis.
        assert!(net.stats().total_uplink_bits() > 0);
        assert!(net.stats().total_downlink_bits() > 0);
    }

    #[test]
    fn dispca_parallel_matches_sequential() {
        let data = workload(400, 25, 12);
        let parts = shards(&data, 5);
        let mut net_a = Network::new(5);
        let a = dispca_opts(&parts, 5, &mut net_a, true, Precision::Full).unwrap();
        let mut net_b = Network::new(5);
        let b = dispca_opts(&parts, 5, &mut net_b, false, Precision::Full).unwrap();
        assert!(a.basis.approx_eq(&b.basis, 0.0));
        assert_eq!(a.coords.len(), b.coords.len());
        for (ca, cb) in a.coords.iter().zip(&b.coords) {
            assert!(ca.approx_eq(cb, 0.0));
        }
        assert_eq!(net_a.stats(), net_b.stats());
    }

    #[test]
    fn disss_parallel_matches_sequential() {
        let data = workload(600, 10, 13);
        let parts = shards(&data, 6);
        let mut net_a = Network::new(6);
        let a = disss_opts(
            &parts,
            2,
            80,
            7,
            None,
            &mut net_a,
            true,
            Precision::Full,
            Compute::F64,
        )
        .unwrap();
        let mut net_b = Network::new(6);
        let b = disss_opts(
            &parts,
            2,
            80,
            7,
            None,
            &mut net_b,
            false,
            Precision::Full,
            Compute::F64,
        )
        .unwrap();
        assert!(a.coreset.points().approx_eq(b.coreset.points(), 0.0));
        assert_eq!(a.coreset.weights(), b.coreset.weights());
        assert_eq!(net_a.stats(), net_b.stats());
    }

    #[test]
    fn dispca_close_to_centralized_pca() {
        let data = workload(400, 20, 2);
        let parts = shards(&data, 4);
        let mut net = Network::new(4);
        let out = dispca(&parts, 5, &mut net).unwrap();
        // Residual energy of the distributed basis vs the centralized one.
        let coords = ops::matmul(&data, &out.basis).unwrap();
        let dist_resid = data.frobenius_norm_sq() - coords.frobenius_norm_sq();
        let pca = ekm_sketch::Pca::fit(&data, 5).unwrap();
        let cent_resid = pca.residual_sq();
        assert!(
            dist_resid <= 1.2 * cent_resid + 1e-6,
            "disPCA residual {dist_resid} vs centralized {cent_resid}"
        );
    }

    #[test]
    fn disss_coreset_weight_matches_n() {
        let data = workload(600, 10, 3);
        let parts = shards(&data, 6);
        let mut net = Network::new(6);
        let out = disss(&parts, 2, 80, 7, None, &mut net).unwrap();
        assert!(
            (out.coreset.total_weight() - 600.0).abs() < 1e-6,
            "Σw = {}",
            out.coreset.total_weight()
        );
        assert_eq!(out.coreset.delta(), 0.0);
    }

    #[test]
    fn disss_coreset_approximates_cost() {
        let data = workload(800, 8, 4);
        let parts = shards(&data, 4);
        let mut net = Network::new(4);
        let out = disss(&parts, 2, 200, 8, None, &mut net).unwrap();
        for trial in 0..3 {
            let x = ekm_linalg::random::gaussian_matrix(40 + trial, 2, 8, 6.0);
            let truth = cost(&data, &x).unwrap();
            let approx = out.coreset.cost(&x).unwrap();
            let ratio = approx / truth;
            assert!((0.6..=1.4).contains(&ratio), "distortion {ratio}");
        }
    }

    #[test]
    fn bklw_and_jlbklw_produce_good_centers() {
        let data = workload(900, 60, 5);
        let parts = shards(&data, 10);
        let reference = KMeans::new(2)
            .with_seed(1)
            .with_n_init(5)
            .fit(&data)
            .unwrap();
        for (name, out) in [
            (
                "BKLW",
                Bklw::new(SummaryParams::practical(2, 900, 60).with_seed(3))
                    .run(&parts, &mut Network::new(10))
                    .unwrap(),
            ),
            (
                "JL+BKLW",
                JlBklw::new(SummaryParams::practical(2, 900, 60).with_seed(3))
                    .run(&parts, &mut Network::new(10))
                    .unwrap(),
            ),
        ] {
            assert_eq!(out.centers.shape(), (2, 60), "{name}");
            let c = cost(&data, &out.centers).unwrap();
            let ratio = c / reference.inertia;
            assert!(ratio < 1.35, "{name}: normalized cost {ratio}");
        }
    }

    #[test]
    fn jl_bklw_sends_fewer_bits_for_high_dim() {
        let data = workload(600, 300, 6);
        let parts = shards(&data, 5);
        let params = SummaryParams::practical(2, 600, 300).with_seed(4);
        let mut net1 = Network::new(5);
        let bklw = Bklw::new(params.clone()).run(&parts, &mut net1).unwrap();
        let mut net2 = Network::new(5);
        let jl = JlBklw::new(params).run(&parts, &mut net2).unwrap();
        assert!(
            jl.uplink_bits < bklw.uplink_bits,
            "JL+BKLW {} vs BKLW {}",
            jl.uplink_bits,
            bklw.uplink_bits
        );
    }

    #[test]
    fn quantized_variants_cut_bits() {
        let data = workload(500, 40, 7);
        let parts = shards(&data, 5);
        let base = SummaryParams::practical(2, 500, 40).with_seed(5);
        let q = ekm_quant::RoundingQuantizer::new(8).unwrap();
        let mut net1 = Network::new(5);
        let plain = Bklw::new(base.clone()).run(&parts, &mut net1).unwrap();
        let mut net2 = Network::new(5);
        let quant = Bklw::new(base.with_quantizer(q))
            .run(&parts, &mut net2)
            .unwrap();
        assert!(quant.uplink_bits < plain.uplink_bits);
        let c_plain = cost(&data, &plain.centers).unwrap();
        let c_quant = cost(&data, &quant.centers).unwrap();
        assert!(c_quant < 1.3 * c_plain, "QT cost {c_quant} vs {c_plain}");
    }

    #[test]
    fn names() {
        let p = SummaryParams::practical(2, 100, 10);
        assert_eq!(Bklw::new(p.clone()).name(), "BKLW");
        assert_eq!(JlBklw::new(p.clone()).name(), "JL+BKLW");
        let q = ekm_quant::RoundingQuantizer::new(4).unwrap();
        assert_eq!(Bklw::new(p.clone().with_quantizer(q)).name(), "BKLW+QT");
        assert_eq!(JlBklw::new(p.with_quantizer(q)).name(), "JL+BKLW+QT");
    }

    #[test]
    fn config_errors() {
        let p = SummaryParams::practical(2, 100, 10);
        let mut net = Network::new(2);
        assert!(Bklw::new(p.clone()).run(&[], &mut net).is_err());
        // Shard/network mismatch in dispca.
        let data = workload(40, 5, 8);
        let parts = shards(&data, 4);
        assert!(dispca(&parts, 2, &mut net).is_err());
        // Zero budget in disss.
        let mut net4 = Network::new(4);
        assert!(disss(&parts, 2, 0, 0, None, &mut net4).is_err());
    }

    #[test]
    fn disss_handles_zero_cost_shards() {
        // One shard entirely at a single point: cost 0, allocation 0,
        // still contributes its center with the right weight.
        let a = Matrix::from_fn(50, 3, |_, _| 2.0);
        let b = workload(50, 3, 9);
        let mut net = Network::new(2);
        let out = disss(&[a, b], 2, 30, 1, None, &mut net).unwrap();
        assert!((out.coreset.total_weight() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = workload(300, 20, 10);
        let parts = shards(&data, 3);
        let params = SummaryParams::practical(2, 300, 20).with_seed(21);
        let a = JlBklw::new(params.clone())
            .run(&parts, &mut Network::new(3))
            .unwrap();
        let b = JlBklw::new(params)
            .run(&parts, &mut Network::new(3))
            .unwrap();
        assert!(a.centers.approx_eq(&b.centers, 0.0));
        assert_eq!(a.uplink_bits, b.uplink_bits);
    }

    #[test]
    fn bklw_jl_variant_runs_but_does_not_beat_bklw_on_comm() {
        // §5.2: applying JL *after* BKLW keeps the same communication
        // order (the disPCA summaries dominate) — the reason the paper
        // dismisses this ordering in the distributed setting.
        let data = workload(600, 80, 11);
        let parts = shards(&data, 5);
        let params = SummaryParams::practical(2, 600, 80).with_seed(13);
        let plain = Bklw::new(params.clone())
            .run(&parts, &mut Network::new(5))
            .unwrap();
        let after = BklwJl::new(params)
            .run(&parts, &mut Network::new(5))
            .unwrap();
        assert_eq!(after.centers.shape(), (2, 80));
        assert!(after.centers.as_slice().iter().all(|v| v.is_finite()));
        // Same order of magnitude: no dramatic saving from the late JL.
        assert!(
            after.uplink_bits * 2 > plain.uplink_bits,
            "BKLW+JL {} vs BKLW {} — late JL should not halve the bits",
            after.uplink_bits,
            plain.uplink_bits
        );
        let c = cost(&data, &after.centers).unwrap();
        let reference = KMeans::new(2)
            .with_seed(1)
            .with_n_init(5)
            .fit(&data)
            .unwrap();
        assert!(
            c / reference.inertia < 1.5,
            "BKLW+JL cost ratio {}",
            c / reference.inertia
        );
    }

    #[test]
    fn bklw_jl_name() {
        let p = SummaryParams::practical(2, 100, 10);
        assert_eq!(BklwJl::new(p.clone()).name(), "BKLW+JL");
        let q = ekm_quant::RoundingQuantizer::new(4).unwrap();
        assert_eq!(BklwJl::new(p.with_quantizer(q)).name(), "BKLW+JL+QT");
    }
}
