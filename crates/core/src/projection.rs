//! JL projection wrapper that degenerates to the identity.
//!
//! When the prescribed target dimension reaches the source dimension, a
//! square Gaussian matrix is *not* a useful JL map — its smallest singular
//! values approach zero (Marchenko–Pastur hard edge), so projecting and
//! lifting through its pseudo-inverse can distort geometry arbitrarily.
//! The correct degenerate behaviour, and what "no dimensionality
//! reduction" means, is the identity map; this wrapper provides it so
//! pipelines never build near-square projections.

use crate::Result;
use ekm_linalg::Matrix;
use ekm_sketch::{JlKind, JlProjection};

/// A JL projection or the identity (when no reduction is possible).
#[derive(Debug, Clone)]
pub enum MaybeProjection {
    /// No reduction: the target dimension reached the source dimension.
    Identity {
        /// The (unchanged) dimensionality.
        dim: usize,
    },
    /// A genuine dimension-reducing JL projection.
    Jl(JlProjection),
}

impl MaybeProjection {
    /// Generates a projection `R^d → R^{min(target, d)}`, degenerating to
    /// the identity when `target >= d`.
    pub fn generate(kind: JlKind, source_dim: usize, target_dim: usize, seed: u64) -> Self {
        if target_dim >= source_dim {
            MaybeProjection::Identity { dim: source_dim }
        } else {
            MaybeProjection::Jl(JlProjection::generate(kind, source_dim, target_dim, seed))
        }
    }

    /// Output dimensionality.
    pub fn target_dim(&self) -> usize {
        match self {
            MaybeProjection::Identity { dim } => *dim,
            MaybeProjection::Jl(p) => p.target_dim(),
        }
    }

    /// `true` when this is a genuine reduction.
    pub fn is_reducing(&self) -> bool {
        matches!(self, MaybeProjection::Jl(_))
    }

    /// Applies the projection to a dataset.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying projection.
    pub fn project(&self, data: &Matrix) -> Result<Matrix> {
        match self {
            MaybeProjection::Identity { .. } => Ok(data.clone()),
            MaybeProjection::Jl(p) => Ok(p.project(data)?),
        }
    }

    /// Maps centers back to the source space (`Π⁺` for a genuine
    /// projection, identity otherwise).
    ///
    /// # Errors
    ///
    /// Propagates shape and pseudo-inverse errors.
    pub fn lift(&self, centers: &Matrix) -> Result<Matrix> {
        match self {
            MaybeProjection::Identity { .. } => Ok(centers.clone()),
            MaybeProjection::Jl(p) => Ok(p.lift(centers)?),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerates_to_identity_at_full_dim() {
        let p = MaybeProjection::generate(JlKind::Gaussian, 10, 10, 1);
        assert!(!p.is_reducing());
        assert_eq!(p.target_dim(), 10);
        let m = Matrix::from_fn(3, 10, |i, j| (i * 10 + j) as f64);
        assert!(p.project(&m).unwrap().approx_eq(&m, 0.0));
        assert!(p.lift(&m).unwrap().approx_eq(&m, 0.0));
        let over = MaybeProjection::generate(JlKind::Gaussian, 10, 50, 1);
        assert!(!over.is_reducing());
    }

    #[test]
    fn reduces_when_target_smaller() {
        let p = MaybeProjection::generate(JlKind::Gaussian, 20, 5, 2);
        assert!(p.is_reducing());
        assert_eq!(p.target_dim(), 5);
        let m = Matrix::from_fn(4, 20, |i, j| (i + j) as f64);
        let proj = p.project(&m).unwrap();
        assert_eq!(proj.shape(), (4, 5));
        // Lift then project is identity on the projected space.
        let lifted = p.lift(&proj).unwrap();
        assert_eq!(lifted.shape(), (4, 20));
        assert!(p.project(&lifted).unwrap().approx_eq(&proj, 1e-8));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = MaybeProjection::generate(JlKind::Achlioptas, 30, 8, 7);
        let b = MaybeProjection::generate(JlKind::Achlioptas, 30, 8, 7);
        let m = Matrix::from_fn(2, 30, |i, j| (i * 30 + j) as f64 * 0.1);
        assert!(a
            .project(&m)
            .unwrap()
            .approx_eq(&b.project(&m).unwrap(), 0.0));
    }
}
