//! Pipeline configuration.
//!
//! The paper's theorems fix every size as a function of `(n, d, k, ε, δ)`
//! with large constants; its experiments instead tune sizes so all
//! algorithms reach a similar empirical error (§7.2.1). [`SummaryParams`]
//! carries the tuned knobs, and [`SummaryParams::practical`] derives
//! defaults from the scaled-down formulas:
//!
//! * coreset size `⌈25·k·ln n⌉` (clamped),
//! * FSS/disPCA intrinsic dimension `t = k + ⌈4k/ε²⌉ − 1` (Theorem 5.1),
//! * first JL dimension `⌈ln(nk)/ε²⌉` (Lemma 4.1 shape, unit constant),
//! * second JL dimension `⌈ln(n'k)/ε²⌉` (Lemma 4.2 shape).

use ekm_net::wire::{Compute, Precision};
use ekm_net::DeadlinePolicy;
use ekm_quant::RoundingQuantizer;
use ekm_sketch::JlKind;

/// How the driver aggregates per-source summaries in the server-driven
/// protocol. Both topologies produce bit-identical centers, digests, and
/// per-source classic counters; they differ only in where the merge
/// arithmetic runs and how many fold inputs reach the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Topology {
    /// Every source uplinks its summary; the server folds all `s` of
    /// them (the paper's literal model — `O(s)` server fold inputs).
    #[default]
    Star,
    /// Sources pairwise-merge summaries up the canonical `next_2_power`
    /// reduction tree in `ceil(log2 s)` rounds; one root delivers the
    /// folded result (`O(1)` server fold inputs, `O(log s)` rounds).
    Tree,
}

impl Topology {
    /// The CLI token (`star` / `tree`).
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Star => "star",
            Topology::Tree => "tree",
        }
    }

    /// Parses a CLI token.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] for unknown tokens.
    pub fn parse(s: &str) -> crate::Result<Topology> {
        match s {
            "star" => Ok(Topology::Star),
            "tree" => Ok(Topology::Tree),
            _ => Err(crate::CoreError::InvalidConfig {
                reason: "unknown topology (expected star or tree)",
            }),
        }
    }
}

/// Tunable configuration shared by all pipelines.
#[derive(Debug, Clone)]
pub struct SummaryParams {
    /// Number of k-means centers `k`.
    pub k: usize,
    /// Error parameter ε (drives derived dimensions).
    pub epsilon: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Sensitivity-sampling coreset size.
    pub coreset_size: usize,
    /// FSS / disPCA intrinsic dimension `t` (`t1 = t2`).
    pub pca_dim: usize,
    /// Dimension of the JL projection applied *before* CR (`d'`).
    pub jl_dim_before: usize,
    /// Dimension of the JL projection applied *after* CR (`d''`).
    pub jl_dim_after: usize,
    /// JL family used for every projection.
    pub jl_kind: JlKind,
    /// Optional quantizer applied to transmitted coreset points (§6).
    pub quantizer: Option<RoundingQuantizer>,
    /// Seed shared by sources and server (projections are regenerated
    /// from it, never transmitted).
    pub seed: u64,
    /// k-means++ restarts of the server-side solver.
    pub kmeans_restarts: usize,
    /// Leaf-buffer size of the `stream` stage's merge-and-reduce tree.
    pub stream_leaf_size: usize,
    /// Worker threads of the sharded server-side Lloyd solve (`0`
    /// follows the hardware). Centers are bit-identical at every value.
    pub solver_shards: usize,
    /// Wire precision of the auxiliary float payloads — bases, coreset
    /// weights, SVD summaries ([`Precision::Full`] by default;
    /// [`Precision::F32`] halves them at a bounded accuracy cost).
    pub precision: Precision,
    /// Compute precision of the distance kernels (seeding, assignment,
    /// adaptive sampling) on both sources and server
    /// ([`Compute::F64`] by default — the bit-reproducibility reference;
    /// [`Compute::F32`] trades bit-identity for speed under the same
    /// center-perturbation / cost-ratio contract as wire `F32`).
    pub compute: Compute,
    /// Straggler deadlines of the driver's command rounds (and the
    /// per-read/write socket timeouts beneath them). Excluded from stage
    /// keys and handshake fingerprints — it shapes *when* a run fails
    /// over, never the bits it computes.
    pub deadline: DeadlinePolicy,
    /// Aggregation topology of the server-driven protocol (star by
    /// default; the in-process simulation ignores it). Part of the
    /// handshake/journal fingerprint — a resume cannot silently switch
    /// topologies mid-run.
    pub topology: Topology,
    /// Shard replication factor `r` of the server-driven protocol
    /// (`1` = no replicas, today's behavior). Each shard `i` gets an
    /// owner plus `r − 1` cold replica holders at sources
    /// `(i + 1) % m .. (i + r − 1) % m` — the canonical assignment both
    /// ends derive independently, so it is part of the
    /// handshake/journal fingerprint. A dead owner's rounds are
    /// replayed to a promoted replica instead of degrading the run.
    pub replication: usize,
}

/// The source indices holding cold replicas of shard `origin` under
/// replication factor `replication` with `m` sources: the next
/// `min(replication, m) − 1` sources in ring order. Canonical — driver
/// and executors derive the same assignment from the fingerprinted
/// params, so no shard placement is ever negotiated on the wire.
pub fn replica_holders(origin: usize, m: usize, replication: usize) -> Vec<usize> {
    (1..replication.min(m)).map(|j| (origin + j) % m).collect()
}

/// The origins whose cold replicas source `holder` keeps under
/// replication factor `replication` with `m` sources — the inverse of
/// [`replica_holders`]: the previous `min(replication, m) − 1` sources
/// in ring order.
pub fn replica_origins(holder: usize, m: usize, replication: usize) -> Vec<usize> {
    (1..replication.min(m))
        .map(|j| (holder + m - j) % m)
        .collect()
}

impl SummaryParams {
    /// Practical defaults for a dataset of `n` points in `d` dimensions,
    /// with `ε = 0.5`, `δ = 0.1` — the regime the paper's experiments
    /// operate in.
    ///
    /// # Panics
    ///
    /// Panics if `k`, `n`, or `d` is zero.
    pub fn practical(k: usize, n: usize, d: usize) -> Self {
        assert!(k > 0 && n > 0 && d > 0, "k, n, d must be positive");
        let epsilon = 0.5;
        let delta = 0.1;
        let coreset_size = ekm_coreset::size::practical_fss_sample_size(n, k, 25.0);
        let pca_dim = ekm_sketch::dims::theorem51_pca_dim(k, epsilon).min(d);
        // The pre-CR projection controls the quality of the final center
        // lift `X = X'·Π⁺` much more than the communication cost (its size
        // only enters through the small FSS basis), so it gets a larger
        // constant plus a floor of d/2. The floor matches the paper's own
        // operating point: Lemma 4.1 with the §6.3.2 constant gives
        // d' = ⌈8·ln(4nk/δ)/ε²⌉ ≈ 0.6·d at MNIST scale (≈493 of 784).
        let jl_before = ekm_sketch::dims::practical_jl_dim(n, k, epsilon, 2.0, d)
            .max(d.div_ceil(2))
            .min(d);
        // After CR the cardinality is the coreset size (plus bicriteria
        // centers); Lemma 4.2 uses that smaller n'.
        let n_prime = coreset_size.max(2);
        let jl_after = ekm_sketch::dims::practical_jl_dim(n_prime, k, epsilon, 1.0, d);
        SummaryParams {
            k,
            epsilon,
            delta,
            coreset_size,
            pca_dim,
            jl_dim_before: jl_before,
            jl_dim_after: jl_after,
            jl_kind: JlKind::Gaussian,
            quantizer: None,
            seed: 0,
            kmeans_restarts: 3,
            // Leaves of a few coresets' worth keep the merge-and-reduce
            // tree shallow without hurting the per-leaf sample quality.
            stream_leaf_size: (2 * coreset_size).max(64),
            solver_shards: 0,
            precision: Precision::Full,
            compute: Compute::F64,
            deadline: DeadlinePolicy::default(),
            topology: Topology::Star,
            replication: 1,
        }
    }

    /// Sets the shared seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the error parameter and rederives nothing (explicit knobs win).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Sets the coreset size.
    pub fn with_coreset_size(mut self, size: usize) -> Self {
        self.coreset_size = size;
        self
    }

    /// Sets the FSS/disPCA intrinsic dimension.
    pub fn with_pca_dim(mut self, t: usize) -> Self {
        self.pca_dim = t.max(1);
        self
    }

    /// Sets the pre-CR JL dimension `d'`.
    pub fn with_jl_dim_before(mut self, d: usize) -> Self {
        self.jl_dim_before = d.max(1);
        self
    }

    /// Sets the post-CR JL dimension `d''`.
    pub fn with_jl_dim_after(mut self, d: usize) -> Self {
        self.jl_dim_after = d.max(1);
        self
    }

    /// Sets the JL family.
    pub fn with_jl_kind(mut self, kind: JlKind) -> Self {
        self.jl_kind = kind;
        self
    }

    /// Attaches a quantizer (the `+QT` pipeline variants of §6).
    pub fn with_quantizer(mut self, q: RoundingQuantizer) -> Self {
        self.quantizer = Some(q);
        self
    }

    /// Removes the quantizer.
    pub fn without_quantizer(mut self) -> Self {
        self.quantizer = None;
        self
    }

    /// Sets the server-side k-means restarts.
    pub fn with_kmeans_restarts(mut self, restarts: usize) -> Self {
        self.kmeans_restarts = restarts.max(1);
        self
    }

    /// Sets the `stream` stage's leaf-buffer size.
    pub fn with_stream_leaf_size(mut self, leaf: usize) -> Self {
        self.stream_leaf_size = leaf.max(1);
        self
    }

    /// Sets the sharded server solve's worker count (`0` = hardware).
    pub fn with_solver_shards(mut self, shards: usize) -> Self {
        self.solver_shards = shards;
        self
    }

    /// Sets the wire precision of the auxiliary payloads (bases, coreset
    /// weights, SVD summaries).
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the compute precision of the distance kernels.
    pub fn with_compute(mut self, compute: Compute) -> Self {
        self.compute = compute;
        self
    }

    /// Sets the straggler deadline policy.
    pub fn with_deadline(mut self, deadline: DeadlinePolicy) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the aggregation topology of the server-driven protocol.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the shard replication factor (`0` is clamped to `1`).
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.max(1);
        self
    }

    /// Validates the configuration against a dataset shape.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::InvalidConfig`] describing the problem.
    pub fn validate(&self, n: usize, d: usize) -> crate::Result<()> {
        if self.k == 0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: "k is zero",
            });
        }
        if n == 0 || d == 0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: "empty dataset",
            });
        }
        if self.coreset_size == 0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: "coreset size is zero",
            });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(crate::CoreError::InvalidConfig {
                reason: "epsilon outside (0,1)",
            });
        }
        if !(self.delta > 0.0 && self.delta < 1.0) {
            return Err(crate::CoreError::InvalidConfig {
                reason: "delta outside (0,1)",
            });
        }
        if self.stream_leaf_size == 0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: "stream leaf size is zero",
            });
        }
        if self.precision.validate().is_err() {
            return Err(crate::CoreError::InvalidConfig {
                reason: "invalid wire precision",
            });
        }
        if self.replication == 0 {
            return Err(crate::CoreError::InvalidConfig {
                reason: "replication factor is zero",
            });
        }
        Ok(())
    }

    /// The pre-CR JL dimension, clamped to the data dimension.
    pub fn effective_jl_before(&self, d: usize) -> usize {
        self.jl_dim_before.min(d).max(1)
    }

    /// The post-CR JL dimension, clamped to the dimension of whatever
    /// space the coreset lives in.
    pub fn effective_jl_after(&self, current_dim: usize) -> usize {
        self.jl_dim_after.min(current_dim).max(1)
    }

    /// The intrinsic (PCA) dimension, clamped.
    pub fn effective_pca_dim(&self, d: usize) -> usize {
        self.pca_dim.min(d).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn practical_defaults_reasonable() {
        let p = SummaryParams::practical(2, 60_000, 784);
        assert_eq!(p.k, 2);
        assert!(
            p.coreset_size >= 100 && p.coreset_size <= 2000,
            "{}",
            p.coreset_size
        );
        assert!(p.pca_dim >= 2 && p.pca_dim <= 784);
        assert!(p.jl_dim_before >= 2 && p.jl_dim_before <= 784);
        assert!(p.jl_dim_after <= p.jl_dim_before);
        assert!(p.validate(60_000, 784).is_ok());
    }

    #[test]
    fn builders_apply() {
        let p = SummaryParams::practical(2, 1000, 50)
            .with_seed(9)
            .with_epsilon(0.3)
            .with_coreset_size(77)
            .with_pca_dim(5)
            .with_jl_dim_before(20)
            .with_jl_dim_after(10)
            .with_jl_kind(JlKind::Achlioptas)
            .with_kmeans_restarts(0);
        assert_eq!(p.seed, 9);
        assert_eq!(p.epsilon, 0.3);
        assert_eq!(p.coreset_size, 77);
        assert_eq!(p.pca_dim, 5);
        assert_eq!(p.jl_dim_before, 20);
        assert_eq!(p.jl_dim_after, 10);
        assert_eq!(p.jl_kind, JlKind::Achlioptas);
        assert_eq!(p.kmeans_restarts, 1); // clamped
    }

    #[test]
    fn stream_solver_and_precision_knobs() {
        let p = SummaryParams::practical(2, 1000, 50);
        assert!(p.stream_leaf_size >= p.coreset_size);
        assert_eq!(p.solver_shards, 0);
        assert_eq!(p.precision, Precision::Full);
        assert_eq!(p.compute, Compute::F64);
        let p = p
            .with_stream_leaf_size(0)
            .with_solver_shards(4)
            .with_precision(Precision::F32)
            .with_compute(Compute::F32);
        assert_eq!(p.stream_leaf_size, 1); // clamped
        assert_eq!(p.solver_shards, 4);
        assert_eq!(p.precision, Precision::F32);
        assert_eq!(p.compute, Compute::F32);
        assert!(p.validate(1000, 50).is_ok());
        let p = p.with_deadline(DeadlinePolicy::uniform(std::time::Duration::from_millis(5)));
        assert_eq!(p.deadline.io, p.deadline.command);
        let mut bad = p;
        bad.stream_leaf_size = 0;
        assert!(bad.validate(1000, 50).is_err());
    }

    #[test]
    fn quantizer_attach_detach() {
        let q = RoundingQuantizer::new(8).unwrap();
        let p = SummaryParams::practical(2, 100, 10).with_quantizer(q);
        assert!(p.quantizer.is_some());
        let p = p.without_quantizer();
        assert!(p.quantizer.is_none());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let p = SummaryParams::practical(2, 100, 10);
        assert!(p.validate(0, 10).is_err());
        assert!(p.validate(100, 0).is_err());
        let mut bad = p.clone();
        bad.k = 0;
        assert!(bad.validate(100, 10).is_err());
        let mut bad = p.clone();
        bad.coreset_size = 0;
        assert!(bad.validate(100, 10).is_err());
        let mut bad = p.clone();
        bad.epsilon = 1.0;
        assert!(bad.validate(100, 10).is_err());
        let mut bad = p;
        bad.delta = 0.0;
        assert!(bad.validate(100, 10).is_err());
    }

    #[test]
    fn effective_dims_clamp() {
        let p = SummaryParams::practical(2, 1000, 100)
            .with_jl_dim_before(500)
            .with_jl_dim_after(400)
            .with_pca_dim(300);
        assert_eq!(p.effective_jl_before(100), 100);
        assert_eq!(p.effective_jl_after(30), 30);
        assert_eq!(p.effective_pca_dim(100), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn practical_zero_k_panics() {
        let _ = SummaryParams::practical(0, 10, 10);
    }

    #[test]
    fn replication_knob_and_validation() {
        let p = SummaryParams::practical(2, 100, 10);
        assert_eq!(p.replication, 1);
        let p = p.with_replication(0);
        assert_eq!(p.replication, 1); // clamped
        let p = p.with_replication(3);
        assert_eq!(p.replication, 3);
        assert!(p.validate(100, 10).is_ok());
        let mut bad = p;
        bad.replication = 0;
        assert!(bad.validate(100, 10).is_err());
    }

    #[test]
    fn replica_assignment_is_a_canonical_ring() {
        // r = 1: nobody holds replicas.
        assert!(replica_holders(0, 4, 1).is_empty());
        assert!(replica_origins(0, 4, 1).is_empty());
        // r = 2 at m = 4: each shard's replica lives on the next source.
        assert_eq!(replica_holders(2, 4, 2), vec![3]);
        assert_eq!(replica_holders(3, 4, 2), vec![0]);
        assert_eq!(replica_origins(0, 4, 2), vec![3]);
        // r = 3 at m = 5: two successors hold each shard.
        assert_eq!(replica_holders(4, 5, 3), vec![0, 1]);
        assert_eq!(replica_origins(1, 5, 3), vec![0, 4]);
        // r clamped to m: never more holders than sources.
        assert_eq!(replica_holders(0, 3, 9), vec![1, 2]);
        // The two views are exact inverses for every (origin, holder).
        for m in 1..=6 {
            for r in 1..=4 {
                for origin in 0..m {
                    for holder in replica_holders(origin, m, r) {
                        assert!(
                            replica_origins(holder, m, r).contains(&origin),
                            "m={m} r={r} origin={origin} holder={holder}"
                        );
                    }
                }
            }
        }
    }
}
