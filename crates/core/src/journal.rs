//! Driver-side journaling of command rounds for deterministic recovery.
//!
//! [`JournalingTransport`] wraps any [`CommandTransport`] and appends a
//! length-prefixed record (via [`ekm_net::frame`]) for every *round*
//! command the driver sends and every response it receives, flushing
//! before the command touches the wire (write-ahead). Because the
//! driver's call order is deterministic — seed-derived randomness,
//! fixed source-id folds, single-threaded — a restarted driver given
//! the same plan replays the journal to the exact pre-crash state: the
//! replayed sends are verified byte-for-byte against the journaled
//! commands (no wire I/O), the replayed receives return the journaled
//! responses (charged to this transport's own [`NetworkStats`]), and
//! the first un-journaled operation reconciles with the live executors
//! via [`Command::Resume`] / [`Command::Reissue`] before going live.
//!
//! Control-plane commands (`Abort`, `Deadline`, `Resume`, `Reissue`)
//! are never journaled: they shape recovery, not the computation.

use crate::executor::state_fingerprint;
use crate::{CoreError, Result};
use ekm_net::frame::{try_read_frame, write_frame};
use ekm_net::protocol::{
    charge_command, charge_response, Command, CommandTransport, DeadlinePolicy, Response,
};
use ekm_net::{NetError, NetworkStats};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Journal frame kind: the one-per-file header record.
pub const JOURNAL_HEADER: u8 = 16;
/// Journal frame kind: one round command (source id + encoded bytes).
pub const JOURNAL_CMD: u8 = 17;
/// Journal frame kind: one response (source id + encoded bytes).
pub const JOURNAL_RESP: u8 = 18;
/// Journal frame kind: a source-lost event observed by the driver.
pub const JOURNAL_LOST: u8 = 19;

/// `"EKMJ"` — rejects files that are not journals before any decode.
const MAGIC: u32 = 0x454b_4d4a;
const VERSION: u16 = 1;

/// The journal's file header: enough to refuse resuming a run under a
/// different topology or configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Number of sources the journaled run was driving.
    pub sources: u32,
    /// Caller-supplied configuration fingerprint (the CLI hashes its
    /// canonical config); a resume under a different fingerprint is
    /// rejected outright.
    pub fingerprint: u64,
}

/// One journal record, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// A round command the driver sent to `source` — the exact encoded
    /// bytes, so replay can verify bit-identity.
    Cmd {
        /// Destination source id.
        source: u32,
        /// `Command::encode()` output.
        bytes: Vec<u8>,
    },
    /// A response received from `source` (exact encoded bytes).
    Resp {
        /// Originating source id.
        source: u32,
        /// `Response::encode()` output.
        bytes: Vec<u8>,
    },
    /// The transport declared `source` unreachable: a failed send
    /// (`via_send`) or a `SourceLost` answer on receive.
    Lost {
        /// The unreachable source id.
        source: u32,
        /// True when the loss surfaced on the send path.
        via_send: bool,
        /// Transport-provided explanation.
        reason: String,
    },
}

fn journal_io(reason: String) -> CoreError {
    CoreError::Journal { reason }
}

/// A transport-level journal failure: surfaced through the
/// [`CommandTransport`] methods, which speak [`NetError`].
fn jerr(context: &'static str, detail: String) -> NetError {
    NetError::Transport { context, detail }
}

impl JournalEntry {
    /// Appends this record as one frame.
    ///
    /// # Errors
    ///
    /// I/O failures, as [`NetError::Transport`].
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::result::Result<(), NetError> {
        let (kind, payload) = match self {
            JournalEntry::Cmd { source, bytes } => (JOURNAL_CMD, prefixed(*source, bytes)),
            JournalEntry::Resp { source, bytes } => (JOURNAL_RESP, prefixed(*source, bytes)),
            JournalEntry::Lost {
                source,
                via_send,
                reason,
            } => {
                let mut p = Vec::with_capacity(5 + reason.len());
                p.extend_from_slice(&source.to_be_bytes());
                p.push(u8::from(*via_send));
                p.extend_from_slice(reason.as_bytes());
                (JOURNAL_LOST, p)
            }
        };
        let bits = payload.len() * 8;
        write_frame(w, kind, &payload, bits)
    }
}

fn prefixed(source: u32, bytes: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + bytes.len());
    p.extend_from_slice(&source.to_be_bytes());
    p.extend_from_slice(bytes);
    p
}

fn parse_entry(kind: u8, payload: &[u8]) -> Result<JournalEntry> {
    if payload.len() < 4 {
        return Err(journal_io(format!(
            "journal record of kind {kind} is {} bytes, too short for a source id",
            payload.len()
        )));
    }
    let source = u32::from_be_bytes(payload[..4].try_into().expect("4-byte slice"));
    let body = &payload[4..];
    match kind {
        JOURNAL_CMD => Ok(JournalEntry::Cmd {
            source,
            bytes: body.to_vec(),
        }),
        JOURNAL_RESP => Ok(JournalEntry::Resp {
            source,
            bytes: body.to_vec(),
        }),
        JOURNAL_LOST => {
            if body.is_empty() {
                return Err(journal_io(
                    "lost record without a via-send flag".to_string(),
                ));
            }
            let reason = String::from_utf8(body[1..].to_vec())
                .map_err(|_| journal_io("lost record with a non-UTF-8 reason".to_string()))?;
            Ok(JournalEntry::Lost {
                source,
                via_send: body[0] != 0,
                reason,
            })
        }
        other => Err(journal_io(format!("unknown journal record kind {other}"))),
    }
}

/// Writes the file header record.
///
/// # Errors
///
/// I/O failures, as [`NetError::Transport`].
pub fn write_header<W: Write>(
    w: &mut W,
    header: &JournalHeader,
) -> std::result::Result<(), NetError> {
    let mut p = Vec::with_capacity(18);
    p.extend_from_slice(&MAGIC.to_be_bytes());
    p.extend_from_slice(&VERSION.to_be_bytes());
    p.extend_from_slice(&header.sources.to_be_bytes());
    p.extend_from_slice(&header.fingerprint.to_be_bytes());
    let bits = p.len() * 8;
    write_frame(w, JOURNAL_HEADER, &p, bits)
}

/// Reads and validates the file header record.
///
/// # Errors
///
/// [`CoreError::Journal`] on a missing, torn, or foreign header.
pub fn read_header<R: Read>(r: &mut R) -> Result<JournalHeader> {
    let (kind, payload, _) = try_read_frame(r)
        .map_err(|e| journal_io(format!("unreadable journal header: {e}")))?
        .ok_or_else(|| journal_io("empty journal file".to_string()))?;
    if kind != JOURNAL_HEADER || payload.len() != 18 {
        return Err(journal_io(format!(
            "first journal record is kind {kind} ({} bytes), not a header",
            payload.len()
        )));
    }
    let magic = u32::from_be_bytes(payload[..4].try_into().expect("4-byte slice"));
    let version = u16::from_be_bytes(payload[4..6].try_into().expect("2-byte slice"));
    if magic != MAGIC || version != VERSION {
        return Err(journal_io(format!(
            "journal magic/version mismatch (magic {magic:#x}, version {version})"
        )));
    }
    Ok(JournalHeader {
        sources: u32::from_be_bytes(payload[6..10].try_into().expect("4-byte slice")),
        fingerprint: u64::from_be_bytes(payload[10..18].try_into().expect("8-byte slice")),
    })
}

/// Reads the next record, strictly: a torn tail is a typed
/// [`CoreError::Journal`], never a panic and never silently dropped.
/// `Ok(None)` means a clean end of file.
///
/// # Errors
///
/// [`CoreError::Journal`] on torn or corrupt records.
pub fn read_entry<R: Read>(r: &mut R) -> Result<Option<JournalEntry>> {
    match try_read_frame(r) {
        Ok(None) => Ok(None),
        Ok(Some((kind, payload, _))) => parse_entry(kind, &payload).map(Some),
        Err(e) => Err(journal_io(format!("torn journal record: {e}"))),
    }
}

/// Strictly reads a whole journal file: header plus every record.
///
/// # Errors
///
/// [`CoreError::Journal`] on any torn or corrupt content.
pub fn read_journal(path: &Path) -> Result<(JournalHeader, Vec<JournalEntry>)> {
    let buf = std::fs::read(path)
        .map_err(|e| journal_io(format!("cannot read journal {}: {e}", path.display())))?;
    let mut cur = &buf[..];
    let header = read_header(&mut cur)?;
    let mut entries = Vec::new();
    while let Some(e) = read_entry(&mut cur)? {
        entries.push(e);
    }
    Ok((header, entries))
}

/// Lossily loads a journal for resumption: parsing stops at the first
/// torn record (a crash mid-append), and the byte offset of the last
/// good record boundary is returned so the file can be truncated there
/// before new records are appended.
fn load_lossy(path: &Path) -> Result<(JournalHeader, Vec<JournalEntry>, u64)> {
    let buf = std::fs::read(path)
        .map_err(|e| journal_io(format!("cannot read journal {}: {e}", path.display())))?;
    let mut cur = &buf[..];
    let header = read_header(&mut cur)?;
    let mut entries = Vec::new();
    let mut good = buf.len() - cur.len();
    while let Ok(Some((kind, payload, _))) = try_read_frame(&mut cur) {
        match parse_entry(kind, &payload) {
            Ok(e) => {
                entries.push(e);
                good = buf.len() - cur.len();
            }
            Err(_) => break,
        }
    }
    Ok((header, entries, good as u64))
}

enum Mode {
    Record,
    Replay,
}

/// A write-ahead journaling layer over any [`CommandTransport`].
///
/// In **record** mode every round command is appended (and flushed)
/// before it is sent, and every response is appended as it arrives. In
/// **resume** mode ([`JournalingTransport::resume`]) the journaled
/// prefix is replayed without wire I/O; when the journal runs dry the
/// transport reconciles with the live executors (which kept their state
/// and round counters across the driver crash) and switches to record
/// mode, so the run continues — and keeps journaling — from exactly
/// where the crashed driver stopped.
///
/// The transport keeps its **own** [`NetworkStats`], charged for
/// replayed and live traffic alike: a resumed run reports the same
/// counters, bit for bit, as an uninterrupted one. Retransmissions
/// (`Resume`/`Reissue`) are control plane and never charged.
pub struct JournalingTransport<T: CommandTransport> {
    inner: T,
    writer: BufWriter<File>,
    stats: NetworkStats,
    mode: Mode,
    queue: VecDeque<JournalEntry>,
    /// Round commands journaled per source.
    r_cmd: Vec<u64>,
    /// Responses journaled per source.
    r_resp: Vec<u64>,
    /// Encoded bytes of each source's journaled-but-unanswered command.
    pending_cmd: Vec<Option<Vec<u8>>>,
    /// Sources whose journaled loss was final (the driver degraded past
    /// them); reconciliation never contacts these.
    dead: Vec<bool>,
    /// Responses drained — and journaled, and charged — during
    /// reconciliation, handed to the driver on its next `recv` without
    /// re-charging.
    buffered: Vec<VecDeque<Response>>,
    replayed: usize,
    cmds_appended: u64,
    hook: Option<Box<dyn FnMut(u64) + Send>>,
}

impl<T: CommandTransport> JournalingTransport<T> {
    /// Starts journaling a fresh run to `path` (truncating any previous
    /// file there).
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] when the file cannot be created.
    pub fn record(inner: T, path: &Path, fingerprint: u64) -> Result<Self> {
        let m = inner.sources();
        let file = File::create(path)
            .map_err(|e| journal_io(format!("cannot create journal {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        write_header(
            &mut writer,
            &JournalHeader {
                sources: m as u32,
                fingerprint,
            },
        )
        .map_err(|e| journal_io(format!("cannot write journal header: {e}")))?;
        writer
            .flush()
            .map_err(|e| journal_io(format!("cannot flush journal header: {e}")))?;
        Ok(Self::build(inner, writer, m, VecDeque::new()))
    }

    /// Opens an existing journal for deterministic resumption. The file
    /// is truncated to its last intact record (a crash mid-append loses
    /// at most the torn tail), its header must match this transport's
    /// source count and the caller's `fingerprint`, and subsequent
    /// records are appended after the replayed prefix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] on an unreadable file or a header
    /// mismatch.
    pub fn resume(inner: T, path: &Path, fingerprint: u64) -> Result<Self> {
        let m = inner.sources();
        let (header, entries, good) = load_lossy(path)?;
        if header.sources as usize != m {
            return Err(journal_io(format!(
                "journal drove {} sources, this run has {m}",
                header.sources
            )));
        }
        if header.fingerprint != fingerprint {
            return Err(journal_io(
                "journal fingerprint does not match this configuration".to_string(),
            ));
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| journal_io(format!("cannot reopen journal {}: {e}", path.display())))?;
        file.set_len(good)
            .map_err(|e| journal_io(format!("cannot truncate journal tail: {e}")))?;
        let writer = BufWriter::new(file);
        let mut this = Self::build(inner, writer, m, entries.into());
        this.mode = Mode::Replay;
        this.replayed = this.queue.len();
        // Reconstruct the round/response/pending/lost bookkeeping the
        // crashed driver had accumulated.
        let mut last_was_lost = vec![false; m];
        for e in &this.queue {
            match e {
                JournalEntry::Cmd { source, bytes } => {
                    let s = *source as usize;
                    this.r_cmd[s] += 1;
                    this.pending_cmd[s] = Some(bytes.clone());
                }
                JournalEntry::Resp { source, .. } => {
                    let s = *source as usize;
                    this.r_resp[s] += 1;
                    this.pending_cmd[s] = None;
                    last_was_lost[s] = false;
                }
                JournalEntry::Lost {
                    source, via_send, ..
                } => {
                    let s = *source as usize;
                    // One recv-side loss is retried (reissued) by the
                    // driver; a send-side loss or a second recv-side
                    // loss degraded the run past this source.
                    if *via_send || last_was_lost[s] {
                        this.dead[s] = true;
                    } else {
                        last_was_lost[s] = true;
                    }
                }
            }
        }
        Ok(this)
    }

    fn build(inner: T, writer: BufWriter<File>, m: usize, queue: VecDeque<JournalEntry>) -> Self {
        JournalingTransport {
            inner,
            writer,
            stats: NetworkStats::new(m),
            mode: Mode::Record,
            queue,
            r_cmd: vec![0; m],
            r_resp: vec![0; m],
            pending_cmd: vec![None; m],
            dead: vec![false; m],
            buffered: vec![VecDeque::new(); m],
            replayed: 0,
            cmds_appended: 0,
            hook: None,
        }
    }

    /// Installs a hook fired after every *appended* (not replayed)
    /// round command, with the running count — the CLI's
    /// `--crash-after-commands` exits the process from here to test
    /// recovery.
    pub fn with_entry_hook(mut self, hook: Box<dyn FnMut(u64) + Send>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Number of journal records replayed at open (0 in record mode).
    pub fn replayed_entries(&self) -> usize {
        self.replayed
    }

    /// Recovers the wrapped transport (used by crash tests to resume
    /// over the very same channel hub).
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn append(&mut self, e: &JournalEntry) -> std::result::Result<(), NetError> {
        e.write_to(&mut self.writer)
            .map_err(|err| jerr("journal append", err.to_string()))?;
        self.writer
            .flush()
            .map_err(|err| jerr("journal append", err.to_string()))
    }

    fn record_send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        if cmd.is_round() {
            let bytes = cmd.encode();
            self.append(&JournalEntry::Cmd {
                source: source as u32,
                bytes: bytes.clone(),
            })?;
            self.r_cmd[source] += 1;
            self.pending_cmd[source] = Some(bytes);
            self.cmds_appended += 1;
            let n = self.cmds_appended;
            if let Some(hook) = &mut self.hook {
                hook(n);
            }
            charge_command(&mut self.stats, source, cmd)?;
        }
        match self.inner.send(source, cmd) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Journal the failure so a replay fails the same way.
                self.append(&JournalEntry::Lost {
                    source: source as u32,
                    via_send: true,
                    reason: e.to_string(),
                })?;
                self.dead[source] = true;
                Err(e)
            }
        }
    }

    fn record_recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        let resp = self.inner.recv(source)?;
        match &resp {
            Response::SourceLost { reason } => {
                self.append(&JournalEntry::Lost {
                    source: source as u32,
                    via_send: false,
                    reason: reason.clone(),
                })?;
            }
            Response::Resumed { .. } => {}
            other => {
                // A duplicate of an already-answered round (surfaced by
                // a reissue race) is dropped by the driver — journaling
                // it would desync the counts on a later resume.
                let stale = matches!(other.round(), Some(r) if r <= self.r_resp[source]);
                if !stale {
                    self.append(&JournalEntry::Resp {
                        source: source as u32,
                        bytes: other.encode(),
                    })?;
                    self.r_resp[source] += 1;
                    self.pending_cmd[source] = None;
                    charge_response(&mut self.stats, source, other)?;
                }
            }
        }
        Ok(resp)
    }

    fn replay_send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        if self.queue.is_empty() {
            self.reconcile()?;
            return self.record_send(source, cmd);
        }
        if cmd.is_round() {
            match self.queue.pop_front() {
                Some(JournalEntry::Cmd { source: s, bytes })
                    if s as usize == source && bytes == cmd.encode() =>
                {
                    charge_command(&mut self.stats, source, cmd)?;
                }
                Some(other) => {
                    return Err(jerr(
                        "journal replay",
                        format!(
                            "driver sent {} to source {source} but the journal holds {other:?} \
                             — the run diverged from its journal",
                            cmd.name()
                        ),
                    ))
                }
                None => unreachable!("queue checked non-empty"),
            }
        }
        // A journaled send failure replays as the same failure.
        if matches!(
            self.queue.front(),
            Some(JournalEntry::Lost { source: s, via_send: true, .. }) if *s as usize == source
        ) {
            let Some(JournalEntry::Lost { reason, .. }) = self.queue.pop_front() else {
                unreachable!("front matched a lost record");
            };
            return Err(jerr("journal replay", reason));
        }
        Ok(())
    }

    fn replay_recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        if self.queue.is_empty() {
            self.reconcile()?;
            if let Some(resp) = self.buffered[source].pop_front() {
                return Ok(resp);
            }
            return self.record_recv(source);
        }
        match self.queue.pop_front() {
            Some(JournalEntry::Resp { source: s, bytes }) if s as usize == source => {
                let resp = Response::decode(&bytes)
                    .map_err(|e| jerr("journal replay", format!("corrupt response record: {e}")))?;
                charge_response(&mut self.stats, source, &resp)?;
                Ok(resp)
            }
            Some(JournalEntry::Lost {
                source: s,
                via_send: false,
                reason,
            }) if s as usize == source => Ok(Response::SourceLost { reason }),
            Some(other) => Err(jerr(
                "journal replay",
                format!(
                    "driver expects a response from source {source} but the journal holds \
                     {other:?} — the run diverged from its journal"
                ),
            )),
            None => unreachable!("queue checked non-empty"),
        }
    }

    /// Replay exhausted: bring every surviving executor to the exact
    /// pre-crash boundary, then go live.
    ///
    /// Each executor kept its round counter and response cache across
    /// the driver crash. `Resume { round: r }` (with `r` = responses we
    /// hold from it) makes it report its own round and a fingerprint of
    /// its state. Three cases per source:
    ///
    /// 1. No pending command: the fingerprint must match our replayed
    ///    ledger — bit-identical recovery, nothing recomputed.
    /// 2. Pending command, executor already ran it: its response was in
    ///    flight when the driver died. Over channels it is still queued
    ///    and drained here; over TCP a `Reissue` makes the executor
    ///    resend its cached response. Either way the response is
    ///    journaled, charged, and buffered for the driver's next recv.
    /// 3. Pending command the executor never received (the driver died
    ///    between append and send): `Reissue` executes it fresh.
    fn reconcile(&mut self) -> std::result::Result<(), NetError> {
        self.mode = Mode::Record;
        for i in 0..self.inner.sources() {
            if !self.dead[i] {
                self.reconcile_source(i)?;
            }
        }
        Ok(())
    }

    fn reconcile_source(&mut self, i: usize) -> std::result::Result<(), NetError> {
        self.inner.send(
            i,
            &Command::Resume {
                round: self.r_resp[i],
            },
        )?;
        let mut awaiting_resumed = true;
        let mut reissued = false;
        loop {
            match self.inner.recv(i)? {
                Response::Resumed { round, fingerprint } => {
                    awaiting_resumed = false;
                    let pending = self.r_cmd[i] > self.r_resp[i];
                    if pending {
                        if round != self.r_cmd[i] && round != self.r_resp[i] {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} resumed at round {round}, journal expects \
                                     {} or {}",
                                    self.r_resp[i], self.r_cmd[i]
                                ),
                            ));
                        }
                        if reissued {
                            return Err(jerr(
                                "journal replay",
                                format!("reissue did not resolve source {i}'s pending round"),
                            ));
                        }
                        let bytes = self.pending_cmd[i]
                            .clone()
                            .expect("pending implies a journaled command");
                        let cmd = Command::decode(&bytes).map_err(|e| {
                            jerr("journal replay", format!("corrupt command record: {e}"))
                        })?;
                        self.inner.send(
                            i,
                            &Command::Reissue {
                                round: self.r_cmd[i],
                                cmd: Box::new(cmd),
                            },
                        )?;
                        reissued = true;
                    } else {
                        if round != self.r_resp[i] {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} resumed at round {round}, journal holds {}",
                                    self.r_resp[i]
                                ),
                            ));
                        }
                        let want = state_fingerprint(
                            round,
                            self.stats.uplink_bits(i),
                            self.stats.downlink_bits(i),
                        );
                        if fingerprint != want {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} state fingerprint {fingerprint:#x} does not \
                                     match the replayed ledger {want:#x}"
                                ),
                            ));
                        }
                        return Ok(());
                    }
                }
                Response::SourceLost { reason } => {
                    return Err(jerr(
                        "journal replay",
                        format!("source {i} unreachable during resume: {reason}"),
                    ))
                }
                resp => match resp.round() {
                    Some(r) if self.r_cmd[i] > self.r_resp[i] && r == self.r_cmd[i] => {
                        // The pre-crash (or reissued) answer to the
                        // pending round: journal it, charge it now, and
                        // buffer it for the driver.
                        self.append(&JournalEntry::Resp {
                            source: i as u32,
                            bytes: resp.encode(),
                        })?;
                        charge_response(&mut self.stats, i, &resp)?;
                        self.r_resp[i] += 1;
                        self.pending_cmd[i] = None;
                        self.buffered[i].push_back(resp);
                        if !awaiting_resumed {
                            // The reissue consumed the first Resumed;
                            // ask again so the fingerprint still gets
                            // verified.
                            self.inner.send(
                                i,
                                &Command::Resume {
                                    round: self.r_resp[i],
                                },
                            )?;
                            awaiting_resumed = true;
                        }
                    }
                    Some(r) if r <= self.r_resp[i] => {
                        // A duplicate of an already-journaled response.
                    }
                    _ => {
                        return Err(jerr(
                            "journal replay",
                            format!("unexpected {} from source {i} during resume", resp.name()),
                        ))
                    }
                },
            }
        }
    }
}

impl<T: CommandTransport> CommandTransport for JournalingTransport<T> {
    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        match self.mode {
            Mode::Record => self.record_send(source, cmd),
            Mode::Replay => self.replay_send(source, cmd),
        }
    }

    fn recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        if let Some(resp) = self.buffered[source].pop_front() {
            return Ok(resp);
        }
        match self.mode {
            Mode::Record => self.record_recv(source),
            Mode::Replay => self.replay_recv(source),
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.inner.set_deadline(policy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_roundtrip_bitwise() {
        let entries = vec![
            JournalEntry::Cmd {
                source: 3,
                bytes: Command::Describe.encode(),
            },
            JournalEntry::Resp {
                source: 3,
                bytes: Response::Done {
                    round: 1,
                    rows: 10,
                    cols: 4,
                    ops: 7,
                    seconds: 0.5,
                }
                .encode(),
            },
            JournalEntry::Lost {
                source: 1,
                via_send: true,
                reason: "socket closed".to_string(),
            },
        ];
        let mut buf = Vec::new();
        for e in &entries {
            e.write_to(&mut buf).unwrap();
        }
        let mut cur = &buf[..];
        for e in &entries {
            assert_eq!(read_entry(&mut cur).unwrap().as_ref(), Some(e));
        }
        assert_eq!(read_entry(&mut cur).unwrap(), None);
    }

    #[test]
    fn torn_tail_is_a_typed_error() {
        let mut buf = Vec::new();
        JournalEntry::Lost {
            source: 0,
            via_send: false,
            reason: "x".to_string(),
        }
        .write_to(&mut buf)
        .unwrap();
        for cut in 1..buf.len() {
            let mut cur = &buf[..cut];
            match read_entry(&mut cur) {
                Err(CoreError::Journal { .. }) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn header_roundtrip_and_foreign_files_rejected() {
        let h = JournalHeader {
            sources: 4,
            fingerprint: 0xdead_beef,
        };
        let mut buf = Vec::new();
        write_header(&mut buf, &h).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_header(&mut cur).unwrap(), h);
        let mut not_a_journal = &b"not a journal at all"[..];
        assert!(matches!(
            read_header(&mut not_a_journal),
            Err(CoreError::Journal { .. })
        ));
    }
}
