//! Driver-side journaling of command rounds for deterministic recovery.
//!
//! [`JournalingTransport`] wraps any [`CommandTransport`] and appends a
//! length-prefixed record (via [`ekm_net::frame`]) for every *round*
//! command the driver sends and every response it receives, flushing
//! before the command touches the wire (write-ahead). Because the
//! driver's call order is deterministic — seed-derived randomness,
//! fixed source-id folds, single-threaded — a restarted driver given
//! the same plan replays the journal to the exact pre-crash state: the
//! replayed sends are verified byte-for-byte against the journaled
//! commands (no wire I/O), the replayed receives return the journaled
//! responses (charged to this transport's own [`NetworkStats`]), and
//! the first un-journaled operation reconciles with the live executors
//! via [`Command::Resume`] / [`Command::Reissue`] before going live.
//!
//! Control-plane commands (`Abort`, `Deadline`, `Resume`, `Reissue`)
//! are never journaled: they shape recovery, not the computation.

use crate::executor::state_fingerprint;
use crate::{CoreError, Result};
use ekm_net::frame::{try_read_frame, write_frame};
use ekm_net::protocol::{
    charge_command, charge_response, Command, CommandTransport, DeadlinePolicy, EncodedCommand,
    Response,
};
use ekm_net::{NetError, NetworkStats};
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Journal frame kind: the one-per-file header record.
pub const JOURNAL_HEADER: u8 = 16;
/// Journal frame kind: one round command (source id + encoded bytes).
pub const JOURNAL_CMD: u8 = 17;
/// Journal frame kind: one response (source id + encoded bytes).
pub const JOURNAL_RESP: u8 = 18;
/// Journal frame kind: a source-lost event observed by the driver.
pub const JOURNAL_LOST: u8 = 19;
/// Journal frame kind: a replica promotion (origin re-homed to host).
pub const JOURNAL_PROMOTED: u8 = 20;

/// `"EKMJ"` — rejects files that are not journals before any decode.
const MAGIC: u32 = 0x454b_4d4a;
const VERSION: u16 = 1;

/// The journal's file header: enough to refuse resuming a run under a
/// different topology or configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Number of sources the journaled run was driving.
    pub sources: u32,
    /// Caller-supplied configuration fingerprint (the CLI hashes its
    /// canonical config); a resume under a different fingerprint is
    /// rejected outright.
    pub fingerprint: u64,
}

/// One journal record, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalEntry {
    /// A round command the driver sent to `source` — the exact encoded
    /// bytes, so replay can verify bit-identity.
    Cmd {
        /// Destination source id.
        source: u32,
        /// `Command::encode()` output.
        bytes: Vec<u8>,
    },
    /// A response received from `source` (exact encoded bytes).
    Resp {
        /// Originating source id.
        source: u32,
        /// `Response::encode()` output.
        bytes: Vec<u8>,
    },
    /// The transport declared `source` unreachable: a failed send
    /// (`via_send`) or a `SourceLost` answer on receive.
    Lost {
        /// The unreachable source id.
        source: u32,
        /// True when the loss surfaced on the send path.
        via_send: bool,
        /// Transport-provided explanation.
        reason: String,
    },
    /// The driver promoted `host`'s cold replica of `origin`'s shard.
    /// Written write-ahead: a `Lost { source: host, via_send: true }`
    /// record *immediately* after marks the attempt as failed (after a
    /// successful promotion the next record always concerns `origin` —
    /// its reissue answer routes through the new host but is journaled
    /// under the origin).
    Promoted {
        /// The dead source whose shard was re-homed.
        origin: u32,
        /// The replica holder that adopted it.
        host: u32,
    },
}

fn journal_io(reason: String) -> CoreError {
    CoreError::Journal { reason }
}

/// A transport-level journal failure: surfaced through the
/// [`CommandTransport`] methods, which speak [`NetError`].
fn jerr(context: &'static str, detail: String) -> NetError {
    NetError::Transport { context, detail }
}

impl JournalEntry {
    /// Appends this record as one frame.
    ///
    /// # Errors
    ///
    /// I/O failures, as [`NetError::Transport`].
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::result::Result<(), NetError> {
        let (kind, payload) = match self {
            JournalEntry::Cmd { source, bytes } => (JOURNAL_CMD, prefixed(*source, bytes)),
            JournalEntry::Resp { source, bytes } => (JOURNAL_RESP, prefixed(*source, bytes)),
            JournalEntry::Lost {
                source,
                via_send,
                reason,
            } => {
                let mut p = Vec::with_capacity(5 + reason.len());
                p.extend_from_slice(&source.to_be_bytes());
                p.push(u8::from(*via_send));
                p.extend_from_slice(reason.as_bytes());
                (JOURNAL_LOST, p)
            }
            JournalEntry::Promoted { origin, host } => {
                (JOURNAL_PROMOTED, prefixed(*origin, &host.to_be_bytes()))
            }
        };
        let bits = payload.len() * 8;
        write_frame(w, kind, &payload, bits)
    }
}

fn prefixed(source: u32, bytes: &[u8]) -> Vec<u8> {
    let mut p = Vec::with_capacity(4 + bytes.len());
    p.extend_from_slice(&source.to_be_bytes());
    p.extend_from_slice(bytes);
    p
}

fn parse_entry(kind: u8, payload: &[u8]) -> Result<JournalEntry> {
    if payload.len() < 4 {
        return Err(journal_io(format!(
            "journal record of kind {kind} is {} bytes, too short for a source id",
            payload.len()
        )));
    }
    let source = u32::from_be_bytes(payload[..4].try_into().expect("4-byte slice"));
    let body = &payload[4..];
    match kind {
        JOURNAL_CMD => Ok(JournalEntry::Cmd {
            source,
            bytes: body.to_vec(),
        }),
        JOURNAL_RESP => Ok(JournalEntry::Resp {
            source,
            bytes: body.to_vec(),
        }),
        JOURNAL_LOST => {
            if body.is_empty() {
                return Err(journal_io(
                    "lost record without a via-send flag".to_string(),
                ));
            }
            let reason = String::from_utf8(body[1..].to_vec())
                .map_err(|_| journal_io("lost record with a non-UTF-8 reason".to_string()))?;
            Ok(JournalEntry::Lost {
                source,
                via_send: body[0] != 0,
                reason,
            })
        }
        JOURNAL_PROMOTED => {
            if body.len() != 4 {
                return Err(journal_io(format!(
                    "promotion record with a {}-byte host id",
                    body.len()
                )));
            }
            Ok(JournalEntry::Promoted {
                origin: source,
                host: u32::from_be_bytes(body.try_into().expect("4-byte slice")),
            })
        }
        other => Err(journal_io(format!("unknown journal record kind {other}"))),
    }
}

/// Writes the file header record.
///
/// # Errors
///
/// I/O failures, as [`NetError::Transport`].
pub fn write_header<W: Write>(
    w: &mut W,
    header: &JournalHeader,
) -> std::result::Result<(), NetError> {
    let mut p = Vec::with_capacity(18);
    p.extend_from_slice(&MAGIC.to_be_bytes());
    p.extend_from_slice(&VERSION.to_be_bytes());
    p.extend_from_slice(&header.sources.to_be_bytes());
    p.extend_from_slice(&header.fingerprint.to_be_bytes());
    let bits = p.len() * 8;
    write_frame(w, JOURNAL_HEADER, &p, bits)
}

/// Reads and validates the file header record.
///
/// # Errors
///
/// [`CoreError::Journal`] on a missing, torn, or foreign header.
pub fn read_header<R: Read>(r: &mut R) -> Result<JournalHeader> {
    let (kind, payload, _) = try_read_frame(r)
        .map_err(|e| journal_io(format!("unreadable journal header: {e}")))?
        .ok_or_else(|| journal_io("empty journal file".to_string()))?;
    if kind != JOURNAL_HEADER || payload.len() != 18 {
        return Err(journal_io(format!(
            "first journal record is kind {kind} ({} bytes), not a header",
            payload.len()
        )));
    }
    let magic = u32::from_be_bytes(payload[..4].try_into().expect("4-byte slice"));
    let version = u16::from_be_bytes(payload[4..6].try_into().expect("2-byte slice"));
    if magic != MAGIC || version != VERSION {
        return Err(journal_io(format!(
            "journal magic/version mismatch (magic {magic:#x}, version {version})"
        )));
    }
    Ok(JournalHeader {
        sources: u32::from_be_bytes(payload[6..10].try_into().expect("4-byte slice")),
        fingerprint: u64::from_be_bytes(payload[10..18].try_into().expect("8-byte slice")),
    })
}

/// Reads the next record, strictly: a torn tail is a typed
/// [`CoreError::Journal`], never a panic and never silently dropped.
/// `Ok(None)` means a clean end of file.
///
/// # Errors
///
/// [`CoreError::Journal`] on torn or corrupt records.
pub fn read_entry<R: Read>(r: &mut R) -> Result<Option<JournalEntry>> {
    match try_read_frame(r) {
        Ok(None) => Ok(None),
        Ok(Some((kind, payload, _))) => parse_entry(kind, &payload).map(Some),
        Err(e) => Err(journal_io(format!("torn journal record: {e}"))),
    }
}

/// Strictly reads a whole journal file: header plus every record.
///
/// # Errors
///
/// [`CoreError::Journal`] on any torn or corrupt content.
pub fn read_journal(path: &Path) -> Result<(JournalHeader, Vec<JournalEntry>)> {
    let buf = std::fs::read(path)
        .map_err(|e| journal_io(format!("cannot read journal {}: {e}", path.display())))?;
    let mut cur = &buf[..];
    let header = read_header(&mut cur)?;
    let mut entries = Vec::new();
    while let Some(e) = read_entry(&mut cur)? {
        entries.push(e);
    }
    Ok((header, entries))
}

/// Lossily loads a journal for resumption: parsing stops at the first
/// torn record (a crash mid-append), and the byte offset of the last
/// good record boundary is returned so the file can be truncated there
/// before new records are appended.
fn load_lossy(path: &Path) -> Result<(JournalHeader, Vec<JournalEntry>, u64)> {
    let buf = std::fs::read(path)
        .map_err(|e| journal_io(format!("cannot read journal {}: {e}", path.display())))?;
    let mut cur = &buf[..];
    let header = read_header(&mut cur)?;
    let mut entries = Vec::new();
    let mut good = buf.len() - cur.len();
    while let Ok(Some((kind, payload, _))) = try_read_frame(&mut cur) {
        match parse_entry(kind, &payload) {
            Ok(e) => {
                entries.push(e);
                good = buf.len() - cur.len();
            }
            Err(_) => break,
        }
    }
    Ok((header, entries, good as u64))
}

/// Scans a journal for origins absorbed by a successful replica
/// promotion, without replaying it. A resumed `ekm serve` accepts
/// handshakes only from the survivors: a promoted origin's owner is
/// dead (that is why it was promoted) and its remaining rounds run
/// through its host's connection, so waiting for the owner to
/// reconnect would hang the accept loop forever. A promotion whose
/// host was lost on the very next record was a failed attempt and does
/// not count. Tolerates a torn tail exactly like
/// [`JournalingTransport::resume`].
///
/// # Errors
///
/// [`CoreError::Journal`] when the file is missing or its header is
/// corrupt or from a different configuration of the tool.
pub fn absorbed_origins(path: &Path) -> Result<Vec<usize>> {
    let (_, entries, _) = load_lossy(path)?;
    let mut origins = Vec::new();
    for (k, e) in entries.iter().enumerate() {
        if let JournalEntry::Promoted { origin, host } = e {
            let failed = matches!(
                entries.get(k + 1),
                Some(JournalEntry::Lost { source, via_send: true, .. }) if source == host
            );
            if !failed && !origins.contains(&(*origin as usize)) {
                origins.push(*origin as usize);
            }
        }
    }
    origins.sort_unstable();
    Ok(origins)
}

enum Mode {
    Record,
    Replay,
}

/// A write-ahead journaling layer over any [`CommandTransport`].
///
/// In **record** mode every round command is appended (and flushed)
/// before it is sent, and every response is appended as it arrives. In
/// **resume** mode ([`JournalingTransport::resume`]) the journaled
/// prefix is replayed without wire I/O; when the journal runs dry the
/// transport reconciles with the live executors (which kept their state
/// and round counters across the driver crash) and switches to record
/// mode, so the run continues — and keeps journaling — from exactly
/// where the crashed driver stopped.
///
/// The transport keeps its **own** [`NetworkStats`], charged for
/// replayed and live traffic alike: a resumed run reports the same
/// counters, bit for bit, as an uninterrupted one. Retransmissions
/// (`Resume`/`Reissue`) are control plane and never charged.
pub struct JournalingTransport<T: CommandTransport> {
    inner: T,
    writer: BufWriter<File>,
    stats: NetworkStats,
    mode: Mode,
    queue: VecDeque<JournalEntry>,
    /// Round commands journaled per source.
    r_cmd: Vec<u64>,
    /// Responses journaled per source.
    r_resp: Vec<u64>,
    /// Encoded bytes of each source's journaled-but-unanswered command.
    pending_cmd: Vec<Option<Vec<u8>>>,
    /// Sources whose journaled loss was final (the driver degraded past
    /// them); reconciliation never contacts these.
    dead: Vec<bool>,
    /// Responses drained — and journaled, and charged — during
    /// reconciliation, handed to the driver on its next `recv` without
    /// re-charging.
    buffered: Vec<VecDeque<Response>>,
    /// Every journaled round command per source, in order — the replay
    /// vocabulary for re-firing journaled promotions at reconcile time.
    /// Populated only on resume.
    cmd_history: Vec<Vec<Vec<u8>>>,
    /// Promotions consumed from the journal during replay, re-fired on
    /// the wire at reconcile time (last host per origin wins).
    deferred: Vec<(usize, usize)>,
    replayed: usize,
    cmds_appended: u64,
    hook: Option<Box<dyn FnMut(u64) + Send>>,
}

impl<T: CommandTransport> JournalingTransport<T> {
    /// Starts journaling a fresh run to `path` (truncating any previous
    /// file there).
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] when the file cannot be created.
    pub fn record(inner: T, path: &Path, fingerprint: u64) -> Result<Self> {
        let m = inner.sources();
        let file = File::create(path)
            .map_err(|e| journal_io(format!("cannot create journal {}: {e}", path.display())))?;
        let mut writer = BufWriter::new(file);
        write_header(
            &mut writer,
            &JournalHeader {
                sources: m as u32,
                fingerprint,
            },
        )
        .map_err(|e| journal_io(format!("cannot write journal header: {e}")))?;
        writer
            .flush()
            .map_err(|e| journal_io(format!("cannot flush journal header: {e}")))?;
        writer
            .get_ref()
            .sync_data()
            .map_err(|e| journal_io(format!("cannot sync journal header: {e}")))?;
        Ok(Self::build(inner, writer, m, VecDeque::new()))
    }

    /// Opens an existing journal for deterministic resumption. The file
    /// is truncated to its last intact record (a crash mid-append loses
    /// at most the torn tail), its header must match this transport's
    /// source count and the caller's `fingerprint`, and subsequent
    /// records are appended after the replayed prefix.
    ///
    /// # Errors
    ///
    /// [`CoreError::Journal`] on an unreadable file or a header
    /// mismatch.
    pub fn resume(inner: T, path: &Path, fingerprint: u64) -> Result<Self> {
        let m = inner.sources();
        let (header, entries, good) = load_lossy(path)?;
        if header.sources as usize != m {
            return Err(journal_io(format!(
                "journal drove {} sources, this run has {m}",
                header.sources
            )));
        }
        if header.fingerprint != fingerprint {
            return Err(journal_io(
                "journal fingerprint does not match this configuration".to_string(),
            ));
        }
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| journal_io(format!("cannot reopen journal {}: {e}", path.display())))?;
        file.set_len(good)
            .map_err(|e| journal_io(format!("cannot truncate journal tail: {e}")))?;
        let writer = BufWriter::new(file);
        let mut this = Self::build(inner, writer, m, entries.into());
        this.mode = Mode::Replay;
        this.replayed = this.queue.len();
        // Reconstruct the round/response/pending/lost bookkeeping the
        // crashed driver had accumulated.
        let mut last_was_lost = vec![false; m];
        let mut promoted: Vec<Option<usize>> = vec![None; m];
        // The promotion record immediately preceding, with the origin's
        // prior host: a send-side host loss right after it marks the
        // attempt as failed (after a success the next record always
        // concerns the origin).
        let mut prev_promo: Option<(usize, usize, Option<usize>)> = None;
        for e in &this.queue {
            let mut is_promo = false;
            match e {
                JournalEntry::Cmd { source, bytes } => {
                    let s = *source as usize;
                    this.r_cmd[s] += 1;
                    this.pending_cmd[s] = Some(bytes.clone());
                    this.cmd_history[s].push(bytes.clone());
                }
                JournalEntry::Resp { source, .. } => {
                    let s = *source as usize;
                    this.r_resp[s] += 1;
                    this.pending_cmd[s] = None;
                    last_was_lost[s] = false;
                }
                JournalEntry::Lost {
                    source, via_send, ..
                } => {
                    let s = *source as usize;
                    if let Some((o, h, prior)) = prev_promo {
                        if *via_send && s == h {
                            // A failed promotion attempt: the origin
                            // falls back to whoever held it before.
                            promoted[o] = prior;
                            this.dead[o] = true;
                        }
                    }
                    // One recv-side loss is retried (reissued) by the
                    // driver; a send-side loss or a second recv-side
                    // loss escalated past this source.
                    if *via_send || last_was_lost[s] {
                        this.dead[s] = true;
                    } else {
                        last_was_lost[s] = true;
                    }
                }
                JournalEntry::Promoted { origin, host } => {
                    let o = *origin as usize;
                    is_promo = true;
                    prev_promo = Some((o, *host as usize, promoted[o]));
                    promoted[o] = Some(*host as usize);
                    this.dead[o] = false;
                    last_was_lost[o] = false;
                }
            }
            if !is_promo {
                prev_promo = None;
            }
        }
        Ok(this)
    }

    fn build(inner: T, writer: BufWriter<File>, m: usize, queue: VecDeque<JournalEntry>) -> Self {
        JournalingTransport {
            inner,
            writer,
            stats: NetworkStats::new(m),
            mode: Mode::Record,
            queue,
            r_cmd: vec![0; m],
            r_resp: vec![0; m],
            pending_cmd: vec![None; m],
            dead: vec![false; m],
            buffered: vec![VecDeque::new(); m],
            cmd_history: vec![Vec::new(); m],
            deferred: Vec::new(),
            replayed: 0,
            cmds_appended: 0,
            hook: None,
        }
    }

    /// Installs a hook fired after every *appended* (not replayed)
    /// round command, with the running count — the CLI's
    /// `--crash-after-commands` exits the process from here to test
    /// recovery.
    pub fn with_entry_hook(mut self, hook: Box<dyn FnMut(u64) + Send>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// Number of journal records replayed at open (0 in record mode).
    pub fn replayed_entries(&self) -> usize {
        self.replayed
    }

    /// Recovers the wrapped transport (used by crash tests to resume
    /// over the very same channel hub).
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn append(&mut self, e: &JournalEntry) -> std::result::Result<(), NetError> {
        e.write_to(&mut self.writer)
            .map_err(|err| jerr("journal append", err.to_string()))?;
        self.writer
            .flush()
            .map_err(|err| jerr("journal append", err.to_string()))?;
        // Durability, not just visibility: a record the write-ahead
        // discipline relies on must survive a power loss, so every
        // record boundary is synced. A crash mid-append leaves at most
        // one torn tail record, truncated away on resume.
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|err| jerr("journal sync", err.to_string()))
    }

    fn record_send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        self.record_send_parts(source, cmd, None)
    }

    /// [`record_send`](Self::record_send) with an optional pre-encoded
    /// command: the journal bytes come from the shared encoding
    /// (byte-identical to `cmd.encode()` by construction) and the wire
    /// write shares the frame, so a broadcast round encodes once for
    /// the journal *and* every source.
    fn record_send_parts(
        &mut self,
        source: usize,
        cmd: &Command,
        enc: Option<&EncodedCommand>,
    ) -> std::result::Result<(), NetError> {
        if cmd.is_round() {
            let bytes = match enc {
                Some(enc) => enc.encoded().to_vec(),
                None => cmd.encode(),
            };
            self.append(&JournalEntry::Cmd {
                source: source as u32,
                bytes: bytes.clone(),
            })?;
            self.r_cmd[source] += 1;
            self.pending_cmd[source] = Some(bytes);
            self.cmds_appended += 1;
            let n = self.cmds_appended;
            if let Some(hook) = &mut self.hook {
                hook(n);
            }
        }
        // Round payloads and the replica plane (`Promote`/`Replay`)
        // both charge; recovery control frames are no-ops inside.
        charge_command(&mut self.stats, source, cmd)?;
        let sent = match enc {
            Some(enc) => self.inner.send_encoded(source, enc),
            None => self.inner.send(source, cmd),
        };
        match sent {
            Ok(()) => Ok(()),
            Err(e) => {
                // Journal the failure so a replay fails the same way.
                self.append(&JournalEntry::Lost {
                    source: source as u32,
                    via_send: true,
                    reason: e.to_string(),
                })?;
                self.dead[source] = true;
                Err(e)
            }
        }
    }

    fn record_recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        let resp = self.inner.recv(source)?;
        match &resp {
            Response::SourceLost { reason } => {
                self.append(&JournalEntry::Lost {
                    source: source as u32,
                    via_send: false,
                    reason: reason.clone(),
                })?;
            }
            Response::Resumed { .. } => {}
            // Replica-plane acknowledgements carry no round number, so
            // the stale check below would journal them and desync the
            // response counts on a later resume: charge-only, and the
            // matching promotion/replay is re-fired from its own record.
            Response::Promoted { .. } | Response::Replayed { .. } => {
                charge_response(&mut self.stats, source, &resp)?;
            }
            other => {
                // A duplicate of an already-answered round (surfaced by
                // a reissue race) is dropped by the driver — journaling
                // it would desync the counts on a later resume.
                let stale = matches!(other.round(), Some(r) if r <= self.r_resp[source]);
                if !stale {
                    self.append(&JournalEntry::Resp {
                        source: source as u32,
                        bytes: other.encode(),
                    })?;
                    self.r_resp[source] += 1;
                    self.pending_cmd[source] = None;
                    charge_response(&mut self.stats, source, other)?;
                }
            }
        }
        Ok(resp)
    }

    fn replay_send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        if self.queue.is_empty() {
            self.reconcile()?;
            return self.record_send(source, cmd);
        }
        if cmd.is_round() {
            match self.queue.pop_front() {
                Some(JournalEntry::Cmd { source: s, bytes })
                    if s as usize == source && bytes == cmd.encode() =>
                {
                    charge_command(&mut self.stats, source, cmd)?;
                }
                Some(other) => {
                    return Err(jerr(
                        "journal replay",
                        format!(
                            "driver sent {} to source {source} but the journal holds {other:?} \
                             — the run diverged from its journal",
                            cmd.name()
                        ),
                    ))
                }
                None => unreachable!("queue checked non-empty"),
            }
        }
        // A journaled send failure replays as the same failure.
        if matches!(
            self.queue.front(),
            Some(JournalEntry::Lost { source: s, via_send: true, .. }) if *s as usize == source
        ) {
            let Some(JournalEntry::Lost { reason, .. }) = self.queue.pop_front() else {
                unreachable!("front matched a lost record");
            };
            return Err(jerr("journal replay", reason));
        }
        Ok(())
    }

    fn replay_recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        loop {
            if self.queue.is_empty() {
                self.reconcile()?;
                if let Some(resp) = self.buffered[source].pop_front() {
                    return Ok(resp);
                }
                return self.record_recv(source);
            }
            match self.queue.pop_front() {
                Some(JournalEntry::Resp { source: s, bytes }) if s as usize == source => {
                    let resp = Response::decode(&bytes).map_err(|e| {
                        jerr("journal replay", format!("corrupt response record: {e}"))
                    })?;
                    charge_response(&mut self.stats, source, &resp)?;
                    return Ok(resp);
                }
                Some(JournalEntry::Resp { source: s, bytes }) => {
                    // Another source's answer, harvested out of driver
                    // order during a live promotion (the host answering
                    // its own round mid-replay): charge it at the same
                    // journal position and buffer it for that source's
                    // own receive.
                    let s = s as usize;
                    let resp = Response::decode(&bytes).map_err(|e| {
                        jerr("journal replay", format!("corrupt response record: {e}"))
                    })?;
                    charge_response(&mut self.stats, s, &resp)?;
                    self.buffered[s].push_back(resp);
                }
                Some(JournalEntry::Lost {
                    source: s,
                    via_send: false,
                    reason,
                }) if s as usize == source => return Ok(Response::SourceLost { reason }),
                Some(other) => {
                    return Err(jerr(
                        "journal replay",
                        format!(
                            "driver expects a response from source {source} but the journal \
                             holds {other:?} — the run diverged from its journal"
                        ),
                    ))
                }
                None => unreachable!("queue checked non-empty"),
            }
        }
    }

    /// Write-ahead journals a promotion, then arms the routing layer
    /// below. A failed promotion appends the host's loss immediately
    /// after the promotion record, so a replay fails the same way.
    fn record_promote(&mut self, origin: usize, host: usize) -> std::result::Result<(), NetError> {
        self.append(&JournalEntry::Promoted {
            origin: origin as u32,
            host: host as u32,
        })?;
        match self.inner.promote(origin, host) {
            Ok(()) => {
                // A failed reissue may have marked the origin dead on
                // its way here; the promotion revives it (mirroring the
                // resume-time bookkeeping).
                self.dead[origin] = false;
                // Mirror the Promote/Promoted exchange the routing layer
                // consumed below this transport's own ledger.
                charge_command(
                    &mut self.stats,
                    host,
                    &Command::Promote {
                        origin: origin as u64,
                    },
                )?;
                charge_response(
                    &mut self.stats,
                    host,
                    &Response::Promoted {
                        origin: origin as u64,
                        round: 0,
                    },
                )?;
                Ok(())
            }
            Err(e) => {
                self.append(&JournalEntry::Lost {
                    source: host as u32,
                    via_send: true,
                    reason: e.to_string(),
                })?;
                self.dead[host] = true;
                Err(e)
            }
        }
    }

    /// Consumes a journaled promotion during replay. A successful one is
    /// deferred — the wire-level promotion and the replica's round
    /// replay re-fire at reconcile time — while a journaled failure
    /// (the host's send-side loss immediately after) fails here exactly
    /// as it did live, sending the driver's health machine down the
    /// same escalation path.
    fn replay_promote(&mut self, origin: usize, host: usize) -> std::result::Result<(), NetError> {
        if self.queue.is_empty() {
            self.reconcile()?;
            return self.record_promote(origin, host);
        }
        match self.queue.pop_front() {
            Some(JournalEntry::Promoted { origin: o, host: h })
                if o as usize == origin && h as usize == host => {}
            Some(other) => {
                return Err(jerr(
                    "journal replay",
                    format!(
                        "driver promoted source {origin} onto {host} but the journal holds \
                         {other:?} — the run diverged from its journal"
                    ),
                ))
            }
            None => unreachable!("queue checked non-empty"),
        }
        if matches!(
            self.queue.front(),
            Some(JournalEntry::Lost { source: s, via_send: true, .. }) if *s as usize == host
        ) {
            let Some(JournalEntry::Lost { reason, .. }) = self.queue.pop_front() else {
                unreachable!("front matched a lost record");
            };
            self.dead[host] = true;
            return Err(jerr("journal replay", reason));
        }
        self.deferred.push((origin, host));
        charge_command(
            &mut self.stats,
            host,
            &Command::Promote {
                origin: origin as u64,
            },
        )?;
        charge_response(
            &mut self.stats,
            host,
            &Response::Promoted {
                origin: origin as u64,
                round: 0,
            },
        )
    }

    /// Re-fires a journaled promotion on the wire at reconcile time:
    /// arms the routing layer, replays every *journaled-and-answered*
    /// round of the origin onto the host's fresh persona, and verifies
    /// the rebuilt state against the replayed ledger. The host may
    /// interleave its own pre-crash round answer on the shared
    /// connection; that is journaled, charged, and buffered exactly as
    /// reconciliation would have.
    fn refire_promotion(
        &mut self,
        origin: usize,
        host: usize,
    ) -> std::result::Result<(), NetError> {
        self.inner.promote(origin, host)?;
        let completed = self.r_resp[origin];
        let mut fingerprint = state_fingerprint(0, 0, 0);
        for k in 0..completed {
            let bytes = &self.cmd_history[origin][k as usize];
            let cmd = Command::decode(bytes)
                .map_err(|e| jerr("journal replay", format!("corrupt command record: {e}")))?;
            let round = k + 1;
            let replay = Command::Replay {
                origin: origin as u64,
                round,
                cmd: Box::new(cmd),
            };
            charge_command(&mut self.stats, host, &replay)?;
            self.inner.send(host, &replay)?;
            loop {
                let resp = self.inner.recv(host)?;
                match resp {
                    Response::Replayed {
                        origin: o,
                        round: r,
                        fingerprint: f,
                    } if o as usize == origin && r == round => {
                        charge_response(
                            &mut self.stats,
                            host,
                            &Response::Replayed {
                                origin: o,
                                round: r,
                                fingerprint: f,
                            },
                        )?;
                        fingerprint = f;
                        break;
                    }
                    Response::SourceLost { reason } => {
                        return Err(jerr(
                            "journal replay",
                            format!("promoted host {host} unreachable during replay: {reason}"),
                        ))
                    }
                    // A stale acknowledgement from a pre-crash partial
                    // replay: the fresh persona re-produces the same
                    // deterministic acks, so earlier rounds' duplicates
                    // are skipped.
                    Response::Replayed { .. } | Response::Promoted { .. } => {}
                    resp => match resp.round() {
                        Some(r) if r > self.r_resp[host] => {
                            // The host's own pre-crash round answer.
                            self.append(&JournalEntry::Resp {
                                source: host as u32,
                                bytes: resp.encode(),
                            })?;
                            charge_response(&mut self.stats, host, &resp)?;
                            self.r_resp[host] += 1;
                            self.pending_cmd[host] = None;
                            self.buffered[host].push_back(resp);
                        }
                        Some(_) => {
                            // A duplicate of an already-journaled answer.
                        }
                        None => {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "unexpected {} from host {host} during promotion replay",
                                    resp.name()
                                ),
                            ))
                        }
                    },
                }
            }
        }
        if completed > 0 {
            // The journaled in-flight command (if any) was charged
            // during replay but reaches the persona only through the
            // reconcile reissue; everything else must already match.
            let inflight = match &self.pending_cmd[origin] {
                Some(bytes) => match Command::decode(bytes) {
                    Ok(Command::Deliver { payload }) => payload.bits(),
                    _ => 0,
                },
                None => 0,
            };
            let want = state_fingerprint(
                completed,
                self.stats.uplink_bits(origin),
                self.stats.downlink_bits(origin) - inflight,
            );
            if fingerprint != want {
                return Err(jerr(
                    "journal replay",
                    format!(
                        "promoted replica of source {origin} rebuilt fingerprint \
                         {fingerprint:#x}, the replayed ledger expects {want:#x}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Replay exhausted: bring every surviving executor to the exact
    /// pre-crash boundary, then go live.
    ///
    /// Each executor kept its round counter and response cache across
    /// the driver crash. `Resume { round: r }` (with `r` = responses we
    /// hold from it) makes it report its own round and a fingerprint of
    /// its state. Three cases per source:
    ///
    /// 1. No pending command: the fingerprint must match our replayed
    ///    ledger — bit-identical recovery, nothing recomputed.
    /// 2. Pending command, executor already ran it: its response was in
    ///    flight when the driver died. Over channels it is still queued
    ///    and drained here; over TCP a `Reissue` makes the executor
    ///    resend its cached response. Either way the response is
    ///    journaled, charged, and buffered for the driver's next recv.
    /// 3. Pending command the executor never received (the driver died
    ///    between append and send): `Reissue` executes it fresh.
    fn reconcile(&mut self) -> std::result::Result<(), NetError> {
        self.mode = Mode::Record;
        // Journaled promotions re-fire first (last host per origin
        // wins): the routes must be armed and the personas rebuilt
        // before any `Resume` goes out, because an absorbed origin's
        // reconciliation runs through its host's connection.
        let deferred = std::mem::take(&mut self.deferred);
        let mut final_host: Vec<Option<(usize, usize)>> = vec![None; self.inner.sources()];
        for (origin, host) in deferred {
            final_host[origin] = Some((origin, host));
        }
        for entry in final_host.into_iter().flatten() {
            self.refire_promotion(entry.0, entry.1)?;
        }
        for i in 0..self.inner.sources() {
            if !self.dead[i] {
                self.reconcile_source(i)?;
            }
        }
        Ok(())
    }

    fn reconcile_source(&mut self, i: usize) -> std::result::Result<(), NetError> {
        self.inner.send(
            i,
            &Command::Resume {
                round: self.r_resp[i],
            },
        )?;
        let mut awaiting_resumed = true;
        let mut reissued = false;
        loop {
            match self.inner.recv(i)? {
                Response::Resumed { round, fingerprint } => {
                    awaiting_resumed = false;
                    let pending = self.r_cmd[i] > self.r_resp[i];
                    if pending {
                        if round != self.r_cmd[i] && round != self.r_resp[i] {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} resumed at round {round}, journal expects \
                                     {} or {}",
                                    self.r_resp[i], self.r_cmd[i]
                                ),
                            ));
                        }
                        if reissued {
                            return Err(jerr(
                                "journal replay",
                                format!("reissue did not resolve source {i}'s pending round"),
                            ));
                        }
                        let bytes = self.pending_cmd[i]
                            .clone()
                            .expect("pending implies a journaled command");
                        let cmd = Command::decode(&bytes).map_err(|e| {
                            jerr("journal replay", format!("corrupt command record: {e}"))
                        })?;
                        self.inner.send(
                            i,
                            &Command::Reissue {
                                round: self.r_cmd[i],
                                cmd: Box::new(cmd),
                            },
                        )?;
                        reissued = true;
                    } else {
                        if round != self.r_resp[i] {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} resumed at round {round}, journal holds {}",
                                    self.r_resp[i]
                                ),
                            ));
                        }
                        let want = state_fingerprint(
                            round,
                            self.stats.uplink_bits(i),
                            self.stats.downlink_bits(i),
                        );
                        if fingerprint != want {
                            return Err(jerr(
                                "journal replay",
                                format!(
                                    "source {i} state fingerprint {fingerprint:#x} does not \
                                     match the replayed ledger {want:#x}"
                                ),
                            ));
                        }
                        return Ok(());
                    }
                }
                Response::SourceLost { reason } => {
                    return Err(jerr(
                        "journal replay",
                        format!("source {i} unreachable during resume: {reason}"),
                    ))
                }
                resp => match resp.round() {
                    Some(r) if self.r_cmd[i] > self.r_resp[i] && r == self.r_cmd[i] => {
                        // The pre-crash (or reissued) answer to the
                        // pending round: journal it, charge it now, and
                        // buffer it for the driver.
                        self.append(&JournalEntry::Resp {
                            source: i as u32,
                            bytes: resp.encode(),
                        })?;
                        charge_response(&mut self.stats, i, &resp)?;
                        self.r_resp[i] += 1;
                        self.pending_cmd[i] = None;
                        self.buffered[i].push_back(resp);
                        if !awaiting_resumed {
                            // The reissue consumed the first Resumed;
                            // ask again so the fingerprint still gets
                            // verified.
                            self.inner.send(
                                i,
                                &Command::Resume {
                                    round: self.r_resp[i],
                                },
                            )?;
                            awaiting_resumed = true;
                        }
                    }
                    Some(r) if r <= self.r_resp[i] => {
                        // A duplicate of an already-journaled response.
                    }
                    _ => {
                        return Err(jerr(
                            "journal replay",
                            format!("unexpected {} from source {i} during resume", resp.name()),
                        ))
                    }
                },
            }
        }
    }
}

impl<T: CommandTransport> CommandTransport for JournalingTransport<T> {
    fn sources(&self) -> usize {
        self.inner.sources()
    }

    fn send(&mut self, source: usize, cmd: &Command) -> std::result::Result<(), NetError> {
        match self.mode {
            Mode::Record => self.record_send(source, cmd),
            Mode::Replay => self.replay_send(source, cmd),
        }
    }

    fn send_encoded(
        &mut self,
        source: usize,
        enc: &EncodedCommand,
    ) -> std::result::Result<(), NetError> {
        match self.mode {
            Mode::Record => self.record_send_parts(source, enc.command(), Some(enc)),
            // Replay never touches the wire; the byte comparison against
            // the journaled record is the cold path, so re-encoding is
            // fine there.
            Mode::Replay => self.replay_send(source, enc.command()),
        }
    }

    fn recv(&mut self, source: usize) -> std::result::Result<Response, NetError> {
        if let Some(resp) = self.buffered[source].pop_front() {
            return Ok(resp);
        }
        match self.mode {
            Mode::Record => self.record_recv(source),
            Mode::Replay => self.replay_recv(source),
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    fn set_deadline(&mut self, policy: DeadlinePolicy) {
        self.inner.set_deadline(policy);
    }

    fn promote(&mut self, origin: usize, host: usize) -> std::result::Result<(), NetError> {
        match self.mode {
            Mode::Record => self.record_promote(origin, host),
            Mode::Replay => self.replay_promote(origin, host),
        }
    }

    fn replaying(&self) -> bool {
        matches!(self.mode, Mode::Replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_roundtrip_bitwise() {
        let entries = vec![
            JournalEntry::Cmd {
                source: 3,
                bytes: Command::Describe.encode(),
            },
            JournalEntry::Resp {
                source: 3,
                bytes: Response::Done {
                    round: 1,
                    rows: 10,
                    cols: 4,
                    ops: 7,
                    seconds: 0.5,
                }
                .encode(),
            },
            JournalEntry::Lost {
                source: 1,
                via_send: true,
                reason: "socket closed".to_string(),
            },
        ];
        let mut buf = Vec::new();
        for e in &entries {
            e.write_to(&mut buf).unwrap();
        }
        let mut cur = &buf[..];
        for e in &entries {
            assert_eq!(read_entry(&mut cur).unwrap().as_ref(), Some(e));
        }
        assert_eq!(read_entry(&mut cur).unwrap(), None);
    }

    #[test]
    fn torn_tail_is_a_typed_error() {
        let mut buf = Vec::new();
        JournalEntry::Lost {
            source: 0,
            via_send: false,
            reason: "x".to_string(),
        }
        .write_to(&mut buf)
        .unwrap();
        for cut in 1..buf.len() {
            let mut cur = &buf[..cut];
            match read_entry(&mut cur) {
                Err(CoreError::Journal { .. }) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn header_roundtrip_and_foreign_files_rejected() {
        let h = JournalHeader {
            sources: 4,
            fingerprint: 0xdead_beef,
        };
        let mut buf = Vec::new();
        write_header(&mut buf, &h).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_header(&mut cur).unwrap(), h);
        let mut not_a_journal = &b"not a journal at all"[..];
        assert!(matches!(
            read_header(&mut not_a_journal),
            Err(CoreError::Journal { .. })
        ));
    }

    #[test]
    fn absorbed_origins_skips_failed_attempts_and_dedupes() {
        let path =
            std::env::temp_dir().join(format!("ekm-absorbed-scan-{}.journal", std::process::id()));
        let mut buf = Vec::new();
        write_header(
            &mut buf,
            &JournalHeader {
                sources: 4,
                fingerprint: 0xfeed,
            },
        )
        .unwrap();
        for e in [
            // A failed attempt: the host was lost on the very next
            // send, so origin 1 is *not* absorbed by host 2…
            JournalEntry::Promoted { origin: 1, host: 2 },
            JournalEntry::Lost {
                source: 2,
                via_send: true,
                reason: "host died mid-promotion".to_string(),
            },
            // …but the retry onto host 3 sticks (and host 2's own
            // death later makes origin 2 promotable too).
            JournalEntry::Promoted { origin: 1, host: 3 },
            JournalEntry::Promoted { origin: 2, host: 3 },
        ] {
            e.write_to(&mut buf).unwrap();
        }
        std::fs::write(&path, &buf).unwrap();
        assert_eq!(absorbed_origins(&path).unwrap(), vec![1, 2]);
        std::fs::remove_file(&path).unwrap();
    }
}
