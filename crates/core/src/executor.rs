//! The source-side executor of the server-driven protocol.
//!
//! A [`SourceExecutor`] is one data source: it holds **only its own
//! shard** plus the shared plan (stage list + parameters), and answers
//! the server driver's commands over an [`ekm_net::SourceEndpoint`]. It
//! never sees another source's points — the only downlink payloads it
//! accepts are the disPCA basis broadcast and the disSS sample
//! allocation, exactly the messages the paper's protocols send to the
//! sources.
//!
//! Every computation here is the same function the in-process engine
//! runs for that source (the stage resolution helpers in
//! [`crate::stage`], the disSS/disPCA local steps in
//! [`crate::distributed`], the shared [`JlBook`] seed-stream
//! bookkeeping), so an executor's responses are bit-identical to the
//! engine's per-source closures by construction — proven end to end by
//! `tests/transport_equivalence.rs`.

use crate::complexity;
use crate::distributed::{
    disss_local_bicriteria, disss_local_sample, local_svd_summary, merge_summary_messages,
};
use crate::engine::JlBook;
use crate::params::{SummaryParams, Topology};
use crate::pipelines::{quantize_for_wire, seeds};
use crate::projection::MaybeProjection;
use crate::stage::{
    dispca_rank, disss_budget, fss_dims, jl_target_dim, resolve_quantizer, stream_plan, Stage,
};
use crate::{CoreError, Result};
use ekm_clustering::bicriteria::BicriteriaSolution;
use ekm_coreset::{FssBuilder, StreamingCoreset};
use ekm_linalg::random::derive_seed;
use ekm_linalg::{ops, Matrix};
use ekm_net::messages::Message;
use ekm_net::protocol::{Command, DeadlinePolicy, Payload, Response, SourceEndpoint};
use ekm_net::NetError;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// FNV-1a fingerprint of an executor's protocol position: the round
/// counter plus its own uplink/downlink ledgers. A resumed driver
/// cross-checks this against its journal-replayed counters before
/// going live again.
pub(crate) fn state_fingerprint(round: u64, uplink_bits: u64, downlink_bits: u64) -> u64 {
    let mut h = crate::cache::Fnv::new();
    h.write_u64(round);
    h.write_u64(uplink_bits);
    h.write_u64(downlink_bits);
    h.finish()
}

/// What one executor observed over a completed run — its own traffic
/// only. The driver cross-checks the bit counts against its per-source
/// counters at shutdown, and the isolation tests assert that the
/// downlink kinds never include another source's data.
#[derive(Debug, Clone, Default)]
pub struct SourceRunReport {
    /// Data-plane bits this source sent.
    pub uplink_bits: u64,
    /// Data-plane bits this source received.
    pub downlink_bits: u64,
    /// Uplink bits by message kind.
    pub uplink_kinds: BTreeMap<&'static str, u64>,
    /// Downlink bits by message kind (a source only ever receives
    /// `basis` and `sample-allocation` payloads).
    pub downlink_kinds: BTreeMap<&'static str, u64>,
    /// The centers hash the server announced at shutdown.
    pub centers_hash: u64,
    /// The run-total uplink bits the server announced.
    pub server_uplink_bits: u64,
    /// The run-total downlink bits the server announced.
    pub server_downlink_bits: u64,
}

/// A phase started by a `Stage` command that awaits a `Deliver` payload
/// to finish (the interactive protocols' second halves).
#[derive(Debug)]
enum PendingDeliver {
    /// disPCA: the basis broadcast is next.
    DispcaBasis,
    /// disSS: the sample allocation is next; the bicriteria solution
    /// carries over from step 1.
    DisssAllocation { bic: BicriteriaSolution },
}

enum StepOutcome {
    Reply(Response),
    Finished(Response, SourceRunReport),
    Aborted(String),
}

/// A summary held back for the tree topology's pairwise fold instead of
/// being uplinked directly. The message is the *post-wire* copy (encoded
/// and decoded once), so merging it with a peer's summary is bit-identical
/// to the server folding the two decoded uplinks itself.
#[derive(Debug)]
struct MergeBuffer {
    /// The buffered summary, exactly as a receiver would decode it.
    msg: Message,
    /// Truncation rank for SVD-summary merges (ignored for coresets).
    rank: usize,
    /// Wire size of the original leaf summary, reported on this
    /// source's first `Merged` response so the server can keep the
    /// classic per-source uplink ledger identical to the star run.
    leaf_bits: u64,
    /// Wire tag of the leaf summary (recovers the message kind).
    leaf_tag: u8,
    /// Message kind of the leaf summary, for the by-kind ledger.
    leaf_kind: &'static str,
    /// Whether `leaf_bits` has already been reported.
    charged: bool,
}

/// One data source of a server-driven protocol run.
#[derive(Debug)]
pub struct SourceExecutor<'a> {
    stages: &'a [Stage],
    params: &'a SummaryParams,
    id: usize,
    m: usize,
    part: Matrix,
    weights: Option<Vec<f64>>,
    delta: f64,
    basis: Option<Matrix>,
    basis_shared: bool,
    quantizer: Option<ekm_quant::RoundingQuantizer>,
    jl: JlBook,
    handed_off: bool,
    pending: Option<PendingDeliver>,
    /// Tree topology only: the summary awaiting pairwise merges.
    merge: Option<MergeBuffer>,
    report: SourceRunReport,
    /// Rounds answered so far (the first command of a run is round 1).
    round: u64,
    /// The last round's response, kept for `Command::Reissue` so a
    /// recovering driver can re-collect it without recomputation.
    last_response: Option<Response>,
    /// Cold replica shards held for other sources (canonical ring
    /// assignment, [`crate::params::replica_origins`]), untouched until
    /// a [`Command::Promote`] names their origin.
    replicas: BTreeMap<usize, Matrix>,
    /// Live personas for absorbed origins: full executors over the
    /// replica shard, fed by `Replay`/`Forward` wrappers.
    personas: BTreeMap<usize, SourceExecutor<'a>>,
    /// This executor's own finished report, held back while personas
    /// are still answering for their origins.
    finished: Option<SourceRunReport>,
}

impl<'a> SourceExecutor<'a> {
    /// Creates the executor for source `id` of `m`, owning `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= m` or `m == 0`.
    pub fn new(
        stages: &'a [Stage],
        params: &'a SummaryParams,
        id: usize,
        m: usize,
        shard: Matrix,
    ) -> SourceExecutor<'a> {
        assert!(m > 0 && id < m, "source id out of range");
        SourceExecutor {
            stages,
            params,
            id,
            m,
            part: shard,
            weights: None,
            delta: 0.0,
            basis: None,
            basis_shared: false,
            quantizer: None,
            jl: JlBook::default(),
            handed_off: false,
            pending: None,
            merge: None,
            report: SourceRunReport::default(),
            round: 0,
            last_response: None,
            replicas: BTreeMap::new(),
            personas: BTreeMap::new(),
            finished: None,
        }
    }

    /// Arms this executor as a replica holder: `replicas` maps each
    /// origin to a cold copy of its shard, answered for only after a
    /// [`Command::Promote`] names it.
    #[must_use]
    pub fn with_replicas(mut self, replicas: BTreeMap<usize, Matrix>) -> Self {
        self.replicas = replicas;
        self
    }

    /// Serves commands until the run finishes or fails.
    ///
    /// Takes `&mut self` so a transport failure leaves the executor's
    /// state intact: a source that loses its server can reconnect and
    /// call `serve` again on a fresh endpoint, answering replayed or
    /// reissued rounds from the same position (`ekm source --reconnect`).
    ///
    /// # Errors
    ///
    /// Transport failures, [`NetError::RemoteAbort`] when the driver
    /// aborts, and local compute/validation failures (which are also
    /// reported back to the driver as an `Err` response before
    /// returning).
    pub fn serve<E: SourceEndpoint>(&mut self, endpoint: &mut E) -> Result<SourceRunReport> {
        loop {
            let cmd = endpoint.recv_command().map_err(CoreError::Net)?;
            // The transport-level and failover vocabulary is handled
            // here, against the endpoint; `execute` sees everything
            // else (round commands, recovery, aborts).
            match cmd {
                Command::Deadline { ms } => {
                    endpoint.set_deadline(DeadlinePolicy::uniform(Duration::from_millis(ms)));
                    continue;
                }
                Command::Promote { origin } => {
                    self.promote(origin as usize, endpoint)?;
                    continue;
                }
                Command::Replay { origin, round, cmd } => {
                    self.replay(origin as usize, round, *cmd, endpoint)?;
                    continue;
                }
                Command::Forward { origin, cmd } => {
                    if let Some(report) = self.forward(origin as usize, *cmd, endpoint)? {
                        return Ok(report);
                    }
                    continue;
                }
                _ => {}
            }
            match self.execute(cmd) {
                Ok(StepOutcome::Reply(resp)) => {
                    endpoint.send_response(resp).map_err(CoreError::Net)?;
                }
                Ok(StepOutcome::Finished(resp, report)) => {
                    endpoint.send_response(resp).map_err(CoreError::Net)?;
                    if self.personas.is_empty() {
                        return Ok(report);
                    }
                    // Personas still owe rounds for their absorbed
                    // origins: keep serving until the last finishes.
                    self.finished = Some(report);
                }
                Ok(StepOutcome::Aborted(reason)) => {
                    return Err(CoreError::Net(NetError::RemoteAbort { reason }));
                }
                Err(e) => {
                    // Best-effort: tell the driver why before bailing.
                    let _ = endpoint.send_response(Response::Err {
                        reason: e.to_string(),
                    });
                    return Err(e);
                }
            }
        }
    }

    /// Executes one command against this executor's state — including
    /// the `Resume`/`Reissue` recovery vocabulary — and returns the
    /// outcome. Shared between a source's own serve loop and the
    /// persona dispatch of its replica host.
    fn execute(&mut self, cmd: Command) -> Result<StepOutcome> {
        let cmd = match cmd {
            Command::Resume { .. } => {
                return Ok(StepOutcome::Reply(Response::Resumed {
                    round: self.round,
                    fingerprint: self.fingerprint(),
                }));
            }
            Command::Reissue { round, cmd: inner } => {
                if round == self.round {
                    // Already executed: resend the cached response.
                    let resp = self.last_response.clone().ok_or(CoreError::Net(
                        NetError::ProtocolViolation {
                            context: "reissue",
                            expected: "a cached response for the reissued round",
                            got: format!("round {round} with no cached response"),
                        },
                    ))?;
                    return Ok(StepOutcome::Reply(resp));
                }
                if round != self.round + 1 {
                    return Err(CoreError::Net(NetError::ProtocolViolation {
                        context: "reissue",
                        expected: "the current or next round",
                        got: format!("round {round} at executor round {}", self.round),
                    }));
                }
                // Never received: execute the carried command fresh.
                *inner
            }
            other => other,
        };
        let is_round = cmd.is_round();
        if is_round {
            self.round += 1;
        }
        let out = self.step(cmd)?;
        if is_round {
            match &out {
                StepOutcome::Reply(resp) | StepOutcome::Finished(resp, _) => {
                    self.last_response = Some(resp.clone());
                }
                StepOutcome::Aborted(_) => {}
            }
        }
        Ok(out)
    }

    fn fingerprint(&self) -> u64 {
        state_fingerprint(
            self.round,
            self.report.uplink_bits,
            self.report.downlink_bits,
        )
    }

    /// Handles [`Command::Promote`]: (re)builds a fresh persona for
    /// `origin` from its cold replica shard. Idempotent by reset — a
    /// re-promotion after a driver crash starts the persona over, so
    /// the replay sequence reproduces the same state from any crash
    /// point. A host without the replica answers `Err` (the driver
    /// walks on to the next ring entry) but keeps serving its own
    /// shard.
    fn promote<E: SourceEndpoint>(&mut self, origin: usize, endpoint: &mut E) -> Result<()> {
        match self.replicas.get(&origin) {
            Some(shard) => {
                let persona =
                    SourceExecutor::new(self.stages, self.params, origin, self.m, shard.clone());
                self.personas.insert(origin, persona);
                endpoint
                    .send_response(Response::Promoted {
                        origin: origin as u64,
                        round: 0,
                    })
                    .map_err(CoreError::Net)
            }
            None => endpoint
                .send_response(Response::Err {
                    reason: format!(
                        "source {} holds no replica of source {origin}'s shard",
                        self.id
                    ),
                })
                .map_err(CoreError::Net),
        }
    }

    /// Handles [`Command::Replay`]: the persona re-runs one of the dead
    /// owner's completed rounds. The persona's response is swallowed —
    /// its bits are booked on the persona's own ledger, reproducing the
    /// owner's exactly — and only a `Replayed` position/fingerprint ack
    /// travels back.
    fn replay<E: SourceEndpoint>(
        &mut self,
        origin: usize,
        round: u64,
        cmd: Command,
        endpoint: &mut E,
    ) -> Result<()> {
        let persona =
            self.personas
                .get_mut(&origin)
                .ok_or(CoreError::Net(NetError::ProtocolViolation {
                    context: "replay",
                    expected: "a promoted persona for the origin",
                    got: format!("no persona for source {origin}"),
                }))?;
        if round == persona.round + 1 {
            match persona.execute(cmd) {
                Ok(StepOutcome::Reply(_) | StepOutcome::Finished(..)) => {}
                Ok(StepOutcome::Aborted(reason)) => {
                    return Err(CoreError::Net(NetError::RemoteAbort { reason }));
                }
                Err(e) => {
                    let _ = endpoint.send_response(Response::Err {
                        reason: e.to_string(),
                    });
                    return Err(e);
                }
            }
        } else if round != persona.round {
            return Err(CoreError::Net(NetError::ProtocolViolation {
                context: "replay",
                expected: "the persona's current or next round",
                got: format!("round {round} at persona round {}", persona.round),
            }));
        }
        let resp = Response::Replayed {
            origin: origin as u64,
            round: persona.round,
            fingerprint: persona.fingerprint(),
        };
        endpoint.send_response(resp).map_err(CoreError::Net)
    }

    /// Handles [`Command::Forward`]: the persona executes the carried
    /// live command and its response travels back wrapped in
    /// [`Response::Forwarded`]. Returns this executor's own held-back
    /// report when the last persona finishes after the host's own run
    /// already did.
    fn forward<E: SourceEndpoint>(
        &mut self,
        origin: usize,
        cmd: Command,
        endpoint: &mut E,
    ) -> Result<Option<SourceRunReport>> {
        let persona =
            self.personas
                .get_mut(&origin)
                .ok_or(CoreError::Net(NetError::ProtocolViolation {
                    context: "forward",
                    expected: "a promoted persona for the origin",
                    got: format!("no persona for source {origin}"),
                }))?;
        match persona.execute(cmd) {
            Ok(StepOutcome::Reply(resp)) => {
                endpoint
                    .send_response(Response::Forwarded {
                        origin: origin as u64,
                        resp: Box::new(resp),
                    })
                    .map_err(CoreError::Net)?;
                Ok(None)
            }
            Ok(StepOutcome::Finished(resp, _)) => {
                // The absorbed origin's run is over; its ledger was
                // already cross-checked by the driver's Fin handling.
                endpoint
                    .send_response(Response::Forwarded {
                        origin: origin as u64,
                        resp: Box::new(resp),
                    })
                    .map_err(CoreError::Net)?;
                self.personas.remove(&origin);
                if self.personas.is_empty() {
                    return Ok(self.finished.take());
                }
                Ok(None)
            }
            Ok(StepOutcome::Aborted(reason)) => {
                Err(CoreError::Net(NetError::RemoteAbort { reason }))
            }
            Err(e) => {
                let _ = endpoint.send_response(Response::Forwarded {
                    origin: origin as u64,
                    resp: Box::new(Response::Err {
                        reason: e.to_string(),
                    }),
                });
                Err(e)
            }
        }
    }

    fn done(&self, ops: u64, seconds: f64) -> Response {
        Response::Done {
            round: self.round,
            rows: self.part.rows() as u64,
            cols: self.part.cols() as u64,
            ops,
            seconds,
        }
    }

    /// Builds a charged uplink response and books its bits.
    fn up(&mut self, msg: &Message, ops: u64, seconds: f64) -> Response {
        let payload = Payload::of(msg);
        self.report.uplink_bits += payload.bits();
        *self.report.uplink_kinds.entry(msg.kind()).or_insert(0) += payload.bits();
        Response::Up {
            round: self.round,
            payload,
            ops,
            seconds,
        }
    }

    /// Whether summary uplinks go through the pairwise reduction tree
    /// instead of straight to the server (a single source is its own
    /// root, so it always stars).
    fn tree_mode(&self) -> bool {
        self.params.topology == Topology::Tree && self.m > 1
    }

    /// Tree-mode counterpart of [`Self::up`]: books the summary's wire
    /// size into this source's classic uplink ledger (so the ledgers
    /// match the star run bit for bit), then holds the *decoded* copy
    /// back for the merge rounds and acknowledges the stage with a
    /// plain `Done`.
    fn buffer_leaf(
        &mut self,
        msg: &Message,
        rank: usize,
        ops: u64,
        seconds: f64,
    ) -> Result<StepOutcome> {
        let payload = Payload::of(msg);
        // The leaf's bits are booked when they are *reported* (the first
        // `Merged` response of the gather), not here: the server charges
        // its classic ledger at that response, and a promoted replica's
        // replayed ledger must match the server's row at every completed
        // round boundary.
        let decoded = payload.decode().map_err(CoreError::Net)?;
        self.merge = Some(MergeBuffer {
            leaf_bits: payload.bits(),
            leaf_tag: payload.tag(),
            leaf_kind: msg.kind(),
            msg: decoded,
            rank,
            charged: false,
        });
        Ok(StepOutcome::Reply(self.done(ops, seconds)))
    }

    fn require_source_side(&self) -> Result<()> {
        if self.handed_off {
            return Err(CoreError::InvalidConfig {
                reason: "no stage may follow disss: the summary already lives at the server",
            });
        }
        Ok(())
    }

    fn require_no_pending(&self) -> Result<()> {
        if self.pending.is_some() {
            return Err(CoreError::Net(NetError::ProtocolViolation {
                context: "executor step",
                expected: "a deliver payload for the pending phase",
                got: "a different command".to_string(),
            }));
        }
        Ok(())
    }

    /// Re-expresses the shard in the basis' parent space and drops the
    /// basis (identical to the engine's `lift_out_of_basis`, on this
    /// source's copy of the basis).
    fn lift_out_of_basis(&mut self) -> Result<()> {
        if let Some(basis) = self.basis.take() {
            self.part = ops::matmul_transb(&self.part, &basis)?;
            self.basis_shared = false;
        }
        Ok(())
    }

    fn step(&mut self, cmd: Command) -> Result<StepOutcome> {
        match cmd {
            Command::Describe => Ok(StepOutcome::Reply(self.done(0, 0.0))),
            Command::Stage { index } => {
                self.require_no_pending()?;
                self.require_source_side()?;
                let stage = self.stages.get(index as usize).ok_or(CoreError::Net(
                    NetError::ProtocolViolation {
                        context: "stage command",
                        expected: "an index into the shared stage list",
                        got: format!("stage index {index}"),
                    },
                ))?;
                self.run_stage(stage)
            }
            Command::Deliver { payload } => {
                let msg = payload.decode().map_err(CoreError::Net)?;
                self.report.downlink_bits += payload.bits();
                *self.report.downlink_kinds.entry(msg.kind()).or_insert(0) += payload.bits();
                self.deliver(msg)
            }
            Command::TransmitBasis => {
                self.require_no_pending()?;
                self.require_source_side()?;
                let basis = self.basis.clone().ok_or(CoreError::Protocol {
                    reason: "transmit-basis on a source holding no basis",
                })?;
                let msg = Message::Basis {
                    basis,
                    precision: self.params.precision,
                };
                self.basis_shared = true;
                Ok(StepOutcome::Reply(self.up(&msg, 0, 0.0)))
            }
            Command::Transmit => {
                self.require_no_pending()?;
                self.require_source_side()?;
                self.transmit()
            }
            Command::Finish {
                uplink_bits,
                downlink_bits,
                centers_hash,
            } => {
                self.report.centers_hash = centers_hash;
                self.report.server_uplink_bits = uplink_bits;
                self.report.server_downlink_bits = downlink_bits;
                let resp = Response::Fin {
                    round: self.round,
                    uplink_bits: self.report.uplink_bits,
                    downlink_bits: self.report.downlink_bits,
                };
                Ok(StepOutcome::Finished(resp, self.report.clone()))
            }
            Command::MergeWith {
                payload,
                emit,
                last,
                ..
            } => {
                // A merge round may arrive while a deliver is pending
                // (disPCA buffers its summary before the basis comes
                // back), so no pending/side checks here.
                let MergeBuffer {
                    mut msg,
                    rank,
                    leaf_bits,
                    leaf_tag,
                    leaf_kind,
                    charged,
                } = self
                    .merge
                    .take()
                    .ok_or(CoreError::Net(NetError::ProtocolViolation {
                        context: "merge-with",
                        expected: "a buffered summary awaiting the tree fold",
                        got: "no merge buffer on this source".to_string(),
                    }))?;
                if let Some(p) = payload {
                    let peer = p.decode().map_err(CoreError::Net)?;
                    msg = merge_summary_messages(msg, peer, rank, self.params.precision)?;
                }
                // The leaf's wire size rides on the first merge response
                // of each gather so the server can charge the classic
                // per-source uplink ledger exactly once, star-style.
                let (leaf_bits, leaf_tag) = if charged {
                    (0, 0)
                } else {
                    // Book the one-time leaf bits in lockstep with the
                    // server, which charges them off this response.
                    self.report.uplink_bits += leaf_bits;
                    *self.report.uplink_kinds.entry(leaf_kind).or_insert(0) += leaf_bits;
                    (leaf_bits, leaf_tag)
                };
                let payload = if emit {
                    Some(Payload::of(&msg))
                } else {
                    self.merge = Some(MergeBuffer {
                        msg,
                        rank,
                        leaf_bits: 0,
                        leaf_tag: 0,
                        leaf_kind: "",
                        charged: true,
                    });
                    None
                };
                Ok(StepOutcome::Reply(Response::Merged {
                    round: self.round,
                    payload,
                    leaf_bits,
                    leaf_tag,
                    last,
                }))
            }
            Command::Abort { reason } => Ok(StepOutcome::Aborted(reason)),
            other => Err(CoreError::Net(NetError::ProtocolViolation {
                context: "executor step",
                expected: "a known command",
                got: other.name().to_string(),
            })),
        }
    }

    fn run_stage(&mut self, stage: &Stage) -> Result<StepOutcome> {
        let k = self.params.k;
        match stage {
            Stage::Dr(cfg) => {
                let t0 = Instant::now();
                self.lift_out_of_basis()?;
                let cur = self.part.cols();
                let (stream, before_role) = self.jl.next_stream();
                let target = jl_target_dim(cfg, self.params, cur, before_role);
                let pi = MaybeProjection::generate(
                    self.params.jl_kind,
                    cur,
                    target,
                    derive_seed(self.params.seed, stream),
                );
                let ops = complexity::matmul(self.part.rows(), cur, target);
                self.part = pi.project(&self.part)?;
                self.jl.any_reduction = true;
                Ok(StepOutcome::Reply(
                    self.done(ops, t0.elapsed().as_secs_f64()),
                ))
            }
            Stage::Cr(cfg) => {
                if self.m != 1 {
                    return Err(CoreError::InvalidConfig {
                        reason:
                            "fss is a single-source stage (multi-source pipelines use dispca/disss)",
                    });
                }
                if self.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "multiple coreset stages in one pipeline",
                    });
                }
                let t0 = Instant::now();
                self.lift_out_of_basis()?;
                let cur = self.part.cols();
                let (t, size) = fss_dims(cfg, self.params, cur);
                let ops = complexity::fss(self.part.rows(), cur, k);
                let fss = FssBuilder::new(k)
                    .with_pca_dim(t)
                    .with_sample_size(size)
                    .with_seed(derive_seed(self.params.seed, seeds::FSS))
                    .with_compute(self.params.compute)
                    .build(&self.part)?;
                self.part = fss.coordinates().clone();
                self.weights = Some(fss.weights().to_vec());
                self.delta = fss.delta();
                self.basis = Some(fss.basis().clone());
                self.basis_shared = false;
                self.jl.any_reduction = true;
                Ok(StepOutcome::Reply(
                    self.done(ops, t0.elapsed().as_secs_f64()),
                ))
            }
            Stage::Stream(cfg) => {
                if self.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "multiple coreset stages in one pipeline",
                    });
                }
                let t0 = Instant::now();
                let (leaf, per_source) = stream_plan(cfg, self.params, self.m);
                let ops = complexity::stream(self.part.rows(), self.part.cols(), k, leaf);
                let stream_seed = derive_seed(self.params.seed, seeds::STREAM);
                let mut stream = StreamingCoreset::new(k, leaf, per_source)
                    .with_seed(derive_seed(stream_seed, self.id as u64))
                    .with_compute(self.params.compute);
                stream.push_batch(&self.part).map_err(CoreError::Coreset)?;
                let coreset = stream.finalize_reduced().map_err(CoreError::Coreset)?;
                let (points, w, delta) = coreset.into_parts();
                self.part = points;
                self.weights = Some(w);
                self.delta = delta;
                self.jl.any_reduction = true;
                Ok(StepOutcome::Reply(
                    self.done(ops, t0.elapsed().as_secs_f64()),
                ))
            }
            Stage::Qt(cfg) => {
                self.quantizer = Some(resolve_quantizer(cfg, self.params)?);
                Ok(StepOutcome::Reply(self.done(0, 0.0)))
            }
            Stage::DisPca(cfg) => {
                if self.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "dispca after a coreset stage is unsupported",
                    });
                }
                self.lift_out_of_basis()?;
                let cur = self.part.cols();
                let t = dispca_rank(cfg, self.params, cur);
                let t0 = Instant::now();
                let (singular_values, v) = local_svd_summary(&self.part, t)?;
                let ops = complexity::svd(self.part.rows(), cur);
                let secs = t0.elapsed().as_secs_f64();
                let msg = Message::SvdSummary {
                    singular_values,
                    basis: v,
                    precision: self.params.precision,
                };
                self.pending = Some(PendingDeliver::DispcaBasis);
                if self.tree_mode() {
                    return self.buffer_leaf(&msg, t, ops, secs);
                }
                Ok(StepOutcome::Reply(self.up(&msg, ops, secs)))
            }
            Stage::DisSs(cfg) => {
                if self.weights.is_some() {
                    return Err(CoreError::InvalidConfig {
                        reason: "disss after a coreset stage is unsupported",
                    });
                }
                if disss_budget(cfg, self.params) == 0 {
                    return Err(CoreError::InvalidConfig {
                        reason: "zero disSS sample budget",
                    });
                }
                let seed = derive_seed(self.params.seed, seeds::FSS);
                let t0 = Instant::now();
                let bic =
                    disss_local_bicriteria(&self.part, k, seed, self.id, self.params.compute)?;
                let ops = complexity::bicriteria(self.part.rows(), self.part.cols(), k);
                let secs = t0.elapsed().as_secs_f64();
                let cost = bic.cost;
                self.pending = Some(PendingDeliver::DisssAllocation { bic });
                Ok(StepOutcome::Reply(self.up(
                    &Message::CostReport { cost },
                    ops,
                    secs,
                )))
            }
        }
    }

    fn deliver(&mut self, msg: Message) -> Result<StepOutcome> {
        match (self.pending.take(), msg) {
            (Some(PendingDeliver::DispcaBasis), Message::Basis { basis, .. }) => {
                // disPCA step 3: project onto the basis *as decoded from
                // the wire* — at F32 precision the rounded one, exactly
                // what a real edge device holds.
                let t0 = Instant::now();
                let d = self.part.cols();
                let ops = complexity::matmul(self.part.rows(), d, basis.cols());
                self.part = ops::matmul(&self.part, &basis)?;
                self.basis = Some(basis);
                self.basis_shared = true;
                self.jl.any_reduction = true;
                Ok(StepOutcome::Reply(
                    self.done(ops, t0.elapsed().as_secs_f64()),
                ))
            }
            (Some(PendingDeliver::DisssAllocation { bic }), Message::SampleAllocation { size }) => {
                let s_i = size as usize;
                let seed = derive_seed(self.params.seed, seeds::FSS);
                let t0 = Instant::now();
                let msg = disss_local_sample(
                    &self.part,
                    &bic,
                    s_i,
                    seed,
                    self.id,
                    self.quantizer.as_ref(),
                    self.params.precision,
                    self.params.compute,
                )?;
                let mut ops = complexity::assign(self.part.rows(), self.part.cols(), self.params.k);
                if self.quantizer.is_some() {
                    ops += complexity::quantize(s_i + self.params.k, self.part.cols());
                }
                let secs = t0.elapsed().as_secs_f64();
                // The summary now lives at the server.
                self.part = Matrix::zeros(0, 0);
                self.handed_off = true;
                if self.tree_mode() {
                    return self.buffer_leaf(&msg, 0, ops, secs);
                }
                Ok(StepOutcome::Reply(self.up(&msg, ops, secs)))
            }
            (pending, msg) => Err(CoreError::Net(NetError::ProtocolViolation {
                context: "deliver payload",
                expected: match pending {
                    Some(PendingDeliver::DispcaBasis) => "a basis broadcast",
                    Some(PendingDeliver::DisssAllocation { .. }) => "a sample allocation",
                    None => "no downlink payload",
                },
                got: msg.kind().to_string(),
            })),
        }
    }

    /// The final summary uplink: the same message the engine's transmit
    /// phase builds for this source.
    fn transmit(&mut self) -> Result<StepOutcome> {
        let quantizer = self.quantizer;
        let aux = self.params.precision;
        let ops = if quantizer.is_some() {
            complexity::quantize(self.part.rows(), self.part.cols())
        } else {
            0
        };
        let t0 = Instant::now();
        let msg = match self.weights.take() {
            Some(weights) => {
                let (wire, precision) = quantize_for_wire(&self.part, quantizer.as_ref());
                Message::Coreset {
                    points: wire,
                    weights,
                    delta: self.delta,
                    precision,
                    weights_precision: aux,
                }
            }
            None => match &quantizer {
                Some(q) => {
                    let (wire, precision) = quantize_for_wire(&self.part, Some(q));
                    Message::Coreset {
                        points: wire,
                        weights: vec![1.0; self.part.rows()],
                        delta: 0.0,
                        precision,
                        weights_precision: aux,
                    }
                }
                None => Message::RawData {
                    points: std::mem::replace(&mut self.part, Matrix::zeros(0, 0)),
                },
            },
        };
        let secs = t0.elapsed().as_secs_f64();
        if self.tree_mode() {
            let outcome = self.buffer_leaf(&msg, 0, ops, secs);
            self.part = Matrix::zeros(0, 0);
            return outcome;
        }
        let resp = self.up(&msg, ops, secs);
        // Transmission is the shard's last use.
        self.part = Matrix::zeros(0, 0);
        Ok(StepOutcome::Reply(resp))
    }
}
