//! The server-side driver of the server-driven protocol.
//!
//! [`run_driver`] executes a [`StagePipeline`] plan against remote
//! sources over any [`ekm_net::CommandTransport`]: it emits one command
//! round per protocol phase, folds the responses in **fixed source-id
//! order**, and performs every server-side computation (the disPCA
//! global SVD, the disSS budget allocation and merge, the final solve
//! and center lift) with the same shared functions the in-process
//! engine uses — so its outputs (centers, digests, [`NetworkStats`],
//! deterministic op counts) are bit-identical to the simulation.
//!
//! The driver holds **no shard data**. Its knowledge of the sources is
//! the control-plane metadata they report (shard shapes, per-phase op
//! counts) plus the decoded data-plane payloads the paper's protocols
//! legitimately give the server. JL projections are regenerated from
//! the shared seed — the driver replicates the same [`JlBook`]
//! seed-stream bookkeeping as the executors, exactly like the paper's
//! "shared randomness" remark prescribes.
//!
//! [`StagePipeline::run_channel`] wires the driver to in-process
//! executor threads (one per shard, each owning only its shard); the
//! event-driven TCP backend ([`ekm_net::event`]) runs the same driver
//! across real processes.

use crate::engine::JlBook;
use crate::executor::{state_fingerprint, SourceExecutor, SourceRunReport};
use crate::health::{HealthMachine, RecoveryAction};
use crate::output::{Degradation, Recovery};
use crate::params::{replica_holders, replica_origins, Topology};
use crate::pipelines::seeds;
use crate::projection::MaybeProjection;
use crate::server::{lift_centers_through_basis, solve_weighted_kmeans};
use crate::stage::{dispca_rank, disss_budget, jl_target_dim, resolve_quantizer, Stage};
use crate::{distributed, CoreError, Result, RunOutput, StagePipeline};
use ekm_coreset::Coreset;
use ekm_linalg::random::derive_seed;
use ekm_linalg::Matrix;
use ekm_net::messages::Message;
use ekm_net::protocol::{
    channel_pairs, Command, CommandTransport, DeadlinePolicy, EncodedCommand, Payload, Response,
};
use ekm_net::{NetError, NetworkStats, RoutingTransport, RunDigest};
use std::collections::BTreeMap;
use std::time::Instant;

/// Destructures a `Done` response; maps executor errors and type
/// mismatches to typed failures.
fn expect_done(resp: Response, context: &'static str) -> Result<(u64, u64, u64, f64)> {
    match resp {
        Response::Done {
            rows,
            cols,
            ops,
            seconds,
            ..
        } => Ok((rows, cols, ops, seconds)),
        Response::Err { reason } => Err(CoreError::Net(NetError::RemoteAbort { reason })),
        other => Err(CoreError::Net(NetError::ProtocolViolation {
            context,
            expected: "a done response",
            got: other.name().to_string(),
        })),
    }
}

/// Destructures an `Up` response.
fn expect_up(resp: Response, context: &'static str) -> Result<(Payload, u64, f64)> {
    match resp {
        Response::Up {
            payload,
            ops,
            seconds,
            ..
        } => Ok((payload, ops, seconds)),
        Response::Err { reason } => Err(CoreError::Net(NetError::RemoteAbort { reason })),
        other => Err(CoreError::Net(NetError::ProtocolViolation {
            context,
            expected: "an uplink response",
            got: other.name().to_string(),
        })),
    }
}

/// Destructures a `Merged` response, returning its optional surrendered
/// buffer. The leaf accounting fields are the transport's business
/// ([`ekm_net::protocol::charge_response`]), not the driver's.
fn expect_merged(resp: Response, context: &'static str) -> Result<Option<Payload>> {
    match resp {
        Response::Merged { payload, .. } => Ok(payload),
        Response::Err { reason } => Err(CoreError::Net(NetError::RemoteAbort { reason })),
        other => Err(CoreError::Net(NetError::ProtocolViolation {
            context,
            expected: "a merged response",
            got: other.name().to_string(),
        })),
    }
}

/// Per-source liveness bookkeeping layered over the raw transport — the
/// driver's straggler-handling seam.
///
/// Every round command is remembered per source (the full history, in
/// round order) and a [`HealthMachine`] over the source's canonical
/// replica ring decides what a transport-level [`Response::SourceLost`]
/// (a missed deadline or a dropped connection) escalates to: the first
/// loss triggers exactly one [`Command::Reissue`]; a second promotes
/// the next replica holder — the dead owner's completed rounds are
/// replayed onto a fresh persona there and the in-flight round is
/// reissued through the new route — and only when the ring is exhausted
/// does the run *degrade*: the source is marked lost, subsequent sends
/// skip it silently, and every fold proceeds over the survivors.
/// Responses carrying a round number below the source's current round
/// are duplicates surfaced by a reissue race and are dropped.
///
/// Loss during the describe round is a hard error — the driver cannot
/// bound the cost of dropping a shard whose size it never learned.
struct RoundNet<'a, T: CommandTransport> {
    inner: &'a mut T,
    alive: Vec<bool>,
    lost: Vec<Option<String>>,
    /// Every round command sent per source, in round order — the replay
    /// vocabulary for promoting a replica mid-run.
    history: Vec<Vec<Command>>,
    /// Per-source failover state over the canonical replica ring.
    health: Vec<HealthMachine>,
    /// Responses harvested out of turn (a host answering its own round
    /// while the driver was mid-promotion on its connection).
    parked: Vec<std::collections::VecDeque<Response>>,
    /// Completed rounds replayed onto promoted personas.
    replayed_rounds: u64,
    /// False until the describe round completes.
    degradable: bool,
}

impl<'a, T: CommandTransport> RoundNet<'a, T> {
    fn new(inner: &'a mut T, replication: usize) -> Self {
        let m = inner.sources();
        RoundNet {
            inner,
            alive: vec![true; m],
            lost: vec![None; m],
            history: vec![Vec::new(); m],
            health: (0..m)
                .map(|i| HealthMachine::new(replica_holders(i, m, replication)))
                .collect(),
            parked: vec![std::collections::VecDeque::new(); m],
            replayed_rounds: 0,
            degradable: false,
        }
    }

    fn survivors(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    fn rounds(&self, i: usize) -> u64 {
        self.history[i].len() as u64
    }

    fn stats(&self) -> &NetworkStats {
        self.inner.stats()
    }

    fn mark_lost(&mut self, i: usize, reason: String) -> Result<()> {
        if !self.degradable {
            return Err(CoreError::Net(NetError::Transport {
                context: "describe round",
                detail: format!("source {i} failed before describing its shard: {reason}"),
            }));
        }
        self.alive[i] = false;
        self.lost[i] = Some(reason);
        if self.survivors() == 0 {
            return Err(CoreError::Net(NetError::Transport {
                context: "fault handling",
                detail: "every source was lost; nothing left to degrade onto".to_string(),
            }));
        }
        Ok(())
    }

    /// Sends to `i` unless it is already lost. A transport failure runs
    /// the health machine (reissue → promote → degrade); every other
    /// error kind propagates.
    fn send(&mut self, i: usize, cmd: &Command) -> Result<()> {
        if !self.alive[i] {
            return Ok(());
        }
        if cmd.is_round() {
            self.history[i].push(cmd.clone());
        }
        match self.inner.send(i, cmd) {
            Ok(()) => Ok(()),
            Err(NetError::Transport { context, detail }) => {
                let reason = format!("send failed during {context}: {detail}");
                self.handle_loss(i, reason).map(|_| ())
            }
            Err(e) => Err(CoreError::Net(e)),
        }
    }

    /// [`send`](Self::send) over a shared encoding: a broadcast round is
    /// encoded once and every live source gets the same bytes. History
    /// and loss handling are identical to a per-source send.
    fn send_enc(&mut self, i: usize, enc: &EncodedCommand) -> Result<()> {
        if !self.alive[i] {
            return Ok(());
        }
        if enc.command().is_round() {
            self.history[i].push(enc.command().clone());
        }
        match self.inner.send_encoded(i, enc) {
            Ok(()) => Ok(()),
            Err(NetError::Transport { context, detail }) => {
                let reason = format!("send failed during {context}: {detail}");
                self.handle_loss(i, reason).map(|_| ())
            }
            Err(e) => Err(CoreError::Net(e)),
        }
    }

    /// Receives source `i`'s answer to the current round, or `None` when
    /// the source is (or just became) lost.
    fn recv(&mut self, i: usize) -> Result<Option<Response>> {
        if !self.alive[i] {
            return Ok(None);
        }
        loop {
            let resp = match self.parked[i].pop_front() {
                Some(resp) => Ok(resp),
                None => self.inner.recv(i),
            };
            match resp {
                Ok(Response::SourceLost { reason }) => {
                    if !self.handle_loss(i, reason)? {
                        return Ok(None);
                    }
                }
                Ok(resp) => {
                    if let Some(r) = resp.round() {
                        if r < self.rounds(i) {
                            // A duplicate from before the reissue.
                            continue;
                        }
                    }
                    self.health[i].on_response();
                    return Ok(Some(resp));
                }
                Err(e) => return Err(CoreError::Net(e)),
            }
        }
    }

    /// Runs the health machine over a transport loss on source `i`.
    /// Returns whether the source is still answerable (a reissue or a
    /// promotion is in flight) or was marked lost (`false` — the round
    /// proceeds without it). The escalation loop terminates because
    /// every iteration either succeeds or consumes a replica.
    fn handle_loss(&mut self, i: usize, reason: String) -> Result<bool> {
        if !self.degradable || self.history[i].is_empty() {
            self.mark_lost(i, reason)?;
            return Ok(false);
        }
        let mut action = self.health[i].on_loss();
        loop {
            match action {
                RecoveryAction::Reissue => {
                    if self.reissue(i).is_ok() {
                        return Ok(true);
                    }
                    // The reissue could not even be sent: escalate.
                    action = self.health[i].on_loss();
                }
                RecoveryAction::Promote { host } => {
                    if self.alive[host] && self.promote(i, host).is_ok() {
                        return Ok(true);
                    }
                    action = self.health[i].on_promotion_failed();
                }
                RecoveryAction::Degrade => {
                    self.mark_lost(i, reason)?;
                    return Ok(false);
                }
            }
        }
    }

    /// Promotes `host`'s cold replica of `i`'s shard: arms the routing
    /// layer, replays the dead owner's *completed* rounds onto the fresh
    /// persona, verifies the rebuilt state against the server's ledger,
    /// and reissues the in-flight round through the new route. During
    /// journal replay only the promotion record is consumed — the
    /// journal re-fires the recorded wire sequence at reconcile time.
    fn promote(&mut self, i: usize, host: usize) -> std::result::Result<(), NetError> {
        self.inner.promote(i, host)?;
        if self.inner.replaying() {
            return Ok(());
        }
        let completed = self.history[i].len().saturating_sub(1);
        let fingerprint = replay_rounds(
            &mut *self.inner,
            i,
            host,
            &self.history[i][..completed],
            &mut self.parked,
        )?;
        self.replayed_rounds += completed as u64;
        if completed > 0 {
            // The persona's rebuilt ledger must match the server's row
            // for the dead owner — minus the in-flight command, charged
            // at send time but only reaching the persona via the
            // reissue below.
            let inflight = match self.history[i].last() {
                Some(Command::Deliver { payload }) => payload.bits(),
                _ => 0,
            };
            let want = state_fingerprint(
                completed as u64,
                self.stats().uplink_bits(i),
                self.stats().downlink_bits(i) - inflight,
            );
            if fingerprint != want {
                return Err(NetError::Divergence {
                    source: i,
                    direction: "replica replay",
                });
            }
        }
        self.reissue(i)
    }

    /// Re-sends the current round command wrapped in [`Command::Reissue`]
    /// directly on the inner transport: the executor answers from its
    /// response cache if it already ran the round, or runs it fresh if
    /// the original command never arrived. Retransmissions are control
    /// plane — they carry recovery overhead, not protocol cost, and are
    /// not charged to [`NetworkStats`].
    fn reissue(&mut self, i: usize) -> std::result::Result<(), NetError> {
        let cmd = self.history[i].last().cloned().expect("checked by caller");
        self.inner.send(
            i,
            &Command::Reissue {
                round: self.rounds(i),
                cmd: Box::new(cmd),
            },
        )
    }

    /// The recovery record for the run, or `None` if no promotion
    /// happened. Only sources still alive at the end count as recovered
    /// — a promoted-then-degraded source belongs to the degradation
    /// record — but replayed rounds are counted for every attempt.
    fn recovery(&self) -> Option<Recovery> {
        let promoted: Vec<(usize, usize)> = self
            .health
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[i])
            .filter_map(|(i, h)| h.host().map(|host| (i, host)))
            .collect();
        if promoted.is_empty() && self.replayed_rounds == 0 {
            return None;
        }
        Some(Recovery {
            promoted,
            replayed_rounds: self.replayed_rounds,
        })
    }

    /// The degradation record for the run, or `None` if every source
    /// survived. `rows` is the per-source shard size from the describe
    /// round; the bound is the documented `(1 + ε) / (1 − p)` heuristic.
    fn degradation(&self, rows: &[u64], epsilon: f64) -> Option<Degradation> {
        let lost_sources: Vec<(usize, String)> = self
            .lost
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r.clone())))
            .collect();
        if lost_sources.is_empty() {
            return None;
        }
        let rows_total: usize = rows.iter().map(|&r| r as usize).sum();
        let rows_lost: usize = lost_sources.iter().map(|&(i, _)| rows[i] as usize).sum();
        let frac = rows_lost as f64 / rows_total.max(1) as f64;
        Some(Degradation {
            lost_sources,
            rows_lost,
            rows_total,
            cost_ratio_bound: (1.0 + epsilon) / (1.0 - frac),
        })
    }
}

/// Replays `history` (the dead owner's completed rounds, in order) onto
/// the persona `host` just built for `origin`, waiting out each
/// [`Response::Replayed`] acknowledgement before the next round.
/// Returns the persona's final state fingerprint (trivial when the
/// history is empty — the persona is still at round zero).
///
/// The host may interleave answers to its *own* in-flight round on the
/// shared connection; those are parked for the driver's later
/// [`RoundNet::recv`] rather than dropped. Replay frames are charged to
/// the run's replica-overhead counters by the transport, never to the
/// classic ledgers.
fn replay_rounds<T: CommandTransport>(
    net: &mut T,
    origin: usize,
    host: usize,
    history: &[Command],
    parked: &mut [std::collections::VecDeque<Response>],
) -> std::result::Result<u64, NetError> {
    let mut fingerprint = state_fingerprint(0, 0, 0);
    for (k, cmd) in history.iter().enumerate() {
        let round = (k + 1) as u64;
        net.send(
            host,
            &Command::Replay {
                origin: origin as u64,
                round,
                cmd: Box::new(cmd.clone()),
            },
        )?;
        loop {
            match net.recv(host)? {
                Response::Replayed {
                    origin: o,
                    round: r,
                    fingerprint: f,
                } if o as usize == origin && r == round => {
                    fingerprint = f;
                    break;
                }
                Response::SourceLost { reason } => {
                    return Err(NetError::Transport {
                        context: "replica replay",
                        detail: reason,
                    });
                }
                Response::Err { reason } => {
                    return Err(NetError::RemoteAbort { reason });
                }
                // A stale acknowledgement from an earlier (abandoned)
                // replay of the same origin: the fresh persona re-walks
                // the same rounds, so old duplicates are skipped.
                Response::Replayed { .. } | Response::Promoted { .. } => {}
                resp if resp.round().is_some() => parked[host].push_back(resp),
                other => {
                    return Err(NetError::ProtocolViolation {
                        context: "replica replay",
                        expected: "a replayed acknowledgement",
                        got: other.name().to_string(),
                    });
                }
            }
        }
    }
    Ok(fingerprint)
}

/// Gather ids for [`Command::MergeWith`], one per tree-reduced phase.
const GATHER_DISPCA: u8 = 1;
const GATHER_DISSS: u8 = 2;
const GATHER_TRANSMIT: u8 = 3;

/// A tree position's occupant: the source currently holding the folded
/// summary of `origins` (its own leaf plus every subtree merged in).
struct Holder {
    source: usize,
    origins: Vec<usize>,
}

/// Marks every source whose summary `holder` had absorbed as lost — the
/// data sat in a buffer that just disappeared with the holder. The
/// holder's own source is skipped (the transport loss already marked
/// it), as is anything already lost for its own reasons.
fn mark_absorbed_lost<T: CommandTransport>(
    net: &mut RoundNet<'_, T>,
    holder: &Holder,
) -> Result<()> {
    for &o in &holder.origins {
        if o != holder.source && net.alive[o] {
            net.mark_lost(
                o,
                format!("summary absorbed by lost source {}", holder.source),
            )?;
        }
    }
    Ok(())
}

/// The tree topology's reduction: pairwise merges along the canonical
/// [`distributed::merge_schedule`] over the sources that buffered a
/// summary this gather, halving the active set each level until one
/// root delivers the folded result — `ceil(log2 s)` merge levels plus
/// the root emit, with the server folding a single input instead of
/// `s`.
///
/// Peer traffic is routed through the server in v1 (send the emitter a
/// bare `MergeWith`, forward its surrendered buffer to the partner), so
/// a holder lost *after* emitting strands its summary server-side
/// rather than losing it: stranded summaries join the root in the
/// returned list, ordered by tree position, and the driver folds them
/// with the same shared functions the star path uses. A holder lost
/// *before* emitting takes every absorbed origin down with it — the
/// degradation record then names the whole subtree.
fn tree_gather<T: CommandTransport>(
    net: &mut RoundNet<'_, T>,
    responders: &[usize],
    gather: u8,
) -> Result<Vec<Message>> {
    let mut positions: Vec<Option<Holder>> = responders
        .iter()
        .map(|&source| {
            Some(Holder {
                source,
                origins: vec![source],
            })
        })
        .collect();
    // Summaries that already transited the server when their next
    // holder died, plus (last) the root's delivery.
    let mut finals: Vec<(usize, Payload)> = Vec::new();
    let levels = distributed::merge_schedule(positions.len());
    let depth = levels.len() as u64;
    for (lvl, pairs) in levels.into_iter().enumerate() {
        let active = positions.iter().flatten().count() as u64;
        for (pi, pj) in pairs {
            let Some(src) = positions[pj].take() else {
                continue;
            };
            let Some(dst_source) = positions[pi].as_ref().map(|h| h.source) else {
                // The partner is gone: the holder advances unpaired.
                positions[pi] = Some(src);
                continue;
            };
            net.send(
                src.source,
                &Command::MergeWith {
                    gather,
                    level: lvl as u64,
                    active,
                    payload: None,
                    emit: true,
                    last: false,
                },
            )?;
            let Some(resp) = net.recv(src.source)? else {
                mark_absorbed_lost(net, &src)?;
                continue;
            };
            let payload = expect_merged(resp, "tree merge emit")?.ok_or(CoreError::Net(
                NetError::ProtocolViolation {
                    context: "tree merge emit",
                    expected: "a surrendered merge buffer",
                    got: "a merged response with no payload".to_string(),
                },
            ))?;
            net.send(
                dst_source,
                &Command::MergeWith {
                    gather,
                    level: lvl as u64,
                    active,
                    payload: Some(payload.clone()),
                    emit: false,
                    last: false,
                },
            )?;
            match net.recv(dst_source)? {
                Some(resp) => {
                    expect_merged(resp, "tree merge fold")?;
                    positions[pi]
                        .as_mut()
                        .expect("holder checked above")
                        .origins
                        .extend(src.origins);
                }
                None => {
                    // The destination died holding its subtree, but the
                    // emitted summary already reached the server: it is
                    // stranded here and joins the server-side fold.
                    let dst = positions[pi].take().expect("holder checked above");
                    mark_absorbed_lost(net, &dst)?;
                    finals.push((pj, payload));
                }
            }
        }
    }
    // The root delivers the folded tree — the server's one fold input.
    let active = positions.iter().flatten().count() as u64;
    if let Some(pos) = positions.iter().position(Option::is_some) {
        let root = positions[pos].take().expect("found above");
        net.send(
            root.source,
            &Command::MergeWith {
                gather,
                level: depth,
                active,
                payload: None,
                emit: true,
                last: true,
            },
        )?;
        match net.recv(root.source)? {
            Some(resp) => {
                let payload = expect_merged(resp, "tree root emit")?.ok_or(CoreError::Net(
                    NetError::ProtocolViolation {
                        context: "tree root emit",
                        expected: "the folded root summary",
                        got: "a merged response with no payload".to_string(),
                    },
                ))?;
                finals.push((pos, payload));
            }
            None => mark_absorbed_lost(net, &root)?,
        }
    }
    finals.sort_by_key(|&(pos, _)| pos);
    finals
        .iter()
        .map(|(_, p)| p.decode().map_err(CoreError::Net))
        .collect()
}

/// The driver's plan-derived shadow of the distributed state: everything
/// the engine's `SummaryState` tracks *except* the data.
struct DriverState {
    /// Working-space dimensionality (updated from verified responses).
    cur: usize,
    /// Whether the sources hold coordinates inside a basis.
    has_basis: bool,
    /// Whether the server already holds that basis.
    basis_shared: bool,
    /// Dimensionality of the basis' parent space.
    basis_parent: usize,
    /// The server's copy of the basis (disPCA: the full-precision
    /// global basis; FSS: the decoded uplink), for the final lift.
    server_basis: Option<Matrix>,
    /// Whether a CR stage has produced per-source weighted summaries.
    weights_mode: bool,
    /// Whether disSS moved the summary to the server.
    handed_off: bool,
    /// The merged summary once disSS ran.
    server_summary: Option<(Matrix, Vec<f64>)>,
    /// Positional JL bookkeeping (identical to every executor's).
    jl: JlBook,
    /// JL projections in application order, for the final lift.
    projections: Vec<MaybeProjection>,
    source_seconds: f64,
    server_seconds: f64,
    source_ops: u64,
}

/// Runs the pipeline plan as the protocol server over `net`.
///
/// On any driver-side failure every source receives a best-effort
/// [`Command::Abort`] carrying the reason, so executors terminate with
/// a typed error instead of waiting out their timeout.
///
/// # Errors
///
/// Propagates configuration, numeric, transport, and protocol failures.
pub fn run_driver<T: CommandTransport>(pipe: &StagePipeline, net: &mut T) -> Result<RunOutput> {
    match drive(pipe, net) {
        Ok(out) => Ok(out),
        Err(e) => {
            let reason = e.to_string();
            for i in 0..net.sources() {
                let _ = net.send(
                    i,
                    &Command::Abort {
                        reason: reason.clone(),
                    },
                );
            }
            Err(e)
        }
    }
}

fn drive<T: CommandTransport>(pipe: &StagePipeline, net: &mut T) -> Result<RunOutput> {
    let params = pipe.params();
    let m = net.sources();
    let up0 = net.stats().total_uplink_bits();
    let down0 = net.stats().total_downlink_bits();

    // A non-default deadline policy is announced before any round: the
    // transport arms its own timers, and every source re-arms its
    // endpoint. `Deadline` takes no response and is never journaled.
    if params.deadline != DeadlinePolicy::default() {
        net.set_deadline(params.deadline);
        let ms = params.deadline.command.as_millis() as u64;
        let enc = EncodedCommand::new(Command::Deadline { ms });
        for i in 0..m {
            net.send_encoded(i, &enc)?;
        }
    }

    let mut rnet = RoundNet::new(net, params.replication);

    // Round 0: every source describes its shard; the driver performs the
    // same validation the engine runs on the materialized shards. Loss
    // here is unrecoverable — a shard of unknown size cannot be dropped
    // within a quantified bound.
    let describe = EncodedCommand::new(Command::Describe);
    for i in 0..m {
        rnet.send_enc(i, &describe)?;
    }
    let mut rows = vec![0u64; m];
    let mut d = 0usize;
    for (i, row) in rows.iter_mut().enumerate() {
        let resp = rnet.recv(i)?.ok_or(CoreError::Protocol {
            reason: "a source was lost during the describe round",
        })?;
        let (r, c, _, _) = expect_done(resp, "describe round")?;
        *row = r;
        if i == 0 {
            d = c as usize;
        } else if c as usize != d {
            return Err(CoreError::InvalidConfig {
                reason: "shards disagree on dimensionality",
            });
        }
    }
    let total_n: usize = rows.iter().map(|&r| r as usize).sum();
    params.validate(total_n, d)?;
    rnet.degradable = true;

    let mut st = DriverState {
        cur: d,
        has_basis: false,
        basis_shared: false,
        basis_parent: d,
        server_basis: None,
        weights_mode: false,
        handed_off: false,
        server_summary: None,
        jl: JlBook::default(),
        projections: Vec::new(),
        source_seconds: 0.0,
        server_seconds: 0.0,
        source_ops: 0,
    };

    for (idx, stage) in pipe.stages().iter().enumerate() {
        if st.handed_off {
            return Err(CoreError::InvalidConfig {
                reason: "no stage may follow disss: the summary already lives at the server",
            });
        }
        run_stage(pipe, &mut rnet, &mut st, idx as u32, stage, m)?;
    }

    finalize(pipe, &mut rnet, st, m, up0, down0, &rows)
}

/// Drops the driver's basis bookkeeping, mirroring the executors'
/// `lift_out_of_basis` (the sources re-expand into the parent space).
fn drop_basis(st: &mut DriverState) {
    if st.has_basis {
        st.cur = st.basis_parent;
        st.has_basis = false;
        st.basis_shared = false;
        st.server_basis = None;
    }
}

/// One `Stage` command to every surviving source, responses folded as
/// `Done`s. Returns `(max ops, max seconds, cols)` with the column count
/// verified identical across the sources that answered.
fn local_round<T: CommandTransport>(
    net: &mut RoundNet<'_, T>,
    idx: u32,
    m: usize,
    context: &'static str,
) -> Result<(u64, f64, usize)> {
    let enc = EncodedCommand::new(Command::Stage { index: idx });
    for i in 0..m {
        net.send_enc(i, &enc)?;
    }
    let mut ops = 0u64;
    let mut secs = 0.0f64;
    let mut cols: Option<usize> = None;
    for i in 0..m {
        let Some(resp) = net.recv(i)? else { continue };
        let (_, c, o, s) = expect_done(resp, context)?;
        match cols {
            None => cols = Some(c as usize),
            Some(expected) if c as usize != expected => {
                return Err(CoreError::Net(NetError::ProtocolViolation {
                    context,
                    expected: "every source in the same working dimension",
                    got: format!("source {i} reports {c} columns, an earlier source {expected}"),
                }));
            }
            Some(_) => {}
        }
        ops = ops.max(o);
        secs = secs.max(s);
    }
    let cols = cols.ok_or(CoreError::Protocol {
        reason: "no surviving source answered the round",
    })?;
    Ok((ops, secs, cols))
}

fn run_stage<T: CommandTransport>(
    pipe: &StagePipeline,
    net: &mut RoundNet<'_, T>,
    st: &mut DriverState,
    idx: u32,
    stage: &Stage,
    m: usize,
) -> Result<()> {
    let params = pipe.params();
    match stage {
        Stage::Dr(cfg) => {
            drop_basis(st);
            let (stream, before_role) = st.jl.next_stream();
            let target = jl_target_dim(cfg, params, st.cur, before_role);
            let pi = MaybeProjection::generate(
                params.jl_kind,
                st.cur,
                target,
                derive_seed(params.seed, stream),
            );
            st.cur = pi.target_dim();
            st.projections.push(pi);
            st.jl.any_reduction = true;
            let (ops, secs, cols) = local_round(net, idx, m, "jl round")?;
            verify_cols(cols, st.cur, "jl round")?;
            st.source_ops += ops;
            st.source_seconds += secs;
        }
        Stage::Cr(_) => {
            if m != 1 {
                return Err(CoreError::InvalidConfig {
                    reason:
                        "fss is a single-source stage (multi-source pipelines use dispca/disss)",
                });
            }
            if st.weights_mode {
                return Err(CoreError::InvalidConfig {
                    reason: "multiple coreset stages in one pipeline",
                });
            }
            drop_basis(st);
            // The resolved dims are the executor's business; the driver
            // only records the space change the response reports.
            st.basis_parent = st.cur;
            let (ops, secs, cols) = local_round(net, idx, m, "fss round")?;
            st.cur = cols;
            st.has_basis = true;
            st.basis_shared = false;
            st.weights_mode = true;
            st.jl.any_reduction = true;
            st.source_ops += ops;
            st.source_seconds += secs;
        }
        Stage::Stream(_cfg) => {
            if st.weights_mode {
                return Err(CoreError::InvalidConfig {
                    reason: "multiple coreset stages in one pipeline",
                });
            }
            let (ops, secs, cols) = local_round(net, idx, m, "stream round")?;
            verify_cols(cols, st.cur, "stream round")?;
            st.weights_mode = true;
            st.jl.any_reduction = true;
            st.source_ops += ops;
            st.source_seconds += secs;
        }
        Stage::Qt(cfg) => {
            // Resolve driver-side too, so a bad width fails the run
            // before any source is commanded.
            resolve_quantizer(cfg, params)?;
            let (ops, secs, _) = local_round(net, idx, m, "qt round")?;
            st.source_ops += ops;
            st.source_seconds += secs;
        }
        Stage::DisPca(cfg) => {
            if st.weights_mode {
                return Err(CoreError::InvalidConfig {
                    reason: "dispca after a coreset stage is unsupported",
                });
            }
            drop_basis(st);
            let t = dispca_rank(cfg, params, st.cur);
            // Step 1: local SVD summaries, folded in source order.
            let stage_enc = EncodedCommand::new(Command::Stage { index: idx });
            for i in 0..m {
                net.send_enc(i, &stage_enc)?;
            }
            let mut summaries = Vec::with_capacity(m);
            let mut ops1 = 0u64;
            let mut secs1 = 0.0f64;
            if params.topology == Topology::Tree && m > 1 {
                // Tree topology: sources buffer their summaries behind a
                // plain acknowledgement; the reduction happens pairwise.
                let mut holders = Vec::with_capacity(m);
                for i in 0..m {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (_, _, o, s) = expect_done(resp, "dispca summary")?;
                    ops1 = ops1.max(o);
                    secs1 = secs1.max(s);
                    holders.push(i);
                }
                for msg in tree_gather(net, &holders, GATHER_DISPCA)? {
                    match msg {
                        Message::SvdSummary {
                            singular_values,
                            basis,
                            ..
                        } => summaries.push((singular_values, basis)),
                        _ => {
                            return Err(CoreError::Protocol {
                                reason: "expected svd summary",
                            })
                        }
                    }
                }
            } else {
                for i in 0..m {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (payload, o, s) = expect_up(resp, "dispca summary")?;
                    ops1 = ops1.max(o);
                    secs1 = secs1.max(s);
                    match payload.decode().map_err(CoreError::Net)? {
                        Message::SvdSummary {
                            singular_values,
                            basis,
                            ..
                        } => summaries.push((singular_values, basis)),
                        _ => {
                            return Err(CoreError::Protocol {
                                reason: "expected svd summary",
                            })
                        }
                    }
                }
            }
            // Step 2: the global SVD — the same server fold as the
            // engine's dispca.
            let t1 = Instant::now();
            let basis = distributed::dispca_global_basis(&summaries, t, params.precision)?;
            st.server_seconds += t1.elapsed().as_secs_f64();
            // Step 3: broadcast; the basis payload (the fattest frame
            // of the protocol) is encoded exactly once, and each source
            // projects onto its decoded copy and reports the new shape.
            let deliver = EncodedCommand::new(Command::Deliver {
                payload: Payload::of(&Message::Basis {
                    basis: basis.clone(),
                    precision: params.precision,
                }),
            });
            for i in 0..m {
                net.send_enc(i, &deliver)?;
            }
            let mut ops2 = 0u64;
            let mut secs2 = 0.0f64;
            for i in 0..m {
                let Some(resp) = net.recv(i)? else { continue };
                let (_, c, o, s) = expect_done(resp, "dispca projection")?;
                verify_cols(c as usize, basis.cols(), "dispca projection")?;
                ops2 = ops2.max(o);
                secs2 = secs2.max(s);
            }
            st.basis_parent = st.cur;
            st.cur = basis.cols();
            st.server_basis = Some(basis);
            st.has_basis = true;
            st.basis_shared = true;
            st.jl.any_reduction = true;
            st.source_ops += ops1 + ops2;
            st.source_seconds += secs1 + secs2;
        }
        Stage::DisSs(cfg) => {
            if st.weights_mode {
                return Err(CoreError::InvalidConfig {
                    reason: "disss after a coreset stage is unsupported",
                });
            }
            let budget = disss_budget(cfg, params);
            if budget == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: "zero disSS sample budget",
                });
            }
            // Step 1: bicriteria cost reports.
            let stage_enc = EncodedCommand::new(Command::Stage { index: idx });
            for i in 0..m {
                net.send_enc(i, &stage_enc)?;
            }
            // Responders are tracked by id: a lost source drops out of
            // the allocation fold, and its budget share is redistributed
            // over the survivors by the same proportional rule.
            let mut responders = Vec::with_capacity(m);
            let mut costs = Vec::with_capacity(m);
            let mut ops1 = 0u64;
            let mut secs1 = 0.0f64;
            for i in 0..m {
                let Some(resp) = net.recv(i)? else { continue };
                let (payload, o, s) = expect_up(resp, "disss cost report")?;
                ops1 = ops1.max(o);
                secs1 = secs1.max(s);
                match payload.decode().map_err(CoreError::Net)? {
                    Message::CostReport { cost } => {
                        responders.push(i);
                        costs.push(cost);
                    }
                    _ => {
                        return Err(CoreError::Protocol {
                            reason: "expected cost report",
                        })
                    }
                }
            }
            // Step 2: proportional allocation (shared fold).
            let allocations = distributed::disss_allocations(&costs, budget);
            for (&i, &s_i) in responders.iter().zip(allocations.iter()) {
                net.send(
                    i,
                    &Command::Deliver {
                        payload: Payload::of(&Message::SampleAllocation { size: s_i as u64 }),
                    },
                )?;
            }
            // Step 3: weighted samples, merged in source order.
            let mut parts = Vec::with_capacity(m);
            let mut ops2 = 0u64;
            let mut secs2 = 0.0f64;
            if params.topology == Topology::Tree && m > 1 {
                let mut holders = Vec::with_capacity(responders.len());
                for &i in &responders {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (_, _, o, s) = expect_done(resp, "disss sample")?;
                    ops2 = ops2.max(o);
                    secs2 = secs2.max(s);
                    holders.push(i);
                }
                for msg in tree_gather(net, &holders, GATHER_DISSS)? {
                    match msg {
                        Message::Coreset {
                            points,
                            weights,
                            delta,
                            ..
                        } => parts.push(
                            Coreset::new(points, weights, delta).map_err(CoreError::Coreset)?,
                        ),
                        _ => {
                            return Err(CoreError::Protocol {
                                reason: "expected a coreset message",
                            })
                        }
                    }
                }
            } else {
                for &i in &responders {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (payload, o, s) = expect_up(resp, "disss sample")?;
                    ops2 = ops2.max(o);
                    secs2 = secs2.max(s);
                    match payload.decode().map_err(CoreError::Net)? {
                        Message::Coreset {
                            points,
                            weights,
                            delta,
                            ..
                        } => parts.push(
                            Coreset::new(points, weights, delta).map_err(CoreError::Coreset)?,
                        ),
                        _ => {
                            return Err(CoreError::Protocol {
                                reason: "expected a coreset message",
                            })
                        }
                    }
                }
            }
            let t1 = Instant::now();
            let merged = Coreset::merge(parts.iter()).map_err(CoreError::Coreset)?;
            st.server_seconds += t1.elapsed().as_secs_f64();
            st.server_summary = Some((merged.points().clone(), merged.weights().to_vec()));
            st.handed_off = true;
            st.jl.any_reduction = true;
            st.source_ops += ops1 + ops2;
            st.source_seconds += secs1 + secs2;
        }
    }
    Ok(())
}

fn verify_cols(got: usize, expected: usize, context: &'static str) -> Result<()> {
    if got != expected {
        return Err(CoreError::Net(NetError::ProtocolViolation {
            context,
            expected: "the plan-derived working dimension",
            got: format!("{got} columns (expected {expected})"),
        }));
    }
    Ok(())
}

fn finalize<T: CommandTransport>(
    pipe: &StagePipeline,
    net: &mut RoundNet<'_, T>,
    mut st: DriverState,
    m: usize,
    up0: u64,
    down0: u64,
    rows: &[u64],
) -> Result<RunOutput> {
    let params = pipe.params();
    let (points, weights) = match st.server_summary.take() {
        Some(summary) => summary,
        None => {
            // An FSS basis travels first; the server keeps the decoded
            // copy for the final lift.
            if st.has_basis && !st.basis_shared {
                net.send(0, &Command::TransmitBasis)?;
                let resp = net.recv(0)?.ok_or(CoreError::Protocol {
                    reason: "the basis-holding source was lost before transmitting it",
                })?;
                let (payload, _, _) = expect_up(resp, "basis transmit")?;
                match payload.decode().map_err(CoreError::Net)? {
                    Message::Basis { basis, .. } => st.server_basis = Some(basis),
                    _ => {
                        return Err(CoreError::Protocol {
                            reason: "expected a basis message",
                        })
                    }
                }
                st.basis_shared = true;
            }
            let transmit = EncodedCommand::new(Command::Transmit);
            for i in 0..m {
                net.send_enc(i, &transmit)?;
            }
            let mut blocks = Vec::with_capacity(m);
            let mut weights = Vec::new();
            let mut ops = 0u64;
            let mut secs = 0.0f64;
            let mut fold_block = |msg: Message, weights: &mut Vec<f64>| match msg {
                Message::RawData { points } => {
                    weights.extend(vec![1.0; points.rows()]);
                    blocks.push(points);
                    Ok(())
                }
                Message::Coreset {
                    points, weights: w, ..
                } => {
                    weights.extend(w);
                    blocks.push(points);
                    Ok(())
                }
                _ => Err(CoreError::Protocol {
                    reason: "expected raw data or a coreset",
                }),
            };
            if params.topology == Topology::Tree && m > 1 {
                let mut holders = Vec::with_capacity(m);
                for i in 0..m {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (_, _, o, s) = expect_done(resp, "summary transmit")?;
                    ops = ops.max(o);
                    secs = secs.max(s);
                    holders.push(i);
                }
                for msg in tree_gather(net, &holders, GATHER_TRANSMIT)? {
                    fold_block(msg, &mut weights)?;
                }
            } else {
                for i in 0..m {
                    let Some(resp) = net.recv(i)? else { continue };
                    let (payload, o, s) = expect_up(resp, "summary transmit")?;
                    ops = ops.max(o);
                    secs = secs.max(s);
                    fold_block(payload.decode().map_err(CoreError::Net)?, &mut weights)?;
                }
            }
            st.source_ops += ops;
            st.source_seconds += secs;
            let t1 = Instant::now();
            let stacked = Matrix::vstack_all(blocks.iter())?;
            st.server_seconds += t1.elapsed().as_secs_f64();
            (stacked, weights)
        }
    };

    let t1 = Instant::now();
    let centers_summary = solve_weighted_kmeans(
        &points,
        &weights,
        params.k,
        params.kmeans_restarts,
        derive_seed(params.seed, seeds::SERVER),
        params.solver_shards,
        params.compute,
    )?;
    let mut centers = match &st.server_basis {
        Some(basis) => lift_centers_through_basis(&centers_summary, basis)?,
        None => centers_summary,
    };
    for pi in st.projections.iter().rev() {
        centers = pi.lift(&centers)?;
    }
    st.server_seconds += t1.elapsed().as_secs_f64();

    // Shutdown: announce the digest; every source answers with the
    // traffic it observed itself, which must equal the server's
    // per-source ledger — the non-replicated integrity check.
    let digest = RunDigest::new(net.stats(), &centers);
    let finish = EncodedCommand::new(Command::Finish {
        uplink_bits: digest.uplink_bits,
        downlink_bits: digest.downlink_bits,
        centers_hash: digest.centers_hash,
    });
    for i in 0..m {
        net.send_enc(i, &finish)?;
    }
    for i in 0..m {
        let Some(resp) = net.recv(i)? else { continue };
        match resp {
            Response::Fin {
                uplink_bits,
                downlink_bits,
                ..
            } => {
                if uplink_bits != net.stats().uplink_bits(i)
                    || downlink_bits != net.stats().downlink_bits(i)
                {
                    return Err(CoreError::Net(NetError::Divergence {
                        source: i,
                        direction: "counter report",
                    }));
                }
            }
            Response::Err { reason } => {
                return Err(CoreError::Net(NetError::RemoteAbort { reason }))
            }
            other => {
                return Err(CoreError::Net(NetError::ProtocolViolation {
                    context: "finish round",
                    expected: "a fin response",
                    got: other.name().to_string(),
                }))
            }
        }
    }

    let degraded = net.degradation(rows, params.epsilon);
    let recovered = net.recovery();
    Ok(RunOutput {
        centers,
        uplink_bits: net.stats().total_uplink_bits() - up0,
        downlink_bits: net.stats().total_downlink_bits() - down0,
        source_seconds: st.source_seconds,
        server_seconds: st.server_seconds,
        source_ops: st.source_ops,
        summary_points: points.rows(),
        degraded,
        recovered,
    })
}

impl StagePipeline {
    /// Runs the pipeline as the protocol server over any
    /// [`CommandTransport`] — the sources hold the data, this end holds
    /// the plan.
    ///
    /// # Errors
    ///
    /// See [`run_driver`].
    pub fn run_driver<T: CommandTransport>(&self, net: &mut T) -> Result<RunOutput> {
        run_driver(self, net)
    }

    /// Runs the pipeline over the in-process channel backend: one
    /// executor thread per shard — each holding **only its shard** —
    /// and the driver in the calling thread. Results are bit-identical
    /// to [`StagePipeline::run_shards`] over the simulation.
    ///
    /// # Errors
    ///
    /// See [`run_driver`]; executor failures surface as
    /// [`NetError::RemoteAbort`] with the source's reason.
    pub fn run_channel(&self, shards: Vec<Matrix>) -> Result<RunOutput> {
        self.run_channel_detailed(shards).map(|(out, _, _)| out)
    }

    /// [`StagePipeline::run_channel`] returning the driver's
    /// [`NetworkStats`] and every executor's [`SourceRunReport`] for
    /// inspection (equivalence tests, the CLI's accounting lines).
    ///
    /// # Errors
    ///
    /// See [`StagePipeline::run_channel`].
    pub fn run_channel_detailed(
        &self,
        shards: Vec<Matrix>,
    ) -> Result<(RunOutput, NetworkStats, Vec<SourceRunReport>)> {
        if shards.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "no shards",
            });
        }
        let m = shards.len();
        let r = self.params().replication;
        // Cold replica copies handed to each holder, per the canonical
        // ring assignment (empty at the default replication of 1).
        let replica_sets: Vec<BTreeMap<usize, Matrix>> = (0..m)
            .map(|holder| {
                replica_origins(holder, m, r)
                    .into_iter()
                    .map(|o| (o, shards[o].clone()))
                    .collect()
            })
            .collect();
        let (hub, endpoints) = channel_pairs(m);
        let mut routed = RoutingTransport::new(hub);
        std::thread::scope(|scope| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .zip(shards)
                .zip(replica_sets)
                .enumerate()
                .map(|(i, ((mut endpoint, shard), replicas))| {
                    let stages = self.stages();
                    let params = self.params();
                    scope.spawn(move || {
                        SourceExecutor::new(stages, params, i, m, shard)
                            .with_replicas(replicas)
                            .serve(&mut endpoint)
                    })
                })
                .collect();
            let out = run_driver(self, &mut routed);
            let reports: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let out = out?;
            let mut skipped = vec![false; m];
            if let Some(deg) = &out.degraded {
                for &(i, _) in &deg.lost_sources {
                    skipped[i] = true;
                }
            }
            if let Some(rec) = &out.recovered {
                for &(i, _) in &rec.promoted {
                    skipped[i] = true;
                }
            }
            let mut source_reports = Vec::with_capacity(m);
            for (i, report) in reports.into_iter().enumerate() {
                match report {
                    // A dropped source has no run report, and a
                    // recovered one died mid-run — the degradation or
                    // recovery record already names it (the promoted
                    // persona's ledger was verified by the fin round).
                    _ if skipped[i] => continue,
                    Ok(Ok(r)) => source_reports.push(r),
                    Ok(Err(e)) => return Err(e),
                    Err(_) => {
                        return Err(CoreError::Protocol {
                            reason: "executor thread panicked",
                        })
                    }
                }
            }
            Ok((out, routed.stats().clone(), source_reports))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ekm_data::partition::partition_uniform;
    use ekm_data::synth::GaussianMixture;
    use ekm_net::Network;

    fn workload(n: usize, d: usize, seed: u64) -> Matrix {
        let raw = GaussianMixture::new(n, d, 2)
            .with_separation(4.0)
            .with_cluster_std(1.0)
            .with_seed(seed)
            .generate()
            .unwrap()
            .points;
        ekm_data::normalize::normalize_paper(&raw).0
    }

    fn assert_equivalent(list: &str, data: &Matrix, m: usize, seed: u64) {
        let (n, d) = data.shape();
        let params = crate::SummaryParams::practical(2, n, d).with_seed(seed);
        let pipe = StagePipeline::from_names(list, params).unwrap();
        let shards = if m == 1 {
            vec![data.clone()]
        } else {
            partition_uniform(data, m, pipe.params().seed).unwrap()
        };
        let mut net = Network::new(m);
        let sim = pipe.run_shards(&shards, &mut net).unwrap();
        let (proto, stats, reports) = pipe.run_channel_detailed(shards).unwrap();
        assert_eq!(net.stats(), &stats, "{list}: NetworkStats");
        assert_eq!(sim.uplink_bits, proto.uplink_bits, "{list}: uplink");
        assert_eq!(sim.downlink_bits, proto.downlink_bits, "{list}: downlink");
        assert_eq!(sim.source_ops, proto.source_ops, "{list}: ops");
        assert_eq!(sim.summary_points, proto.summary_points, "{list}");
        for (a, b) in sim.centers.as_slice().iter().zip(proto.centers.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "{list}: centers diverge");
        }
        assert_eq!(reports.len(), m);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(
                report.uplink_bits,
                stats.uplink_bits(i),
                "{list}: source {i} uplink report"
            );
        }
    }

    #[test]
    fn channel_protocol_matches_simulation_centralized() {
        let data = workload(300, 16, 3);
        for list in ["jl,fss,qt:6", "fss,jl", "qt:8"] {
            assert_equivalent(list, &data, 1, 11);
        }
    }

    #[test]
    fn channel_protocol_matches_simulation_distributed() {
        let data = workload(480, 20, 4);
        for list in ["dispca,disss", "jl,dispca,qt:8,disss", "jl,stream,qt"] {
            assert_equivalent(list, &data, 4, 13);
        }
    }

    #[test]
    fn driver_validation_matches_engine_errors() {
        let data = workload(200, 8, 5);
        let params = crate::SummaryParams::practical(2, 200, 8).with_seed(7);
        for list in ["fss,fss", "disss,jl", "stream,stream", "fss"] {
            let pipe = StagePipeline::from_names(list, params.clone()).unwrap();
            let shards = partition_uniform(&data, 2, 3).unwrap();
            let mut net = Network::new(2);
            let sim = pipe.run_shards(&shards, &mut net);
            let proto = pipe.run_channel(shards);
            assert!(sim.is_err(), "{list}: engine accepted");
            assert!(
                matches!(proto, Err(CoreError::InvalidConfig { .. })),
                "{list}: driver returned {proto:?}"
            );
        }
    }
}
