//! Pipeline run results.

use ekm_linalg::Matrix;

/// How a degraded run lost data: which sources were dropped and the
/// paper-derived bound on the cost it can have cost.
///
/// The paper's sampling bounds tolerate a dropped source with a
/// quantified hit: the surviving sources still summarize their `1 − p`
/// fraction of the data within `(1 + ε)`, so against the full-data twin
/// the degraded centers' cost is heuristically bounded by
/// `(1 + ε) / (1 − p)` where `p` is the fraction of rows lost. The CI
/// fault suite asserts the *measured* ratio stays under this bound.
#[derive(Debug, Clone, PartialEq)]
pub struct Degradation {
    /// `(source id, why it was declared lost)` for every dropped source.
    pub lost_sources: Vec<(usize, String)>,
    /// Rows held by the dropped sources.
    pub rows_lost: usize,
    /// Rows described by all sources at the start of the run.
    pub rows_total: usize,
    /// The documented cost-ratio bound `(1 + ε) / (1 − rows_lost /
    /// rows_total)` the degraded run is expected to stay within.
    pub cost_ratio_bound: f64,
}

impl Degradation {
    /// Fraction of the dataset the dropped sources held.
    pub fn frac_lost(&self) -> f64 {
        if self.rows_total == 0 {
            0.0
        } else {
            self.rows_lost as f64 / self.rows_total as f64
        }
    }
}

/// How a run absorbed source losses *without* losing data: every listed
/// source died mid-run but a promoted replica answered its remaining
/// rounds from a replayed copy of its shard, so the centers, digest,
/// and classic ledgers are bit-identical to a run where the replica
/// owned the shard from the start. Contrast [`Degradation`], the
/// last-resort record when no replica survived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// `(origin, promoted host)` for every source that finished the run
    /// absorbed by a replica.
    pub promoted: Vec<(usize, usize)>,
    /// Completed rounds replayed onto promoted personas.
    pub replayed_rounds: u64,
}

/// The result of one end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// k-means centers mapped back to the original space (`k × d`).
    pub centers: Matrix,
    /// Total bits the data source(s) sent to the server.
    pub uplink_bits: u64,
    /// Total bits the server sent to the data source(s).
    pub downlink_bits: u64,
    /// Wall-clock seconds of data-source-side computation (max over
    /// sources in the distributed setting — sources work in parallel).
    pub source_seconds: f64,
    /// Wall-clock seconds of server-side computation.
    pub server_seconds: f64,
    /// Deterministic count of the dominant source-side floating-point
    /// operations (max over sources per phase, summed over phases) — the
    /// complexity metric the wall-clock fields proxy, but exact across
    /// runs, machines, and thread counts. Use this for Table 2-style
    /// ordering comparisons; use `source_seconds` for reporting.
    pub source_ops: u64,
    /// Number of summary points the server clustered.
    pub summary_points: usize,
    /// `Some` when the run completed without every source: which shards
    /// were dropped and the asserted cost-ratio bound. `None` for a
    /// clean, full-source run.
    pub degraded: Option<Degradation>,
    /// `Some` when replica promotion absorbed one or more source losses
    /// bit-identically. Independent of `degraded`: a run can recover
    /// some sources and still degrade others whose replicas ran out.
    pub recovered: Option<Recovery>,
}

impl RunOutput {
    /// Normalized communication cost: uplink bits over the raw-dataset bit
    /// size (`n·d` doubles) — the paper's Table 3/4 metric.
    pub fn normalized_comm(&self, n: usize, d: usize) -> f64 {
        self.uplink_bits as f64 / ((n * d) as f64 * 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_comm_metric() {
        let out = RunOutput {
            centers: Matrix::zeros(2, 3),
            uplink_bits: 64,
            downlink_bits: 0,
            source_seconds: 0.0,
            server_seconds: 0.0,
            source_ops: 0,
            summary_points: 5,
            degraded: None,
            recovered: None,
        };
        // 64 bits over 10×10×64 = 6400 raw bits = 0.01.
        assert!((out.normalized_comm(10, 10) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn degradation_records_the_documented_bound() {
        let d = Degradation {
            lost_sources: vec![(2, "disconnected".to_string())],
            rows_lost: 200,
            rows_total: 600,
            cost_ratio_bound: (1.0 + 0.5) / (1.0 - 200.0 / 600.0),
        };
        assert!((d.frac_lost() - 1.0 / 3.0).abs() < 1e-12);
        assert!((d.cost_ratio_bound - 2.25).abs() < 1e-12);
    }
}
