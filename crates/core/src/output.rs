//! Pipeline run results.

use ekm_linalg::Matrix;

/// The result of one end-to-end pipeline run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// k-means centers mapped back to the original space (`k × d`).
    pub centers: Matrix,
    /// Total bits the data source(s) sent to the server.
    pub uplink_bits: u64,
    /// Total bits the server sent to the data source(s).
    pub downlink_bits: u64,
    /// Wall-clock seconds of data-source-side computation (max over
    /// sources in the distributed setting — sources work in parallel).
    pub source_seconds: f64,
    /// Wall-clock seconds of server-side computation.
    pub server_seconds: f64,
    /// Deterministic count of the dominant source-side floating-point
    /// operations (max over sources per phase, summed over phases) — the
    /// complexity metric the wall-clock fields proxy, but exact across
    /// runs, machines, and thread counts. Use this for Table 2-style
    /// ordering comparisons; use `source_seconds` for reporting.
    pub source_ops: u64,
    /// Number of summary points the server clustered.
    pub summary_points: usize,
}

impl RunOutput {
    /// Normalized communication cost: uplink bits over the raw-dataset bit
    /// size (`n·d` doubles) — the paper's Table 3/4 metric.
    pub fn normalized_comm(&self, n: usize, d: usize) -> f64 {
        self.uplink_bits as f64 / ((n * d) as f64 * 64.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_comm_metric() {
        let out = RunOutput {
            centers: Matrix::zeros(2, 3),
            uplink_bits: 64,
            downlink_bits: 0,
            source_seconds: 0.0,
            server_seconds: 0.0,
            source_ops: 0,
            summary_points: 5,
        };
        // 64 bits over 10×10×64 = 6400 raw bits = 0.01.
        assert!((out.normalized_comm(10, 10) - 0.01).abs() < 1e-12);
    }
}
